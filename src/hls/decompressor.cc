#include "hls/decompressor.hh"

#include <algorithm>

#include "common/status.hh"
#include "formats/bcsr_format.hh"
#include "formats/bitmap_format.hh"
#include "formats/coo_format.hh"
#include "formats/csc_format.hh"
#include "formats/csr_format.hh"
#include "formats/dia_format.hh"
#include "formats/dok_format.hh"
#include "formats/ell_format.hh"
#include "formats/ellcoo_format.hh"
#include "formats/jds_format.hh"
#include "formats/lil_format.hh"
#include "formats/registry.hh"
#include "formats/sell_format.hh"
#include "formats/sellcs_format.hh"
#include "hls/schedule.hh"

namespace copernicus {

namespace {

/**
 * CSR, Listing 1: one offsets access starts the row, then a pipelined
 * loop writes numVal entries. Row creation is itself pipelined across
 * non-zero rows, so successive rows overlap at II = 1 beyond their
 * entry loops.
 */
Cycles
csrCycles(const CsrEncoded &csr, const HlsConfig &cfg)
{
    const Index p = csr.tileSize();
    Cycles total = 0;
    Index nnz_rows = 0;
    Cycles total_entries = 0;
    for (Index r = 0; r < p; ++r) {
        const Index count = csr.rowEnd(r) - csr.rowStart(r);
        if (count == 0)
            continue;
        ++nnz_rows;
        total_entries += count;
    }
    if (nnz_rows == 0)
        return 0;
    total = cfg.bramReadLatency           // first offsets access
            + cfg.loopDepth               // entry-loop fill
            + total_entries               // II=1 over all entries
            + (nnz_rows - 1);             // per-row turnaround
    return total;
}

/**
 * BCSR, Listing 2: offsets access per block-row, then a block loop whose
 * 16-element inner copy is fully unrolled over partitioned banks, so
 * each block costs one initiation interval.
 */
Cycles
bcsrCycles(const BcsrEncoded &bcsr, const HlsConfig &cfg)
{
    const Index p = bcsr.tileSize();
    const Index b = bcsr.blockSize();
    const Index grid = p / b;
    Index nnz_block_rows = 0;
    Cycles total_blocks = 0;
    for (Index br = 0; br < grid; ++br) {
        const Index count = bcsr.blockRowEnd(br) - bcsr.blockRowStart(br);
        if (count == 0)
            continue;
        ++nnz_block_rows;
        total_blocks += count;
    }
    if (nnz_block_rows == 0)
        return 0;
    return cfg.bramReadLatency + cfg.loopDepth + total_blocks +
           (nnz_block_rows - 1);
}

/**
 * CSC, Listing 3: the orientation mismatch forces a scan of the whole
 * entry list once per output row; each scan is a pipelined loop at
 * II = 1 over every stored entry.
 */
Cycles
cscCycles(const CscEncoded &csc, const HlsConfig &cfg)
{
    const Index p = csc.tileSize();
    const Cycles entries = csc.values.size();
    Cycles total = cfg.bramReadLatency;
    for (Index r = 0; r < p; ++r)
        total += pipelinedLoop(std::max<Cycles>(entries, 1),
                               cfg.loopDepth);
    return total;
}

/**
 * LIL, Listing 4: per produced row, a comparator tree (depth log2 p)
 * finds the minimum pending row index across the partitioned column
 * lists, then an unrolled select emits the row: II = 2 between rows.
 * Production can never outrun the longest column list, whose pops are
 * serialized by the BRAM read latency, and one extra access detects the
 * end of the lists.
 */
Cycles
lilCycles(const LilEncoded &lil, const Tile &decoded, const HlsConfig &cfg)
{
    const Index nnz_rows = decoded.nnzRows();
    if (nnz_rows == 0)
        return 0;
    const Index longest = lil.height() - 1; // minus the sentinel row
    const Cycles fill = cfg.bramReadLatency +
                        Cycles(log2Ceil(lil.tileSize()));
    const Cycles production =
        std::max<Cycles>(Cycles(nnz_rows) * 2,
                         Cycles(longest) * cfg.bramReadLatency);
    return fill + production + cfg.bramReadLatency; // end detection
}

/**
 * ELL, Listing 5: the width-wide copy is fully unrolled over
 * partitioned banks, so every row — zero or not — costs one cycle; the
 * compressed width only affects resources, not cycles (Section 5.2).
 */
Cycles
ellCycles(const EllEncoded &ell, const HlsConfig &cfg)
{
    return pipelinedLoop(ell.tileSize(), cfg.loopDepth);
}

/** SELL prices like ELL plus one width-header read per slice. */
Cycles
sellCycles(const SellEncoded &sell, const HlsConfig &cfg)
{
    return pipelinedLoop(sell.tileSize(), cfg.loopDepth) +
           Cycles(sell.slices.size()) * cfg.bramReadLatency;
}

/**
 * COO, Listing 6: one pipelined loop over the tuples; the scattered
 * destinations prevent bank partitioning, so II = 1 on a single bank.
 */
Cycles
cooCycles(const CooEncoded &coo, const HlsConfig &cfg)
{
    return pipelinedLoop(coo.values.size(), cfg.loopDepth);
}

/** DOK: COO's walk plus a hash probe per tuple (II = hashCycles). */
Cycles
dokCycles(const DokEncoded &dok, const HlsConfig &cfg)
{
    return pipelinedLoop(dok.table.size(),
                         cfg.loopDepth + cfg.hashCycles, cfg.hashCycles);
}

/**
 * DIA, Listing 7: every output row scans the stored diagonals; the
 * dual-ported diagonal buffer lets the scan check bramPorts diagonals
 * per cycle.
 */
Cycles
diaCycles(const DiaEncoded &dia, const HlsConfig &cfg)
{
    const Index p = dia.tileSize();
    const auto ndiags = static_cast<Cycles>(dia.diagonals.size());
    if (ndiags == 0)
        return 0;
    const Cycles per_row = ceilDiv(ndiags, cfg.bramPorts);
    return cfg.loopDepth + Cycles(p) * per_row;
}

/**
 * JDS: like CSR without the per-row offsets access (jdPtr is read once
 * per jagged diagonal), plus a permutation look-up per produced row.
 */
Cycles
jdsCycles(const JdsEncoded &jds, const Tile &decoded, const HlsConfig &cfg)
{
    const Index nnz_rows = decoded.nnzRows();
    if (nnz_rows == 0)
        return 0;
    const auto width = static_cast<Cycles>(jds.jdPtr.size()) - 1;
    return cfg.bramReadLatency + cfg.loopDepth +
           Cycles(jds.values.size())        // II=1 over the entries
           + width * cfg.bramReadLatency    // jdPtr access per diagonal
           + nnz_rows;                      // permutation look-ups
}

/**
 * SELL-C-sigma prices like SELL plus one permutation look-up per row
 * (the perm array rides in its own BRAM bank).
 */
Cycles
sellCsCycles(const SellCsEncoded &scs, const HlsConfig &cfg)
{
    return pipelinedLoop(scs.tileSize(), cfg.loopDepth) +
           Cycles(scs.slices.size()) * cfg.bramReadLatency +
           Cycles(scs.tileSize());
}

/**
 * Bitmap: a pipelined scan over the packed mask words expands
 * positions with popcount logic while the dense value stream is
 * consumed at one value per cycle — whichever is longer bounds the
 * loop.
 */
Cycles
bitmapCycles(const BitmapEncoded &bitmap, const HlsConfig &cfg)
{
    const Cycles words = bitmap.mask.size();
    const Cycles nnz = bitmap.values.size();
    if (nnz == 0)
        return 0;
    return cfg.loopDepth + std::max(words, nnz);
}

/** ELL+COO: the ELL sweep plus a COO-style pipelined overflow loop. */
Cycles
ellCooCycles(const EllCooEncoded &hybrid, const HlsConfig &cfg)
{
    return pipelinedLoop(hybrid.tileSize(), cfg.loopDepth) +
           pipelinedLoop(hybrid.overflowValues.size(), cfg.loopDepth);
}

} // namespace

DecompressResult
simulateDecompression(const EncodedTile &encoded, const HlsConfig &config)
{
    DecompressResult result{0, 0,
                            defaultCodec(encoded.kind()).decode(encoded)};
    const Index p = encoded.tileSize();
    const Index nnz_rows = result.decoded.nnzRows();

    switch (encoded.kind()) {
      case FormatKind::Dense:
        // No decompression stage; the dot engine sees all p rows.
        result.decompressCycles = 0;
        result.rowsProduced = p;
        break;
      case FormatKind::CSR:
        result.decompressCycles = csrCycles(
            encodedAs<CsrEncoded>(encoded, FormatKind::CSR), config);
        result.rowsProduced = nnz_rows;
        break;
      case FormatKind::BCSR: {
        const auto &bcsr = encodedAs<BcsrEncoded>(encoded,
                                                  FormatKind::BCSR);
        result.decompressCycles = bcsrCycles(bcsr, config);
        // Every row of a non-zero block-row reaches the dot engine,
        // zero or not (Listing 2 discussion).
        Index block_rows = 0;
        const Index grid = p / bcsr.blockSize();
        for (Index br = 0; br < grid; ++br)
            block_rows += bcsr.blockRowEnd(br) != bcsr.blockRowStart(br);
        result.rowsProduced = block_rows * bcsr.blockSize();
        break;
      }
      case FormatKind::CSC:
        result.decompressCycles = cscCycles(
            encodedAs<CscEncoded>(encoded, FormatKind::CSC), config);
        result.rowsProduced = nnz_rows;
        break;
      case FormatKind::COO:
        result.decompressCycles = cooCycles(
            encodedAs<CooEncoded>(encoded, FormatKind::COO), config);
        result.rowsProduced = nnz_rows;
        break;
      case FormatKind::DOK:
        result.decompressCycles = dokCycles(
            encodedAs<DokEncoded>(encoded, FormatKind::DOK), config);
        result.rowsProduced = nnz_rows;
        break;
      case FormatKind::LIL:
        result.decompressCycles = lilCycles(
            encodedAs<LilEncoded>(encoded, FormatKind::LIL),
            result.decoded, config);
        result.rowsProduced = nnz_rows;
        break;
      case FormatKind::ELL:
        result.decompressCycles = ellCycles(
            encodedAs<EllEncoded>(encoded, FormatKind::ELL), config);
        // ELL cannot skip all-zero rows (Listing 5 discussion).
        result.rowsProduced = p;
        break;
      case FormatKind::SELL:
        result.decompressCycles = sellCycles(
            encodedAs<SellEncoded>(encoded, FormatKind::SELL), config);
        result.rowsProduced = p;
        break;
      case FormatKind::DIA:
        result.decompressCycles = diaCycles(
            encodedAs<DiaEncoded>(encoded, FormatKind::DIA), config);
        result.rowsProduced = nnz_rows;
        break;
      case FormatKind::JDS:
        result.decompressCycles = jdsCycles(
            encodedAs<JdsEncoded>(encoded, FormatKind::JDS),
            result.decoded, config);
        result.rowsProduced = nnz_rows;
        break;
      case FormatKind::ELLCOO:
        result.decompressCycles = ellCooCycles(
            encodedAs<EllCooEncoded>(encoded, FormatKind::ELLCOO),
            config);
        result.rowsProduced = p;
        break;
      case FormatKind::SELLCS:
        result.decompressCycles = sellCsCycles(
            encodedAs<SellCsEncoded>(encoded, FormatKind::SELLCS),
            config);
        result.rowsProduced = p;
        break;
      case FormatKind::BITMAP:
        result.decompressCycles = bitmapCycles(
            encodedAs<BitmapEncoded>(encoded, FormatKind::BITMAP),
            config);
        result.rowsProduced = nnz_rows;
        break;
    }
    return result;
}

double
sigmaOverhead(const DecompressResult &result, Index p,
              const HlsConfig &config)
{
    const double t_dot = static_cast<double>(config.dotLatency(p));
    const double numerator =
        static_cast<double>(result.decompressCycles) +
        static_cast<double>(result.rowsProduced) * t_dot;
    return numerator / (static_cast<double>(p) * t_dot);
}

Cycles
computeCycles(const DecompressResult &result, const HlsConfig &config)
{
    const Index p = result.decoded.size();
    return result.decompressCycles +
           Cycles(result.rowsProduced) * config.dotLatency(p);
}

} // namespace copernicus
