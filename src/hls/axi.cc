#include "hls/axi.hh"

#include <algorithm>

#include "common/math.hh"
#include "common/status.hh"

namespace copernicus {

Cycles
transferCycles(const std::vector<Bytes> &streams, const HlsConfig &config)
{
    fatalIf(config.streamlines == 0, "at least one streamline required");

    Bytes total = 0;
    for (Bytes s : streams)
        total += s;
    if (total == 0)
        return 0;

    if (config.useDramModel) {
        // One DDR3 channel serves all streams of the partition.
        return dramServiceCycles(total, config.dram, config.clockMhz);
    }

    // Longest-processing-time assignment of streams to lanes.
    std::vector<Bytes> sorted(streams);
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    std::vector<Bytes> lanes(config.streamlines, 0);
    for (Bytes s : sorted)
        *std::min_element(lanes.begin(), lanes.end()) += s;

    const Bytes busiest = *std::max_element(lanes.begin(), lanes.end());
    return ceilDiv(busiest, config.laneBytesPerCycle()) +
           config.burstSetupCycles;
}

Cycles
writebackCycles(Bytes bytes, const HlsConfig &config)
{
    if (bytes == 0)
        return 0;
    if (config.useDramModel)
        return dramServiceCycles(bytes, config.dram, config.clockMhz);
    return ceilDiv(bytes, config.laneBytesPerCycle()) +
           config.burstSetupCycles;
}

} // namespace copernicus
