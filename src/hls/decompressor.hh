/**
 * @file
 * Per-format decompressor cycle models (Section 5.2, Listings 1-7).
 *
 * Each model walks the real encoded arrays and prices the control flow
 * of the paper's HLS implementation with the scheduling rules from
 * schedule.hh, so the resulting cycle counts are data-dependent exactly
 * the way the hardware's are: CSR pays for an offsets access and its
 * latency scales with the non-zeros per row; CSC re-scans the whole
 * entry list once per output row; LIL pays a merge bounded by its
 * longest column; ELL processes every row at the compressed width;
 * DIA scans its stored diagonals for every row; and so on.
 *
 * The model also returns the number of rows handed to the dot-product
 * engine, which is the nnz_rows term of Eq. 1 (p for formats that cannot
 * skip all-zero rows, like ELL and Dense).
 */

#ifndef COPERNICUS_HLS_DECOMPRESSOR_HH
#define COPERNICUS_HLS_DECOMPRESSOR_HH

#include "formats/encoded_tile.hh"
#include "hls/hls_config.hh"
#include "matrix/tile.hh"

namespace copernicus {

/** Outcome of decompressing one encoded tile. */
struct DecompressResult
{
    /** Decompression cycles T_decomp (Eq. 1 numerator's first term). */
    Cycles decompressCycles = 0;

    /** Rows fed to the dot engine (Eq. 1's nnz_rows term). */
    Index rowsProduced = 0;

    /** The reconstructed dense tile (for functional verification). */
    Tile decoded;
};

/**
 * Run the cycle model for @p encoded.
 *
 * @param encoded Tile in any implemented format.
 * @param config Platform parameters.
 * @return Cycles, dot-engine row count and the reconstructed tile.
 */
DecompressResult simulateDecompression(const EncodedTile &encoded,
                                       const HlsConfig &config);

/**
 * Eq. 1: sigma = (T_decomp + rows * T_dot) / (p * T_dot).
 *
 * Exactly 1 for the dense baseline (T_decomp = 0, rows = p).
 */
double sigmaOverhead(const DecompressResult &result, Index p,
                     const HlsConfig &config);

/**
 * Compute-stage latency of one tile: decompression plus the serialized
 * dot products of the produced rows (Section 4.2's "computation latency
 * consisting of decompression, dot-product, and necessary BRAM
 * accesses").
 */
Cycles computeCycles(const DecompressResult &result,
                     const HlsConfig &config);

} // namespace copernicus

#endif // COPERNICUS_HLS_DECOMPRESSOR_HH
