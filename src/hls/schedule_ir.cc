#include "hls/schedule_ir.hh"

#include <algorithm>

#include "common/status.hh"
#include "hls/schedule.hh"

namespace copernicus {

Cycles
knobCycles(CycleKnob knob, const HlsConfig &config,
           const TileFeatures &features)
{
    switch (knob) {
      case CycleKnob::UnitCycle: return 1;
      case CycleKnob::TwoCycles: return 2;
      case CycleKnob::BramReadLatency: return config.bramReadLatency;
      case CycleKnob::LoopDepth: return config.loopDepth;
      case CycleKnob::HashedLoopDepth:
        return config.loopDepth + config.hashCycles;
      case CycleKnob::HashCycles: return config.hashCycles;
      case CycleKnob::DiagonalScan:
        return ceilDiv(features.groupHeaders, Cycles(config.bramPorts));
    }
    panic("unknown cycle knob");
}

Cycles
segmentClosedFormCycles(const SegmentSpec &segment, const HlsConfig &config,
                        const TileFeatures &features)
{
    const Cycles trips = features.value(segment.trips);
    const Cycles depth = knobCycles(segment.depth, config, features);
    switch (segment.kind) {
      case SegmentKind::Fixed:
        return trips * depth;
      case SegmentKind::Pipelined:
        return pipelinedLoop(trips, depth,
                             knobCycles(segment.ii, config, features));
      case SegmentKind::Serial:
        return trips * pipelinedLoop(features.value(segment.innerTrips),
                                     depth,
                                     knobCycles(segment.ii, config,
                                                features));
      case SegmentKind::RateMax:
        return std::max(trips * depth,
                        features.value(segment.innerTrips) *
                            knobCycles(segment.rateB, config, features));
    }
    panic("unknown segment kind");
}

Cycles
closedFormCycles(const ScheduleSpec &spec, const HlsConfig &config,
                 const TileFeatures &features)
{
    if (features.value(spec.guard) == 0)
        return 0;
    Cycles total = 0;
    for (const SegmentSpec &segment : spec.segments)
        total += segmentClosedFormCycles(segment, config, features);
    return total;
}

Cycles
walkScheduleCycles(const ScheduleSpec &spec, const HlsConfig &config,
                   const TileFeatures &features)
{
    if (features.value(spec.guard) == 0)
        return 0;

    Cycles total = 0;
    for (const SegmentSpec &segment : spec.segments) {
        const Cycles trips = features.value(segment.trips);
        const Cycles depth = knobCycles(segment.depth, config, features);
        switch (segment.kind) {
          case SegmentKind::Fixed:
            // Serialized accesses: each trip pays the full scale.
            for (Cycles t = 0; t < trips; ++t)
                total += depth;
            break;
          case SegmentKind::Pipelined: {
            // The first iteration drains the pipeline; every later one
            // issues an initiation interval after its predecessor.
            const Cycles ii = knobCycles(segment.ii, config, features);
            for (Cycles t = 0; t < trips; ++t)
                total += t == 0 ? depth : ii;
            break;
          }
          case SegmentKind::Serial: {
            // The inner pipeline drains completely each outer trip.
            const Cycles inner = features.value(segment.innerTrips);
            const Cycles ii = knobCycles(segment.ii, config, features);
            for (Cycles outer = 0; outer < trips; ++outer)
                for (Cycles t = 0; t < inner; ++t)
                    total += t == 0 ? depth : ii;
            break;
          }
          case SegmentKind::RateMax: {
            // Two concurrent streams; the region ends when the slower
            // one drains.
            const Cycles rateB =
                knobCycles(segment.rateB, config, features);
            Cycles streamA = 0;
            Cycles streamB = 0;
            for (Cycles t = 0; t < trips; ++t)
                streamA += depth;
            for (Cycles t = 0; t < features.value(segment.innerTrips);
                 ++t)
                streamB += rateB;
            total += std::max(streamA, streamB);
            break;
          }
        }
    }
    return total;
}

} // namespace copernicus
