#include "hls/dram.hh"

#include <cmath>

#include "common/math.hh"
#include "common/status.hh"

namespace copernicus {

Cycles
dramServiceCycles(Bytes bytes, const DramConfig &dram,
                  double fpgaClockMhz)
{
    fatalIf(fpgaClockMhz <= 0.0, "dram: FPGA clock must be positive");
    fatalIf(dram.busClockMhz <= 0.0,
            "dram: bus clock must be positive");
    if (bytes == 0)
        return 0;

    const Cycles rows = ceilDiv(bytes, dram.rowBytes);
    Cycles mem_cycles = dram.tRcd + dram.tCl; // first row open
    mem_cycles += (rows - 1) * (dram.tRp + dram.tRcd);
    mem_cycles += ceilDiv(bytes, dram.bytesPerCycle());

    const double ratio = fpgaClockMhz / dram.busClockMhz;
    return static_cast<Cycles>(
        std::ceil(static_cast<double>(mem_cycles) * ratio));
}

} // namespace copernicus
