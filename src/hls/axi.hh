/**
 * @file
 * AXI-stream transfer model: how long moving one compressed partition
 * from memory into the BRAM input buffer takes.
 *
 * Streams are assigned to the configured number of parallel streamlines
 * longest-first (LPT); the busiest lane plus the DDR3 burst setup cost
 * defines the memory latency, matching the paper's "the longer
 * streamline defines the latency of memory access".
 */

#ifndef COPERNICUS_HLS_AXI_HH
#define COPERNICUS_HLS_AXI_HH

#include <vector>

#include "hls/hls_config.hh"

namespace copernicus {

/**
 * Cycles to transfer a set of streams.
 *
 * @param streams Per-stream byte counts (from EncodedTile::streams()).
 * @param config Platform parameters.
 * @return Transfer cycles including burst setup; 0 for no bytes.
 */
Cycles transferCycles(const std::vector<Bytes> &streams,
                      const HlsConfig &config);

/**
 * Cycles to stream @p bytes out over one lane (memory-write stage).
 */
Cycles writebackCycles(Bytes bytes, const HlsConfig &config);

} // namespace copernicus

#endif // COPERNICUS_HLS_AXI_HH
