/**
 * @file
 * Evaluators over the declarative schedule IR (formats/schedule_spec).
 *
 * Two deliberately independent computations of the same spec:
 *
 *  - closedFormCycles() folds each segment with the algebraic HLS
 *    scheduling rules (pipelined loop = depth + II*(trips-1), and so
 *    on). The static analyzer uses it to bound cycles without running
 *    anything.
 *  - walkScheduleCycles() advances the schedule trip by trip, the way
 *    the dynamic cycle walkers used to. simulateDecompression() uses
 *    it.
 *
 * The model-vs-walker oracle (analysis/schedule_check) demands the two
 * agree exactly on every encoded tile, so a spec that the closed form
 * mis-folds — or a scheduling rule that drifts — fails loudly instead
 * of skewing a sweep.
 */

#ifndef COPERNICUS_HLS_SCHEDULE_IR_HH
#define COPERNICUS_HLS_SCHEDULE_IR_HH

#include "formats/schedule_spec.hh"
#include "hls/hls_config.hh"

namespace copernicus {

/**
 * Resolve a cycle knob against the platform. DiagonalScan also needs
 * the tile (the per-row scan rate is ceil(storedDiagonals/bramPorts)).
 */
Cycles knobCycles(CycleKnob knob, const HlsConfig &config,
                  const TileFeatures &features);

/** Closed-form cycles of one segment, by the HLS scheduling rules. */
Cycles segmentClosedFormCycles(const SegmentSpec &segment,
                               const HlsConfig &config,
                               const TileFeatures &features);

/** Closed-form decode cycles of the whole nest (0 if guarded off). */
Cycles closedFormCycles(const ScheduleSpec &spec, const HlsConfig &config,
                        const TileFeatures &features);

/**
 * Iterative decode cycles: advance every segment trip by trip and
 * stream by stream. Must match closedFormCycles() exactly; the oracle
 * enforces that.
 */
Cycles walkScheduleCycles(const ScheduleSpec &spec,
                          const HlsConfig &config,
                          const TileFeatures &features);

} // namespace copernicus

#endif // COPERNICUS_HLS_SCHEDULE_IR_HH
