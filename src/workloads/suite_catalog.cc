#include "workloads/suite_catalog.hh"

#include <cmath>

#include "common/rng.hh"
#include "common/status.hh"
#include "workloads/generators.hh"

namespace copernicus {

namespace {

/**
 * Thin a generated structure to the paper's average degree by dropping
 * off-diagonal entries uniformly (diagonal entries always survive, since
 * the mesh/circuit families keep a full diagonal).
 */
TripletMatrix
thinToDegree(const TripletMatrix &matrix, double target_deg, Rng &rng)
{
    const double deg = static_cast<double>(matrix.nnz()) / matrix.rows();
    if (deg <= target_deg)
        return matrix;
    const double keep = (target_deg - 1.0) / (deg - 1.0);
    TripletMatrix thinned(matrix.rows(), matrix.cols());
    for (const auto &t : matrix.triplets())
        if (t.row == t.col || rng.chance(keep))
            thinned.add(t.row, t.col, t.value);
    thinned.finalize();
    return thinned;
}

/** Nearest cube root for 3D stencil grids. */
Index
cubeSide(Index n)
{
    auto side = static_cast<Index>(std::llround(std::cbrt(double(n))));
    return std::max<Index>(side, 2);
}

/** Nearest square root for 2D grids. */
Index
squareSide(Index n)
{
    auto side = static_cast<Index>(std::llround(std::sqrt(double(n))));
    return std::max<Index>(side, 2);
}

} // namespace

TripletMatrix
SuiteMatrixInfo::generate(std::uint64_t seed) const
{
    // Derive a per-matrix stream so catalogs are independent of order.
    std::uint64_t mix = seed;
    for (char ch : id)
        mix = mix * 1099511628211ULL + static_cast<unsigned char>(ch);
    Rng rng(mix);

    const double deg = paperNnzPerRow();
    switch (recipe) {
      case SurrogateRecipe::Stencil3dBox: {
        const Index g = cubeSide(surrogateDim);
        return thinToDegree(stencil3d(g, true), deg, rng);
      }
      case SurrogateRecipe::Stencil3d: {
        const Index g = cubeSide(surrogateDim);
        return thinToDegree(stencil3d(g, false), deg, rng);
      }
      case SurrogateRecipe::Stencil2d: {
        const Index side = squareSide(surrogateDim);
        return thinToDegree(stencil2d(side, side), deg, rng);
      }
      case SurrogateRecipe::Circuit:
        return circuitMatrix(surrogateDim, rng, 0.6,
                             std::max(0.0, deg - 2.2));
      case SurrogateRecipe::RmatDirected: {
        const auto edges = static_cast<std::size_t>(
            deg * static_cast<double>(surrogateDim));
        return rmatGraph(surrogateDim, edges, rng);
      }
      case SurrogateRecipe::RmatSkewed: {
        const auto edges = static_cast<std::size_t>(
            deg * static_cast<double>(surrogateDim));
        return rmatGraph(surrogateDim, edges, rng, 0.7, 0.15, 0.1);
      }
      case SurrogateRecipe::RoadGrid: {
        const Index side = squareSide(surrogateDim);
        // Lattice degree is ~4 x keep; solve keep for the target.
        const double keep = std::min(1.0, std::max(0.1, deg / 4.0));
        return roadGrid(side, rng, keep);
      }
      case SurrogateRecipe::RandomUniform: {
        const double density = deg / static_cast<double>(surrogateDim);
        return randomMatrix(surrogateDim, density, rng);
      }
    }
    panic("SuiteMatrixInfo::generate: unknown recipe");
}

const std::vector<SuiteMatrixInfo> &
suiteCatalog()
{
    using R = SurrogateRecipe;
    static const std::vector<SuiteMatrixInfo> catalog = {
        {"2C", "2cubes_sphere", "Electromagnetics Problem", 0.101, 1.647,
         4096, R::Stencil3dBox},
        {"FR", "Freescale2", "Circuit Sim. Matrix", 2.9, 14.3, 4096,
         R::Circuit},
        {"RE", "N_reactome", "Biochemical Network", 0.016, 0.043, 2048,
         R::RandomUniform},
        {"AM", "amazon0601", "Directed Graph", 0.4, 3.3, 4096,
         R::RmatDirected},
        {"DW", "dwt_918", "Structural Problem", 0.000918, 0.0073, 900,
         R::Stencil2d},
        {"EO", "europe_osm", "Undirected Graph", 50.9, 108, 4096,
         R::RoadGrid},
        {"FL", "flickr", "Directed Graph", 0.82, 9.8, 4096,
         R::RmatDirected},
        {"HC", "hcircuit", "Circuit Sim. Problem", 0.1, 0.51, 4096,
         R::Circuit},
        {"HU", "hugebubbles", "Undirected Graph", 18.3, 54.9, 4096,
         R::RoadGrid},
        {"KR", "kron_g500-logn21", "Undirected Multigraph", 2, 182, 2048,
         R::RmatSkewed},
        {"RL", "rail582", "Linear Prog. Problem", 0.056, 0.4, 2048,
         R::RandomUniform},
        {"RJ", "rajat31", "Circuit Sim. Problem", 4.6, 20.3, 4096,
         R::Circuit},
        {"RO", "roadNet-TX", "Undirected Graph", 1.3, 3.8, 4096,
         R::RoadGrid},
        {"RC", "road_central", "Undirected Graph", 14, 33.8, 4096,
         R::RoadGrid},
        {"LJ", "soc-LiveJournal1", "Directed Graph", 4.8, 68.9, 4096,
         R::RmatDirected},
        {"TH", "thermomech_dK", "Thermal Problem", 0.2, 2.8, 4096,
         R::Stencil3dBox},
        {"WE", "wb-edu", "Directed Graph", 9.8, 57.1, 4096,
         R::RmatDirected},
        {"WG", "web-Google", "Directed Graph", 0.91, 5.1, 4096,
         R::RmatDirected},
        {"WT", "wiki-Talk", "Directed Graph", 2.3, 5, 4096,
         R::RmatDirected},
        {"WI", "wikipedia", "Directed Graph", 3.5, 45, 4096,
         R::RmatDirected},
    };
    return catalog;
}

const SuiteMatrixInfo &
suiteMatrix(const std::string &id)
{
    const SuiteMatrixInfo *info = findSuiteMatrix(id);
    if (info == nullptr)
        fatal("unknown SuiteSparse surrogate id '" + id + "'");
    return *info;
}

const SuiteMatrixInfo *
findSuiteMatrix(const std::string &id)
{
    for (const auto &info : suiteCatalog())
        if (info.id == id)
            return &info;
    return nullptr;
}

} // namespace copernicus
