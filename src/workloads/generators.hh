/**
 * @file
 * Synthetic sparse-matrix generators (Section 3.2 plus the structural
 * families needed by the SuiteSparse surrogate catalog).
 *
 * All generators are deterministic given the Rng they are passed and
 * return finalized TripletMatrix objects.
 */

#ifndef COPERNICUS_WORKLOADS_GENERATORS_HH
#define COPERNICUS_WORKLOADS_GENERATORS_HH

#include "common/rng.hh"
#include "matrix/triplet_matrix.hh"

namespace copernicus {

/**
 * Uniform random matrix: each cell is non-zero independently with
 * probability @p density; values are uniform in [0.5, 1.5).
 *
 * For densities below ~0.05 the generator samples the non-zero count and
 * draws distinct positions instead of sweeping all n^2 cells, so very
 * sparse large matrices stay cheap to build.
 */
TripletMatrix randomMatrix(Index n, double density, Rng &rng);

/**
 * Band matrix of width @p k per the paper's definition: a(i,j) = 0 when
 * |i - j| > k/2 (so k = 1 is the pure diagonal). Cells inside the band
 * are non-zero with probability @p fill (default: completely filled).
 */
TripletMatrix bandMatrix(Index n, Index k, Rng &rng, double fill = 1.0);

/** Pure diagonal matrix (band of width 1) with non-zero diagonal. */
TripletMatrix diagonalMatrix(Index n, Rng &rng);

/**
 * 2D Poisson 5-point stencil on an nx x ny grid: the classic PDE
 * coefficient matrix (4 on the diagonal, -1 for grid neighbours).
 * The matrix dimension is nx*ny and it is symmetric positive-definite.
 */
TripletMatrix stencil2d(Index nx, Index ny);

/**
 * 3D stencil on a g^3 grid. @p box selects the neighbourhood: false
 * gives the 7-point von Neumann stencil, true the 27-point Moore
 * stencil (denser, like electromagnetic/thermal meshes).
 */
TripletMatrix stencil3d(Index g, bool box = false);

/**
 * R-MAT power-law digraph adjacency matrix.
 *
 * @param n Number of vertices (rounded up to a power of two internally;
 *        edges outside [0, n) are redrawn).
 * @param edges Target edge count after deduplication (best effort).
 * @param a,b,c Recursive quadrant probabilities (d = 1-a-b-c).
 */
TripletMatrix rmatGraph(Index n, std::size_t edges, Rng &rng,
                        double a = 0.57, double b = 0.19,
                        double c = 0.19);

/**
 * Road-network-like graph: a sqrt(n) x sqrt(n) grid with each lattice
 * edge kept with probability @p keep, plus a sprinkling of long-range
 * shortcuts. Symmetric, bounded degree, strong spatial locality.
 */
TripletMatrix roadGrid(Index side, Rng &rng, double keep = 0.75,
                       double shortcutFraction = 0.005);

/**
 * Circuit-simulation-like matrix: full main diagonal, a tridiagonal
 * coupling band kept with probability @p bandKeep, @p extraPerRow random
 * couplings drawn near the diagonal, and a few dense rail rows/columns.
 */
TripletMatrix circuitMatrix(Index n, Rng &rng, double bandKeep = 0.6,
                            double extraPerRow = 2.0,
                            Index railCount = 2);

/**
 * Pruned neural-network weight layer (rows x cols, not necessarily
 * square). @p density survives pruning; if @p blockStructured, pruning
 * keeps/drops whole 4x4 blocks (structured pruning, Section 8).
 */
TripletMatrix prunedLayer(Index rows, Index cols, double density,
                          Rng &rng, bool blockStructured = false);

/**
 * Recommendation-model embedding access pattern: @p batch one-hot-ish
 * rows, each with @p lookups random hits into a @p tableSize -entry
 * table (Section 3.1's "accesses are random and sparse").
 */
TripletMatrix embeddingAccess(Index batch, Index tableSize, Index lookups,
                              Rng &rng);

} // namespace copernicus

#endif // COPERNICUS_WORKLOADS_GENERATORS_HH
