/**
 * @file
 * Surrogate catalog for the 20 SuiteSparse matrices of Table 1.
 *
 * The paper's matrices range up to 182M non-zeros; Copernicus cannot ship
 * them, so each catalog entry pairs the paper's metadata (dimension, nnz,
 * kind) with a laptop-scale generator that reproduces the *kind* of
 * structure — power-law digraphs for the web/social graphs, lattice-like
 * graphs for road networks, stencils for the PDE meshes, band-plus-fill
 * for circuit matrices — at the paper's average non-zeros per row. The
 * partition-level sparsity statistics that drive every figure (partition
 * density, row density, non-zero-row fraction — Figure 3) are properties
 * of this local structure, which is what the surrogates preserve.
 *
 * Real SuiteSparse .mtx files can be used instead via readMatrixMarket().
 */

#ifndef COPERNICUS_WORKLOADS_SUITE_CATALOG_HH
#define COPERNICUS_WORKLOADS_SUITE_CATALOG_HH

#include <string>
#include <vector>

#include "matrix/triplet_matrix.hh"

namespace copernicus {

/** Structural family a surrogate generator draws from. */
enum class SurrogateRecipe
{
    Stencil3dBox,   ///< 27-point 3D mesh (EM / thermal problems)
    Stencil3d,      ///< 7-point 3D mesh
    Stencil2d,      ///< 5-point 2D mesh (structural problems)
    Circuit,        ///< diagonal + coupling band + rails
    RmatDirected,   ///< power-law digraph (web / social / wiki)
    RmatSkewed,     ///< heavily skewed R-MAT (kron_g500)
    RoadGrid,       ///< lattice-like bounded-degree graph
    RandomUniform,  ///< unstructured sparse (LP, biochemical)
};

/** One Table-1 row plus its surrogate recipe. */
struct SuiteMatrixInfo
{
    /** Two-letter id used in the paper's figures (2C, FR, ...). */
    std::string id;

    /** SuiteSparse matrix name. */
    std::string name;

    /** Kind column of Table 1. */
    std::string kind;

    /** Paper dimension, in millions of rows (square matrices). */
    double paperDimM;

    /** Paper non-zero count, in millions. */
    double paperNnzM;

    /** Surrogate dimension actually generated. */
    Index surrogateDim;

    SurrogateRecipe recipe;

    /** Paper's average non-zeros per row, the matched statistic. */
    double
    paperNnzPerRow() const
    {
        return paperNnzM / paperDimM;
    }

    /**
     * Generate the surrogate.
     *
     * @param seed Per-matrix seeds are derived from this study seed.
     */
    TripletMatrix generate(std::uint64_t seed) const;
};

/** All 20 Table-1 surrogates, in the table's order. */
const std::vector<SuiteMatrixInfo> &suiteCatalog();

/** Lookup by two-letter id; FatalError if unknown. */
const SuiteMatrixInfo &suiteMatrix(const std::string &id);

/** Lookup by two-letter id; nullptr if unknown (CLI-friendly). */
const SuiteMatrixInfo *findSuiteMatrix(const std::string &id);

} // namespace copernicus

#endif // COPERNICUS_WORKLOADS_SUITE_CATALOG_HH
