#include "workloads/generators.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/status.hh"

namespace copernicus {

namespace {

/** Non-zero magnitude: uniform in [0.5, 1.5) so sums never cancel. */
Value
drawValue(Rng &rng)
{
    return static_cast<Value>(rng.range(0.5, 1.5));
}

std::uint64_t
cellKey(Index r, Index c)
{
    return (static_cast<std::uint64_t>(r) << 32) | c;
}

} // namespace

TripletMatrix
randomMatrix(Index n, double density, Rng &rng)
{
    fatalIf(density < 0.0 || density > 1.0,
            "randomMatrix density must be in [0, 1]");
    TripletMatrix matrix(n, n);
    const double cells = static_cast<double>(n) * n;
    if (density >= 0.05) {
        // Dense enough that a full Bernoulli sweep is the cheap path.
        for (Index r = 0; r < n; ++r)
            for (Index c = 0; c < n; ++c)
                if (rng.chance(density))
                    matrix.add(r, c, drawValue(rng));
    } else {
        const auto target =
            static_cast<std::size_t>(std::llround(cells * density));
        std::unordered_set<std::uint64_t> seen;
        seen.reserve(target * 2);
        while (seen.size() < target) {
            const Index r = static_cast<Index>(rng.below(n));
            const Index c = static_cast<Index>(rng.below(n));
            if (seen.insert(cellKey(r, c)).second)
                matrix.add(r, c, drawValue(rng));
        }
    }
    matrix.finalize();
    return matrix;
}

TripletMatrix
bandMatrix(Index n, Index k, Rng &rng, double fill)
{
    fatalIf(k == 0, "band width must be positive");
    TripletMatrix matrix(n, n);
    // a(i,j) = 0 when |i - j| > k/2, i.e. kept when 2|i - j| <= k.
    const Index half = k / 2;
    for (Index r = 0; r < n; ++r) {
        const Index c_begin = r > half ? r - half : 0;
        const Index c_end = std::min<Index>(n, r + half + 1);
        for (Index c = c_begin; c < c_end; ++c)
            if (fill >= 1.0 || rng.chance(fill))
                matrix.add(r, c, drawValue(rng));
    }
    matrix.finalize();
    return matrix;
}

TripletMatrix
diagonalMatrix(Index n, Rng &rng)
{
    return bandMatrix(n, 1, rng, 1.0);
}

TripletMatrix
stencil2d(Index nx, Index ny)
{
    const Index n = nx * ny;
    TripletMatrix matrix(n, n);
    auto at = [nx](Index x, Index y) { return y * nx + x; };
    for (Index y = 0; y < ny; ++y) {
        for (Index x = 0; x < nx; ++x) {
            const Index i = at(x, y);
            matrix.add(i, i, Value(4));
            if (x > 0)
                matrix.add(i, at(x - 1, y), Value(-1));
            if (x + 1 < nx)
                matrix.add(i, at(x + 1, y), Value(-1));
            if (y > 0)
                matrix.add(i, at(x, y - 1), Value(-1));
            if (y + 1 < ny)
                matrix.add(i, at(x, y + 1), Value(-1));
        }
    }
    matrix.finalize();
    return matrix;
}

TripletMatrix
stencil3d(Index g, bool box)
{
    const Index n = g * g * g;
    TripletMatrix matrix(n, n);
    auto at = [g](Index x, Index y, Index z) {
        return (z * g + y) * g + x;
    };
    for (Index z = 0; z < g; ++z) {
        for (Index y = 0; y < g; ++y) {
            for (Index x = 0; x < g; ++x) {
                const Index i = at(x, y, z);
                for (int dz = -1; dz <= 1; ++dz) {
                    for (int dy = -1; dy <= 1; ++dy) {
                        for (int dx = -1; dx <= 1; ++dx) {
                            const int manhattan = std::abs(dx) +
                                                  std::abs(dy) +
                                                  std::abs(dz);
                            if (!box && manhattan > 1)
                                continue;
                            const auto nx = static_cast<std::int64_t>(x) +
                                            dx;
                            const auto ny = static_cast<std::int64_t>(y) +
                                            dy;
                            const auto nz = static_cast<std::int64_t>(z) +
                                            dz;
                            if (nx < 0 || ny < 0 || nz < 0 || nx >= g ||
                                ny >= g || nz >= g) {
                                continue;
                            }
                            const Index j = at(static_cast<Index>(nx),
                                               static_cast<Index>(ny),
                                               static_cast<Index>(nz));
                            matrix.add(i, j,
                                       i == j ? Value(box ? 26 : 6)
                                              : Value(-1));
                        }
                    }
                }
            }
        }
    }
    matrix.finalize();
    return matrix;
}

TripletMatrix
rmatGraph(Index n, std::size_t edges, Rng &rng, double a, double b,
          double c)
{
    fatalIf(a + b + c > 1.0, "R-MAT quadrant probabilities exceed 1");
    Index scale = 0;
    while ((Index(1) << scale) < n)
        ++scale;
    const Index side = Index(1) << scale;

    TripletMatrix matrix(n, n);
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(edges * 2);
    // Cap attempts so adversarial parameters cannot loop forever.
    const std::size_t max_attempts = edges * 16 + 1024;
    std::size_t attempts = 0;
    while (seen.size() < edges && attempts < max_attempts) {
        ++attempts;
        Index r = 0, col = 0;
        for (Index bit = side >> 1; bit > 0; bit >>= 1) {
            const double roll = rng.uniform();
            if (roll < a) {
                // top-left: nothing set
            } else if (roll < a + b) {
                col |= bit;
            } else if (roll < a + b + c) {
                r |= bit;
            } else {
                r |= bit;
                col |= bit;
            }
        }
        if (r >= n || col >= n)
            continue;
        if (seen.insert(cellKey(r, col)).second)
            matrix.add(r, col, Value(1));
    }
    matrix.finalize();
    return matrix;
}

TripletMatrix
roadGrid(Index side, Rng &rng, double keep, double shortcutFraction)
{
    const Index n = side * side;
    TripletMatrix matrix(n, n);
    auto at = [side](Index x, Index y) { return y * side + x; };
    for (Index y = 0; y < side; ++y) {
        for (Index x = 0; x < side; ++x) {
            const Index i = at(x, y);
            if (x + 1 < side && rng.chance(keep)) {
                const Index j = at(x + 1, y);
                matrix.add(i, j, Value(1));
                matrix.add(j, i, Value(1));
            }
            if (y + 1 < side && rng.chance(keep)) {
                const Index j = at(x, y + 1);
                matrix.add(i, j, Value(1));
                matrix.add(j, i, Value(1));
            }
        }
    }
    const auto shortcuts = static_cast<std::size_t>(
        static_cast<double>(n) * shortcutFraction);
    for (std::size_t s = 0; s < shortcuts; ++s) {
        const Index i = static_cast<Index>(rng.below(n));
        const Index j = static_cast<Index>(rng.below(n));
        if (i != j) {
            matrix.add(i, j, Value(1));
            matrix.add(j, i, Value(1));
        }
    }
    matrix.finalize();
    return matrix;
}

TripletMatrix
circuitMatrix(Index n, Rng &rng, double bandKeep, double extraPerRow,
              Index railCount)
{
    TripletMatrix matrix(n, n);
    for (Index r = 0; r < n; ++r) {
        matrix.add(r, r, drawValue(rng));
        if (r + 1 < n && rng.chance(bandKeep)) {
            matrix.add(r, r + 1, drawValue(rng));
            matrix.add(r + 1, r, drawValue(rng));
        }
        // Local couplings: near-diagonal window models placement
        // locality of circuit netlists.
        const Index window = std::max<Index>(Index(64), n / 64);
        const double prob = extraPerRow / 2.0;
        for (int side = 0; side < 2; ++side) {
            double expect = prob;
            while (expect > 0 && rng.chance(std::min(1.0, expect))) {
                const Index offset =
                    static_cast<Index>(rng.below(window)) + 1;
                Index c;
                if (side == 0)
                    c = r >= offset ? r - offset : r + offset;
                else
                    c = r + offset < n ? r + offset : r - offset;
                if (c < n && c != r)
                    matrix.add(r, c, drawValue(rng));
                expect -= 1.0;
            }
        }
    }
    // Rail nodes (supply nets) couple to many rows.
    for (Index k = 0; k < railCount; ++k) {
        const Index rail = static_cast<Index>(rng.below(n));
        const Index fanout = n / 16;
        for (Index f = 0; f < fanout; ++f) {
            const Index r = static_cast<Index>(rng.below(n));
            matrix.add(r, rail, drawValue(rng));
        }
    }
    matrix.finalize();
    return matrix;
}

TripletMatrix
prunedLayer(Index rows, Index cols, double density, Rng &rng,
            bool blockStructured)
{
    TripletMatrix matrix(rows, cols);
    if (!blockStructured) {
        for (Index r = 0; r < rows; ++r)
            for (Index c = 0; c < cols; ++c)
                if (rng.chance(density))
                    matrix.add(r, c, drawValue(rng));
    } else {
        constexpr Index block = 4;
        for (Index br = 0; br < rows; br += block) {
            for (Index bc = 0; bc < cols; bc += block) {
                if (!rng.chance(density))
                    continue;
                for (Index r = br; r < std::min(rows, br + block); ++r)
                    for (Index c = bc; c < std::min(cols, bc + block);
                         ++c)
                        matrix.add(r, c, drawValue(rng));
            }
        }
    }
    matrix.finalize();
    return matrix;
}

TripletMatrix
embeddingAccess(Index batch, Index tableSize, Index lookups, Rng &rng)
{
    fatalIf(lookups > tableSize,
            "embeddingAccess: more lookups than table entries");
    TripletMatrix matrix(batch, tableSize);
    for (Index row = 0; row < batch; ++row) {
        std::unordered_set<Index> hit;
        while (hit.size() < lookups) {
            const Index c = static_cast<Index>(rng.below(tableSize));
            if (hit.insert(c).second)
                matrix.add(row, c, Value(1));
        }
    }
    matrix.finalize();
    return matrix;
}

} // namespace copernicus
