/**
 * @file
 * Sparse x sparse matrix multiplication (Gustavson's row-wise
 * algorithm), the second ML kernel of Section 3.3 beside SpMV/SpMM.
 */

#ifndef COPERNICUS_KERNELS_SPGEMM_HH
#define COPERNICUS_KERNELS_SPGEMM_HH

#include "matrix/csr_matrix.hh"
#include "matrix/triplet_matrix.hh"

namespace copernicus {

/**
 * C = A * B for sparse A and B.
 *
 * @param a Left operand.
 * @param b Right operand; b.rows() must equal a.cols().
 * @return Finalized sparse product (exact zeros produced by
 *         cancellation are dropped).
 */
TripletMatrix spgemm(const CsrMatrix &a, const CsrMatrix &b);

/** Convenience overload building the CSR operands internally. */
TripletMatrix spgemm(const TripletMatrix &a, const TripletMatrix &b);

} // namespace copernicus

#endif // COPERNICUS_KERNELS_SPGEMM_HH
