#include "kernels/spmv.hh"

#include "common/status.hh"
#include "formats/bcsr_format.hh"
#include "formats/bitmap_format.hh"
#include "formats/coo_format.hh"
#include "formats/csc_format.hh"
#include "formats/csr_format.hh"
#include "formats/dense_format.hh"
#include "formats/dia_format.hh"
#include "formats/dok_format.hh"
#include "formats/ell_format.hh"
#include "formats/ellcoo_format.hh"
#include "formats/jds_format.hh"
#include "formats/lil_format.hh"
#include "formats/sell_format.hh"
#include "formats/sellcs_format.hh"
#include "kernels/dot_engine.hh"

namespace copernicus {

namespace {

void
checkOperand(Index p, std::span<const Value> x, const char *what)
{
    fatalIf(x.size() != p,
            std::string(what) + ": operand length must equal tile size");
}

std::vector<Value>
spmvCsr(const CsrEncoded &csr, std::span<const Value> x)
{
    const Index p = csr.tileSize();
    std::vector<Value> y(p, Value(0));
    for (Index r = 0; r < p; ++r) {
        Value acc = 0;
        for (Index i = csr.rowStart(r); i < csr.rowEnd(r); ++i)
            acc += csr.values[i] * x[csr.colInx[i]];
        y[r] = acc;
    }
    return y;
}

std::vector<Value>
spmvCsc(const CscEncoded &csc, std::span<const Value> x)
{
    const Index p = csc.tileSize();
    std::vector<Value> y(p, Value(0));
    for (Index c = 0; c < p; ++c)
        for (Index i = csc.colStart(c); i < csc.colEnd(c); ++i)
            y[csc.rowInx[i]] += csc.values[i] * x[c];
    return y;
}

std::vector<Value>
spmvBcsr(const BcsrEncoded &bcsr, std::span<const Value> x)
{
    const Index p = bcsr.tileSize();
    const Index b = bcsr.blockSize();
    std::vector<Value> y(p, Value(0));
    const Index grid = p / b;
    for (Index br = 0; br < grid; ++br) {
        for (Index i = bcsr.blockRowStart(br); i < bcsr.blockRowEnd(br);
             ++i) {
            const Index col0 = bcsr.colInx[i];
            const auto &flat = bcsr.values[i];
            for (Index j = 0; j < b * b; ++j)
                y[br * b + j / b] += flat[j] * x[col0 + j % b];
        }
    }
    return y;
}

std::vector<Value>
spmvCoo(const CooEncoded &coo, std::span<const Value> x)
{
    std::vector<Value> y(coo.tileSize(), Value(0));
    for (std::size_t i = 0; i < coo.values.size(); ++i)
        y[coo.rowInx[i]] += coo.values[i] * x[coo.colInx[i]];
    return y;
}

std::vector<Value>
spmvDok(const DokEncoded &dok, std::span<const Value> x)
{
    std::vector<Value> y(dok.tileSize(), Value(0));
    for (const auto &[key, value] : dok.table) {
        const Index row = static_cast<Index>(key >> 32);
        const Index col = static_cast<Index>(key & 0xffffffffULL);
        y[row] += value * x[col];
    }
    return y;
}

std::vector<Value>
spmvLil(const LilEncoded &lil, std::span<const Value> x)
{
    const Index p = lil.tileSize();
    std::vector<Value> y(p, Value(0));
    for (Index c = 0; c < p; ++c) {
        for (Index level = 0; level < lil.height(); ++level) {
            const Index row = lil.rowAt(level, c);
            if (row == LilEncoded::endMarker)
                break;
            y[row] += lil.valueAt(level, c) * x[c];
        }
    }
    return y;
}

std::vector<Value>
spmvEll(const EllEncoded &ell, std::span<const Value> x)
{
    const Index p = ell.tileSize();
    std::vector<Value> y(p, Value(0));
    for (Index r = 0; r < p; ++r) {
        Value acc = 0;
        for (Index slot = 0; slot < ell.width(); ++slot) {
            const Index col = ell.colAt(r, slot);
            if (col == EllEncoded::padMarker)
                break;
            acc += ell.valueAt(r, slot) * x[col];
        }
        y[r] = acc;
    }
    return y;
}

std::vector<Value>
spmvSell(const SellEncoded &sell, std::span<const Value> x)
{
    const Index p = sell.tileSize();
    const Index c = sell.sliceHeight();
    std::vector<Value> y(p, Value(0));
    for (std::size_t s = 0; s < sell.slices.size(); ++s) {
        const auto &slice = sell.slices[s];
        const Index base = static_cast<Index>(s) * c;
        for (Index r = 0; r < c; ++r) {
            Value acc = 0;
            for (Index slot = 0; slot < slice.width; ++slot) {
                const auto at = static_cast<std::size_t>(r) * slice.width +
                                slot;
                const Index col = slice.colInx[at];
                if (col == SellEncoded::padMarker)
                    break;
                acc += slice.values[at] * x[col];
            }
            y[base + r] = acc;
        }
    }
    return y;
}

std::vector<Value>
spmvDia(const DiaEncoded &dia, std::span<const Value> x)
{
    const Index p = dia.tileSize();
    std::vector<Value> y(p, Value(0));
    for (const auto &diag : dia.diagonals) {
        const std::int32_t d = diag.number;
        const Index row_begin = d < 0 ? static_cast<Index>(-d) : 0;
        const Index row_end =
            d < 0 ? p : static_cast<Index>(static_cast<std::int32_t>(p) -
                                           d);
        for (Index r = row_begin; r < row_end; ++r) {
            const Index c =
                static_cast<Index>(static_cast<std::int32_t>(r) + d);
            y[r] += diag.values[DiaEncoded::slotForRow(r, d)] * x[c];
        }
    }
    return y;
}

std::vector<Value>
spmvJds(const JdsEncoded &jds, std::span<const Value> x)
{
    const Index p = jds.tileSize();
    std::vector<Value> y(p, Value(0));
    const std::span<const Index> jd = jds.jdPtr();
    const std::span<const Index> perm = jds.perm();
    const std::span<const Index> cols = jds.colInx();
    const Index width = static_cast<Index>(jd.size()) - 1;
    for (Index j = 0; j < width; ++j) {
        const Index begin = jd[j];
        const Index end = jd[j + 1];
        for (Index i = begin; i < end; ++i) {
            const Index row = perm[i - begin];
            y[row] += jds.values[i] * x[cols[i]];
        }
    }
    return y;
}

std::vector<Value>
spmvSellCs(const SellCsEncoded &scs, std::span<const Value> x)
{
    const Index p = scs.tileSize();
    const Index c = scs.sliceHeight();
    std::vector<Value> y(p, Value(0));
    for (std::size_t s = 0; s < scs.slices.size(); ++s) {
        const auto &slice = scs.slices[s];
        const Index base = static_cast<Index>(s) * c;
        for (Index k = 0; k < c; ++k) {
            Value acc = 0;
            for (Index slot = 0; slot < slice.width; ++slot) {
                const auto at = static_cast<std::size_t>(k) * slice.width +
                                slot;
                const Index col = slice.colInx[at];
                if (col == SellCsEncoded::padMarker)
                    break;
                acc += slice.values[at] * x[col];
            }
            y[scs.perm[base + k]] = acc;
        }
    }
    return y;
}

std::vector<Value>
spmvBitmap(const BitmapEncoded &bitmap, std::span<const Value> x)
{
    const Index p = bitmap.tileSize();
    std::vector<Value> y(p, Value(0));
    std::size_t next = 0;
    for (Index r = 0; r < p; ++r) {
        Value acc = 0;
        for (Index c = 0; c < p; ++c)
            if (bitmap.test(r, c))
                acc += bitmap.values[next++] * x[c];
        y[r] = acc;
    }
    return y;
}

std::vector<Value>
spmvEllCoo(const EllCooEncoded &hybrid, std::span<const Value> x)
{
    const Index p = hybrid.tileSize();
    std::vector<Value> y(p, Value(0));
    for (Index r = 0; r < p; ++r) {
        for (Index slot = 0; slot < hybrid.width(); ++slot) {
            const Index col = hybrid.colAt(r, slot);
            if (col == EllCooEncoded::padMarker)
                break;
            y[r] += hybrid.valueAt(r, slot) * x[col];
        }
    }
    for (std::size_t i = 0; i < hybrid.overflowValues.size(); ++i) {
        y[hybrid.overflowRows[i]] +=
            hybrid.overflowValues[i] * x[hybrid.overflowCols[i]];
    }
    return y;
}

} // namespace

std::vector<Value>
spmvDense(const Tile &tile, std::span<const Value> x)
{
    checkOperand(tile.size(), x, "spmvDense");
    const Index p = tile.size();
    std::vector<Value> y(p, Value(0));
    std::vector<Value> row(p);
    for (Index r = 0; r < p; ++r) {
        for (Index c = 0; c < p; ++c)
            row[c] = tile(r, c);
        y[r] = treeDot(row, x);
    }
    return y;
}

std::vector<Value>
spmvEncoded(const EncodedTile &encoded, std::span<const Value> x)
{
    checkOperand(encoded.tileSize(), x, "spmvEncoded");
    switch (encoded.kind()) {
      case FormatKind::Dense: {
        const auto &dense = encodedAs<DenseEncoded>(encoded,
                                                    FormatKind::Dense);
        const Index p = dense.tileSize();
        std::vector<Value> y(p, Value(0));
        for (Index r = 0; r < p; ++r) {
            std::span<const Value> row(
                dense.values.data() + static_cast<std::size_t>(r) * p, p);
            y[r] = treeDot(row, x);
        }
        return y;
      }
      case FormatKind::CSR:
        return spmvCsr(encodedAs<CsrEncoded>(encoded, FormatKind::CSR), x);
      case FormatKind::CSC:
        return spmvCsc(encodedAs<CscEncoded>(encoded, FormatKind::CSC), x);
      case FormatKind::BCSR:
        return spmvBcsr(encodedAs<BcsrEncoded>(encoded, FormatKind::BCSR),
                        x);
      case FormatKind::COO:
        return spmvCoo(encodedAs<CooEncoded>(encoded, FormatKind::COO), x);
      case FormatKind::DOK:
        return spmvDok(encodedAs<DokEncoded>(encoded, FormatKind::DOK), x);
      case FormatKind::LIL:
        return spmvLil(encodedAs<LilEncoded>(encoded, FormatKind::LIL), x);
      case FormatKind::ELL:
        return spmvEll(encodedAs<EllEncoded>(encoded, FormatKind::ELL), x);
      case FormatKind::SELL:
        return spmvSell(encodedAs<SellEncoded>(encoded, FormatKind::SELL),
                        x);
      case FormatKind::DIA:
        return spmvDia(encodedAs<DiaEncoded>(encoded, FormatKind::DIA), x);
      case FormatKind::JDS:
        return spmvJds(encodedAs<JdsEncoded>(encoded, FormatKind::JDS), x);
      case FormatKind::ELLCOO:
        return spmvEllCoo(
            encodedAs<EllCooEncoded>(encoded, FormatKind::ELLCOO), x);
      case FormatKind::SELLCS:
        return spmvSellCs(
            encodedAs<SellCsEncoded>(encoded, FormatKind::SELLCS), x);
      case FormatKind::BITMAP:
        return spmvBitmap(
            encodedAs<BitmapEncoded>(encoded, FormatKind::BITMAP), x);
    }
    panic("spmvEncoded: unknown format kind");
}

std::vector<Value>
spmvPartitioned(const Partitioning &parts, FormatKind kind,
                std::span<const Value> x, const FormatRegistry &registry)
{
    const Index p = parts.partitionSize;
    const std::size_t padded_cols =
        static_cast<std::size_t>(parts.gridCols) * p;
    fatalIf(x.size() > padded_cols,
            "spmvPartitioned: operand longer than the padded width");

    std::vector<Value> padded_x(padded_cols, Value(0));
    std::copy(x.begin(), x.end(), padded_x.begin());

    std::vector<Value> y(static_cast<std::size_t>(parts.gridRows) * p,
                         Value(0));
    const FormatCodec &codec = registry.codec(kind);
    for (const Tile &tile : parts.tiles) {
        const auto encoded = codec.encode(tile);
        const std::span<const Value> segment(
            padded_x.data() + static_cast<std::size_t>(tile.tileCol()) * p,
            p);
        const auto partial = spmvEncoded(*encoded, segment);
        const std::size_t base =
            static_cast<std::size_t>(tile.tileRow()) * p;
        for (Index r = 0; r < p; ++r)
            y[base + r] += partial[r];
    }
    return y;
}

} // namespace copernicus
