#include "kernels/dot_engine.hh"

#include <vector>

#include "common/status.hh"

namespace copernicus {

Value
treeSum(std::span<const Value> terms)
{
    if (terms.empty())
        return Value(0);
    std::vector<Value> level(terms.begin(), terms.end());
    while (level.size() > 1) {
        std::vector<Value> next;
        next.reserve((level.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(level[i] + level[i + 1]);
        if (level.size() % 2 != 0)
            next.push_back(level.back());
        level = std::move(next);
    }
    return level.front();
}

Value
treeDot(std::span<const Value> a, std::span<const Value> b)
{
    fatalIf(a.size() != b.size(), "treeDot operand length mismatch");
    std::vector<Value> products(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        products[i] = a[i] * b[i];
    return treeSum(products);
}

} // namespace copernicus
