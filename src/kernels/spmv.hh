/**
 * @file
 * SpMV kernels that consume compressed tiles directly.
 *
 * These are the software mirror of the hardware's decompress+dot pipeline:
 * each format-specific kernel walks the encoded arrays without first
 * materializing the dense tile (the paper notes the performance
 * implications apply equally to "accelerators that directly perform
 * computations on compressed data"). Tests check every kernel against
 * decode-then-dense-multiply.
 */

#ifndef COPERNICUS_KERNELS_SPMV_HH
#define COPERNICUS_KERNELS_SPMV_HH

#include <span>
#include <vector>

#include "formats/encoded_tile.hh"
#include "formats/registry.hh"
#include "matrix/partitioner.hh"
#include "matrix/tile.hh"

namespace copernicus {

/**
 * y = tile * x for a dense tile (reference).
 *
 * @param tile p x p dense tile.
 * @param x Input segment of length p.
 * @return Output segment of length p.
 */
std::vector<Value> spmvDense(const Tile &tile, std::span<const Value> x);

/**
 * y = encoded * x, computed directly on the compressed representation.
 *
 * @param encoded Tile in any implemented format.
 * @param x Input segment of length tileSize().
 * @return Output segment of length tileSize().
 */
std::vector<Value> spmvEncoded(const EncodedTile &encoded,
                               std::span<const Value> x);

/**
 * Full-matrix SpMV over a partitioning, encoding each non-zero tile in
 * @p kind and accumulating the per-tile partial products.
 *
 * @param parts Partitioning of the operand matrix.
 * @param kind Format every tile is compressed in.
 * @param x Input vector, length >= gridCols * partitionSize (the padded
 *        width); shorter vectors are zero-extended to the padded width.
 * @param registry Codec source, defaults to the paper's parameters.
 * @return Output vector of padded length gridRows * partitionSize.
 */
std::vector<Value> spmvPartitioned(
    const Partitioning &parts, FormatKind kind,
    std::span<const Value> x,
    const FormatRegistry &registry = defaultRegistry());

} // namespace copernicus

#endif // COPERNICUS_KERNELS_SPMV_HH
