/**
 * @file
 * Sparse-matrix / dense-matrix multiplication built on the SpMV kernels.
 *
 * Section 3.3 observes that the machine-learning workloads reduce to
 * SpMV or SpMM over the same dot-product engine; this kernel realizes
 * SpMM as one SpMV per right-hand-side column, which is exactly how the
 * streaming platform would batch it.
 */

#ifndef COPERNICUS_KERNELS_SPMM_HH
#define COPERNICUS_KERNELS_SPMM_HH

#include "matrix/csr_matrix.hh"
#include "matrix/dense_matrix.hh"

namespace copernicus {

/**
 * C = A * B for sparse A (CSR) and dense B.
 *
 * @param a Sparse left operand.
 * @param b Dense right operand; b.rows() must equal a.cols().
 * @return Dense product of shape a.rows() x b.cols().
 */
DenseMatrix spmm(const CsrMatrix &a, const DenseMatrix &b);

} // namespace copernicus

#endif // COPERNICUS_KERNELS_SPMM_HH
