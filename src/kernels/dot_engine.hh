/**
 * @file
 * Reference model of the fine-grained-parallel dot-product engine
 * (Figure 2, stage 3): a width-p multiplier array feeding a balanced
 * adder tree.
 *
 * The summation order matters for float reproducibility, so the software
 * reference reduces pairwise exactly like the tree would; the HLS cycle
 * model in src/hls prices the same structure in time.
 */

#ifndef COPERNICUS_KERNELS_DOT_ENGINE_HH
#define COPERNICUS_KERNELS_DOT_ENGINE_HH

#include <span>

#include "common/types.hh"

namespace copernicus {

/**
 * Dot product of two equal-length spans via a balanced pairwise tree,
 * matching the hardware adder-tree summation order.
 */
Value treeDot(std::span<const Value> a, std::span<const Value> b);

/** Pairwise tree reduction of @p terms (helper for treeDot and tests). */
Value treeSum(std::span<const Value> terms);

} // namespace copernicus

#endif // COPERNICUS_KERNELS_DOT_ENGINE_HH
