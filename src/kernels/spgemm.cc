#include "kernels/spgemm.hh"

#include "common/status.hh"

namespace copernicus {

TripletMatrix
spgemm(const CsrMatrix &a, const CsrMatrix &b)
{
    fatalIf(b.rows() != a.cols(), "spgemm: inner dimensions must agree");
    TripletMatrix c(a.rows(), b.cols());

    // Gustavson: accumulate each output row in a sparse accumulator.
    std::vector<Value> accumulator(b.cols(), Value(0));
    std::vector<Index> touched;
    std::vector<bool> occupied(b.cols(), false);

    const auto &a_ptr = a.rowPtr();
    const auto &a_inds = a.colIndices();
    const auto &a_vals = a.values();
    const auto &b_ptr = b.rowPtr();
    const auto &b_inds = b.colIndices();
    const auto &b_vals = b.values();

    for (Index i = 0; i < a.rows(); ++i) {
        touched.clear();
        for (std::size_t ka = a_ptr[i]; ka < a_ptr[i + 1]; ++ka) {
            const Index k = a_inds[ka];
            const Value aik = a_vals[ka];
            for (std::size_t kb = b_ptr[k]; kb < b_ptr[k + 1]; ++kb) {
                const Index j = b_inds[kb];
                if (!occupied[j]) {
                    occupied[j] = true;
                    touched.push_back(j);
                }
                accumulator[j] += aik * b_vals[kb];
            }
        }
        for (Index j : touched) {
            if (accumulator[j] != Value(0))
                c.add(i, j, accumulator[j]);
            accumulator[j] = 0;
            occupied[j] = false;
        }
    }
    c.finalize();
    return c;
}

TripletMatrix
spgemm(const TripletMatrix &a, const TripletMatrix &b)
{
    return spgemm(CsrMatrix(a), CsrMatrix(b));
}

} // namespace copernicus
