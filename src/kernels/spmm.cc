#include "kernels/spmm.hh"

#include "common/status.hh"

namespace copernicus {

DenseMatrix
spmm(const CsrMatrix &a, const DenseMatrix &b)
{
    fatalIf(b.rows() != a.cols(), "spmm: inner dimensions must agree");
    DenseMatrix c(a.rows(), b.cols());
    const auto &ptr = a.rowPtr();
    const auto &inds = a.colIndices();
    const auto &vals = a.values();
    for (Index r = 0; r < a.rows(); ++r) {
        for (std::size_t i = ptr[r]; i < ptr[r + 1]; ++i) {
            const Value v = vals[i];
            const Index k = inds[i];
            for (Index j = 0; j < b.cols(); ++j)
                c(r, j) += v * b(k, j);
        }
    }
    return c;
}

} // namespace copernicus
