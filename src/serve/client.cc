#include "serve/client.hh"

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/status.hh"
#include "common/trace_context.hh"
#include "trace/span.hh"

namespace copernicus {

ServeClient
ServeClient::connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    fatalIf(path.empty() || path.size() >= sizeof(addr.sun_path),
            "serve client: bad socket path '" + path + "'");
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    fatalIf(fd < 0, std::string("serve client: socket(): ") +
                        std::strerror(errno));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        fatal("serve client: cannot connect to '" + path +
              "': " + std::strerror(err));
    }
    return ServeClient(fd);
}

ServeClient
ServeClient::connectTcp(int port)
{
    fatalIf(port <= 0 || port > 65535,
            "serve client: bad TCP port " + std::to_string(port));
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(fd < 0, std::string("serve client: socket(): ") +
                        std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        fatal("serve client: cannot connect to 127.0.0.1:" +
              std::to_string(port) + ": " + std::strerror(err));
    }
    return ServeClient(fd);
}

ServeClient::~ServeClient()
{
    if (fd >= 0)
        ::close(fd);
}

ServeClient::ServeClient(ServeClient &&other) noexcept
    : fd(other.fd), rxBuffer(std::move(other.rxBuffer)),
      nextRequestId(other.nextRequestId)
{
    other.fd = -1;
}

ServeClient &
ServeClient::operator=(ServeClient &&other) noexcept
{
    if (this != &other) {
        if (fd >= 0)
            ::close(fd);
        fd = other.fd;
        rxBuffer = std::move(other.rxBuffer);
        nextRequestId = other.nextRequestId;
        other.fd = -1;
    }
    return *this;
}

void
ServeClient::setReceiveTimeoutMs(double ms)
{
    fatalIf(fd < 0, "serve client: not connected");
    timeval tv{};
    if (ms > 0) {
        tv.tv_sec = static_cast<time_t>(ms / 1000.0);
        tv.tv_usec = static_cast<suseconds_t>(
            (ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
    }
    fatalIf(::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv,
                         sizeof(tv)) != 0,
            std::string("serve client: SO_RCVTIMEO: ") +
                std::strerror(errno));
}

std::string
ServeClient::requestLine(const std::string &line)
{
    fatalIf(fd < 0, "serve client: not connected");
    std::string framed = line;
    // NDJSON framing: a raw newline inside the request (e.g. from a
    // multi-line shell --params string) would split it into two wire
    // lines. Valid JSON never needs a newline inside a string literal,
    // so mapping them to spaces is lossless inter-token whitespace.
    for (char &c : framed)
        if (c == '\n' || c == '\r')
            c = ' ';
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n = ::send(fd, framed.data() + sent,
                                 framed.size() - sent, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue;
        fatalIf(n <= 0, std::string("serve client: send(): ") +
                            std::strerror(errno));
        sent += static_cast<std::size_t>(n);
    }

    for (;;) {
        const std::size_t pos = rxBuffer.find('\n');
        if (pos != std::string::npos) {
            std::string response = rxBuffer.substr(0, pos);
            rxBuffer.erase(0, pos + 1);
            return response;
        }
        char buf[4096];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        fatalIf(n == 0,
                "serve client: server closed the connection");
        fatalIf(n < 0,
                errno == EAGAIN || errno == EWOULDBLOCK
                    ? std::string("serve client: receive timeout")
                    : std::string("serve client: recv(): ") +
                          std::strerror(errno));
        rxBuffer.append(buf, static_cast<std::size_t>(n));
    }
}

JsonValue
ServeClient::call(const std::string &op, const std::string &paramsJson,
                  double timeoutMs)
{
    // When span recording is on in this process, the call itself is a
    // span and its identity travels on the wire, so the server's
    // serve.request span parents under this client span — one causal
    // tree across the socket. With recording off span.context() is
    // invalid and the request carries no trace field.
    const ScopedSpan span("client." + op, "client");
    const TraceContext trace = span.context();

    std::ostringstream request;
    request << "{\"op\": ";
    writeJsonString(request, op);
    request << ", \"id\": " << nextRequestId++;
    if (timeoutMs > 0) {
        request << ", \"timeout_ms\": ";
        writeJsonNumber(request, timeoutMs);
    }
    if (trace.valid()) {
        request << ", \"trace\": {\"trace_id\": ";
        writeJsonString(request, traceIdToHex(trace.traceId));
        request << ", \"parent_span_id\": ";
        writeJsonString(request, traceIdToHex(trace.spanId));
        request << '}';
    }
    if (!paramsJson.empty())
        request << ", \"params\": " << paramsJson;
    request << '}';

    const std::string line = requestLine(request.str());
    JsonValue response;
    fatalIf(!parseJson(line, response) || !response.isObject(),
            "serve client: malformed response line: " + line);
    return response;
}

} // namespace copernicus
