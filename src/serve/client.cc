#include "serve/client.hh"

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/status.hh"
#include "common/trace_context.hh"
#include "trace/span.hh"

namespace copernicus {

ServeClient
ServeClient::connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    fatalIf(path.empty() || path.size() >= sizeof(addr.sun_path),
            "serve client: bad socket path '" + path + "'");
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    fatalIf(fd < 0, std::string("serve client: socket(): ") +
                        std::strerror(errno));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        fatal("serve client: cannot connect to '" + path +
              "': " + std::strerror(err));
    }
    return ServeClient(fd);
}

ServeClient
ServeClient::connectTcp(int port)
{
    fatalIf(port <= 0 || port > 65535,
            "serve client: bad TCP port " + std::to_string(port));
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(fd < 0, std::string("serve client: socket(): ") +
                        std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        fatal("serve client: cannot connect to 127.0.0.1:" +
              std::to_string(port) + ": " + std::strerror(err));
    }
    return ServeClient(fd);
}

ServeClient::~ServeClient()
{
    if (fd >= 0)
        ::close(fd);
}

ServeClient::ServeClient(ServeClient &&other) noexcept
    : fd(other.fd), rxBuffer(std::move(other.rxBuffer)),
      nextRequestId(other.nextRequestId), binary(other.binary),
      decoder(std::move(other.decoder)),
      nextStreamId(other.nextStreamId),
      readyResponses(std::move(other.readyResponses))
{
    other.fd = -1;
}

ServeClient &
ServeClient::operator=(ServeClient &&other) noexcept
{
    if (this != &other) {
        if (fd >= 0)
            ::close(fd);
        fd = other.fd;
        rxBuffer = std::move(other.rxBuffer);
        nextRequestId = other.nextRequestId;
        binary = other.binary;
        decoder = std::move(other.decoder);
        nextStreamId = other.nextStreamId;
        readyResponses = std::move(other.readyResponses);
        other.fd = -1;
    }
    return *this;
}

void
ServeClient::setReceiveTimeoutMs(double ms)
{
    fatalIf(fd < 0, "serve client: not connected");
    timeval tv{};
    if (ms > 0) {
        tv.tv_sec = static_cast<time_t>(ms / 1000.0);
        tv.tv_usec = static_cast<suseconds_t>(
            (ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
    }
    fatalIf(::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv,
                         sizeof(tv)) != 0,
            std::string("serve client: SO_RCVTIMEO: ") +
                std::strerror(errno));
}

void
ServeClient::sendAll(const char *data, std::size_t size)
{
    std::size_t sent = 0;
    while (sent < size) {
        const ssize_t n =
            ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue;
        fatalIf(n <= 0, std::string("serve client: send(): ") +
                            std::strerror(errno));
        sent += static_cast<std::size_t>(n);
    }
}

void
ServeClient::enableBinaryFraming()
{
    fatalIf(fd < 0, "serve client: not connected");
    fatalIf(binary, "serve client: binary framing already enabled");
    // The magic must be the first bytes the server sees — its dialect
    // sniff is settled by them. Nothing can have been received yet
    // either (the server never speaks first).
    fatalIf(!rxBuffer.empty(),
            "serve client: enableBinaryFraming() after NDJSON traffic");
    sendAll(framingMagic.data(), framingMagic.size());
    binary = true;
}

std::uint64_t
ServeClient::sendRequestFrame(const std::string &payload)
{
    const std::uint64_t streamId = nextStreamId++;
    const std::string frame =
        encodeFrame(FrameType::Request, streamId, payload);
    sendAll(frame.data(), frame.size());
    return streamId;
}

std::string
ServeClient::awaitResponse(std::uint64_t streamId)
{
    for (;;) {
        const auto it = readyResponses.find(streamId);
        if (it != readyResponses.end()) {
            std::string payload = std::move(it->second);
            readyResponses.erase(it);
            return payload;
        }
        char buf[4096];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        fatalIf(n == 0,
                "serve client: server closed the connection");
        fatalIf(n < 0,
                errno == EAGAIN || errno == EWOULDBLOCK
                    ? std::string("serve client: receive timeout")
                    : std::string("serve client: recv(): ") +
                          std::strerror(errno));
        decoder.feed(buf, static_cast<std::size_t>(n));
        Frame frame;
        for (;;) {
            const DecodeResult result = decoder.next(frame);
            if (result == DecodeResult::NeedMore)
                break;
            fatalIf(result == DecodeResult::Fatal,
                    "serve client: broken frame stream: " +
                        decoder.error());
            fatalIf(result == DecodeResult::Oversized,
                    "serve client: oversized response frame (" +
                        std::to_string(decoder.declaredLength()) +
                        " bytes)");
            fatalIf(frame.type != FrameType::Response,
                    "serve client: unexpected frame type from server");
            readyResponses[frame.streamId] = std::move(frame.payload);
        }
    }
}

std::string
ServeClient::requestLine(const std::string &line)
{
    fatalIf(fd < 0, "serve client: not connected");
    std::string framed = line;
    // NDJSON framing: a raw newline inside the request (e.g. from a
    // multi-line shell --params string) would split it into two wire
    // lines. Valid JSON never needs a newline inside a string literal,
    // so mapping them to spaces is lossless inter-token whitespace.
    // Applied under binary framing too, so a request renders
    // byte-identically on either dialect.
    for (char &c : framed)
        if (c == '\n' || c == '\r')
            c = ' ';
    if (binary)
        return awaitResponse(sendRequestFrame(framed));

    framed.push_back('\n');
    sendAll(framed.data(), framed.size());
    for (;;) {
        const std::size_t pos = rxBuffer.find('\n');
        if (pos != std::string::npos) {
            std::string response = rxBuffer.substr(0, pos);
            rxBuffer.erase(0, pos + 1);
            return response;
        }
        char buf[4096];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        fatalIf(n == 0,
                "serve client: server closed the connection");
        fatalIf(n < 0,
                errno == EAGAIN || errno == EWOULDBLOCK
                    ? std::string("serve client: receive timeout")
                    : std::string("serve client: recv(): ") +
                          std::strerror(errno));
        rxBuffer.append(buf, static_cast<std::size_t>(n));
    }
}

std::string
ServeClient::buildRequestJson(const std::string &op,
                              const std::string &paramsJson,
                              double timeoutMs)
{
    // The caller's client.<op> span identity travels on the wire, so
    // the server's serve.request span parents under it — one causal
    // tree across the socket. With recording off the context is
    // invalid and the request carries no trace field.
    const TraceContext trace = currentTraceContext();

    std::ostringstream request;
    request << "{\"op\": ";
    writeJsonString(request, op);
    request << ", \"id\": " << nextRequestId++;
    if (timeoutMs > 0) {
        request << ", \"timeout_ms\": ";
        writeJsonNumber(request, timeoutMs);
    }
    if (trace.valid()) {
        request << ", \"trace\": {\"trace_id\": ";
        writeJsonString(request, traceIdToHex(trace.traceId));
        request << ", \"parent_span_id\": ";
        writeJsonString(request, traceIdToHex(trace.spanId));
        request << '}';
    }
    if (!paramsJson.empty())
        request << ", \"params\": " << paramsJson;
    request << '}';
    return request.str();
}

JsonValue
ServeClient::call(const std::string &op, const std::string &paramsJson,
                  double timeoutMs)
{
    // The span covers the whole round trip; buildRequestJson picks its
    // identity up from the thread-local context it establishes.
    const ScopedSpan span("client." + op, "client");
    const std::string line =
        requestLine(buildRequestJson(op, paramsJson, timeoutMs));
    JsonValue response;
    fatalIf(!parseJson(line, response) || !response.isObject(),
            "serve client: malformed response line: " + line);
    return response;
}

std::uint64_t
ServeClient::startCall(const std::string &op,
                       const std::string &paramsJson, double timeoutMs)
{
    fatalIf(fd < 0, "serve client: not connected");
    fatalIf(!binary,
            "serve client: startCall() requires binary framing");
    // The span covers only the send — the response is claimed later
    // by awaitCall(), possibly out of order — but its identity still
    // rides the wire, so the server side parents correctly.
    const ScopedSpan span("client." + op, "client");
    return sendRequestFrame(
        buildRequestJson(op, paramsJson, timeoutMs));
}

JsonValue
ServeClient::awaitCall(std::uint64_t streamId)
{
    fatalIf(!binary,
            "serve client: awaitCall() requires binary framing");
    const std::string payload = awaitResponse(streamId);
    JsonValue response;
    fatalIf(!parseJson(payload, response) || !response.isObject(),
            "serve client: malformed response payload: " + payload);
    return response;
}

void
ServeClient::cancelCall(std::uint64_t streamId)
{
    fatalIf(fd < 0, "serve client: not connected");
    fatalIf(!binary,
            "serve client: cancelCall() requires binary framing");
    const std::string frame =
        encodeFrame(FrameType::Cancel, streamId, "");
    sendAll(frame.data(), frame.size());
}

} // namespace copernicus
