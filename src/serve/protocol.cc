#include "serve/protocol.hh"

#include <cmath>
#include <sstream>

#include "common/rng.hh"
#include "common/status.hh"
#include "matrix/mm_io.hh"
#include "store/container.hh"
#include "workloads/generators.hh"

namespace copernicus {

const std::vector<Endpoint> &
allEndpoints()
{
    static const std::vector<Endpoint> endpoints = {
        Endpoint::Ping,       Endpoint::Stats,
        Endpoint::Shutdown,   Endpoint::Sleep,
        Endpoint::RunStudy,   Endpoint::PlanFormats,
        Endpoint::Advise,     Endpoint::ValidateTile,
        Endpoint::Metrics,    Endpoint::DumpFlightRec,
        Endpoint::StoreInfo,
    };
    return endpoints;
}

std::string_view
endpointName(Endpoint endpoint)
{
    switch (endpoint) {
      case Endpoint::Ping: return "ping";
      case Endpoint::Stats: return "stats";
      case Endpoint::Shutdown: return "shutdown";
      case Endpoint::Sleep: return "sleep";
      case Endpoint::RunStudy: return "run_study";
      case Endpoint::PlanFormats: return "plan_formats";
      case Endpoint::Advise: return "advise";
      case Endpoint::ValidateTile: return "validate_tile";
      case Endpoint::Metrics: return "metrics";
      case Endpoint::DumpFlightRec: return "dump_flightrec";
      case Endpoint::StoreInfo: return "store_info";
    }
    panic("endpointName: unhandled endpoint");
}

bool
parseEndpoint(std::string_view name, Endpoint &out)
{
    for (Endpoint endpoint : allEndpoints()) {
        if (endpointName(endpoint) == name) {
            out = endpoint;
            return true;
        }
    }
    return false;
}

std::string_view
requestParseErrorName(RequestParseError error)
{
    switch (error) {
      case RequestParseError::None: return "none";
      case RequestParseError::MalformedJson: return "malformed_json";
      case RequestParseError::NotAnObject: return "not_an_object";
      case RequestParseError::MissingOp: return "missing_op";
      case RequestParseError::UnknownOp: return "unknown_op";
      case RequestParseError::BadParams: return "bad_params";
    }
    panic("requestParseErrorName: unhandled error");
}

bool
parseRequest(const std::string &line, ServeRequest &out,
             std::string &error, RequestParseError &why)
{
    why = RequestParseError::None;
    JsonValue root;
    if (!parseJson(line, root)) {
        error = "request is not valid JSON";
        why = RequestParseError::MalformedJson;
        return false;
    }
    if (!root.isObject()) {
        error = "request must be a JSON object";
        why = RequestParseError::NotAnObject;
        return false;
    }
    const JsonValue *op = root.find("op");
    if (op == nullptr || !op->isString()) {
        error = "request needs a string \"op\" field";
        why = RequestParseError::MissingOp;
        return false;
    }
    if (!parseEndpoint(op->text, out.endpoint)) {
        error = "unknown op '" + op->text + "'";
        why = RequestParseError::UnknownOp;
        return false;
    }
    const double id = root.numberOr("id", 0);
    out.id = id > 0 && std::isfinite(id)
                 ? static_cast<std::uint64_t>(id)
                 : 0;
    out.timeoutMs = root.numberOr("timeout_ms", 0);
    if (out.timeoutMs < 0)
        out.timeoutMs = 0;
    const JsonValue *params = root.find("params");
    if (params != nullptr && !params->isObject()) {
        error = "\"params\" must be an object";
        why = RequestParseError::BadParams;
        return false;
    }
    out.params = params != nullptr ? *params : JsonValue{};
    out.params.kind = JsonValue::Kind::Object;
    // Trace propagation is strictly best-effort: absent, non-object or
    // unparseable ids leave the request untraced rather than failing
    // it.
    out.trace = TraceContext{};
    const JsonValue *trace = root.find("trace");
    if (trace != nullptr && trace->isObject()) {
        out.trace.traceId =
            traceIdFromHex(trace->stringOr("trace_id", ""));
        out.trace.spanId =
            traceIdFromHex(trace->stringOr("parent_span_id", ""));
        if (!out.trace.valid())
            out.trace = TraceContext{};
    }
    return true;
}

bool
parseRequest(const std::string &line, ServeRequest &out,
             std::string &error)
{
    RequestParseError why;
    return parseRequest(line, out, error, why);
}

std::string
okResponse(const ServeRequest &request, const std::string &resultJson)
{
    std::ostringstream out;
    out << "{\"ok\": true, \"id\": " << request.id << ", \"op\": ";
    writeJsonString(out, endpointName(request.endpoint));
    if (request.trace.valid()) {
        out << ", \"trace_id\": ";
        writeJsonString(out, traceIdToHex(request.trace.traceId));
    }
    out << ", \"result\": " << resultJson << '}';
    return out.str();
}

std::string
errorResponse(std::uint64_t id, std::string_view op,
              std::string_view code, const std::string &message,
              std::uint64_t traceId)
{
    std::ostringstream out;
    out << "{\"ok\": false, \"id\": " << id << ", \"op\": ";
    writeJsonString(out, op);
    out << ", \"error\": ";
    writeJsonString(out, code);
    out << ", \"message\": ";
    writeJsonString(out, message);
    if (traceId != 0) {
        out << ", \"trace_id\": ";
        writeJsonString(out, traceIdToHex(traceId));
    }
    out << '}';
    return out.str();
}

namespace {

Index
indexField(const JsonValue &spec, std::string_view key, double fallback,
           Index maxDim)
{
    const double value = spec.numberOr(key, fallback);
    fatalIf(value < 1 || !std::isfinite(value),
            "matrix spec: '" + std::string(key) +
                "' must be a positive number");
    fatalIf(value > static_cast<double>(maxDim),
            "matrix spec: '" + std::string(key) + "' = " +
                std::to_string(static_cast<std::uint64_t>(value)) +
                " exceeds the server cap of " + std::to_string(maxDim));
    return static_cast<Index>(value);
}

} // namespace

TripletMatrix
matrixFromSpec(const JsonValue &spec, Index maxDim)
{
    fatalIf(!spec.isObject(), "request needs a \"matrix\" object");
    const std::string kind = spec.stringOr("kind", "");
    fatalIf(kind.empty(), "matrix spec needs a \"kind\" string");

    const auto seed = static_cast<std::uint64_t>(
        spec.numberOr("seed", 1));
    Rng rng(seed);

    if (kind == "random") {
        const Index n = indexField(spec, "n", 256, maxDim);
        const double density = spec.numberOr("density", 0.05);
        fatalIf(density <= 0 || density > 1,
                "matrix spec: random density must be in (0, 1]");
        return randomMatrix(n, density, rng);
    }
    if (kind == "band") {
        const Index n = indexField(spec, "n", 256, maxDim);
        const Index width = indexField(spec, "width", 8, maxDim);
        const double fill = spec.numberOr("fill", 1.0);
        fatalIf(fill <= 0 || fill > 1,
                "matrix spec: band fill must be in (0, 1]");
        return bandMatrix(n, width, rng, fill);
    }
    if (kind == "diagonal") {
        const Index n = indexField(spec, "n", 256, maxDim);
        return diagonalMatrix(n, rng);
    }
    if (kind == "stencil2d") {
        // The matrix dimension is nx*ny, so the per-axis cap is the
        // square root of the dimension cap.
        const auto axisCap = static_cast<Index>(
            std::sqrt(static_cast<double>(maxDim)));
        const Index nx = indexField(spec, "nx", 32,
                                    std::max<Index>(1, axisCap));
        const Index ny = indexField(spec, "ny", 32,
                                    std::max<Index>(1, axisCap));
        return stencil2d(nx, ny);
    }
    if (kind == "rmat") {
        const Index n = indexField(spec, "n", 512, maxDim);
        const double edges = spec.numberOr(
            "edges", static_cast<double>(n) * 4);
        fatalIf(edges < 1 ||
                    edges > static_cast<double>(maxDim) * 64,
                "matrix spec: rmat edges out of range");
        return rmatGraph(n, static_cast<std::size_t>(edges), rng);
    }
    if (kind == "pruned") {
        const Index rows = indexField(spec, "rows", 256, maxDim);
        const Index cols = indexField(spec, "cols", rows, maxDim);
        const double density = spec.numberOr("density", 0.3);
        fatalIf(density <= 0 || density > 1,
                "matrix spec: pruned density must be in (0, 1]");
        return prunedLayer(rows, cols, density, rng,
                           spec.boolOr("block", false));
    }
    if (kind == "file") {
        const std::string path = spec.stringOr("path", "");
        fatalIf(path.empty(), "matrix spec: file kind needs a path");
        TripletMatrix matrix = readMatrixMarketFile(path);
        fatalIf(matrix.rows() > maxDim || matrix.cols() > maxDim,
                "matrix file '" + path +
                    "' exceeds the server dimension cap of " +
                    std::to_string(maxDim));
        return matrix;
    }
    if (kind == "cbm") {
        const std::string path = spec.stringOr("path", "");
        fatalIf(path.empty(), "matrix spec: cbm kind needs a path");
        const CbmReader reader(path);
        fatalIf(reader.rows() > maxDim || reader.cols() > maxDim,
                "cbm container '" + path +
                    "' exceeds the server dimension cap of " +
                    std::to_string(maxDim));
        return reader.toTripletMatrix();
    }
    fatal("matrix spec: unknown kind '" + kind + "'");
}

AdvisorGoal
goalFromName(std::string_view name)
{
    if (name == "latency")
        return AdvisorGoal::Latency;
    if (name == "throughput")
        return AdvisorGoal::Throughput;
    if (name == "power")
        return AdvisorGoal::Power;
    if (name == "bandwidth")
        return AdvisorGoal::Bandwidth;
    if (name == "balanced")
        return AdvisorGoal::Balanced;
    fatal("unknown advisor goal '" + std::string(name) +
          "' (expected latency|throughput|power|bandwidth|balanced)");
}

std::vector<FormatKind>
formatsFromParam(const JsonValue *array,
                 const std::vector<FormatKind> &fallback)
{
    if (array == nullptr)
        return fallback;
    fatalIf(!array->isArray(), "\"formats\" must be an array of names");
    std::vector<FormatKind> kinds;
    for (const JsonValue &entry : array->elements) {
        fatalIf(!entry.isString(), "format names must be strings");
        kinds.push_back(parseFormatKind(entry.text));
    }
    fatalIf(kinds.empty(), "\"formats\" must not be empty");
    return kinds;
}

std::vector<Index>
partitionSizesFromParam(const JsonValue *array,
                        const std::vector<Index> &fallback)
{
    if (array == nullptr)
        return fallback;
    fatalIf(!array->isArray(),
            "\"partition_sizes\" must be an array of numbers");
    std::vector<Index> sizes;
    for (const JsonValue &entry : array->elements) {
        fatalIf(!entry.isNumber() || entry.number < 1 ||
                    entry.number > 4096,
                "partition sizes must be numbers in [1, 4096]");
        sizes.push_back(static_cast<Index>(entry.number));
    }
    fatalIf(sizes.empty(), "\"partition_sizes\" must not be empty");
    return sizes;
}

} // namespace copernicus
