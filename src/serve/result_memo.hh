/**
 * @file
 * Server-side memo of advise/plan_formats results.
 *
 * Format ranking is a per-matrix property (Mpakos et al., PAPERS.md),
 * so the answer to "which format for this matrix under this config" is
 * a pure function of (matrix content, sweep configuration). The serve
 * path already computes a canonical content hash of every triplet
 * matrix (store/container.hh, the PR-5 hash the sweep journal trusts
 * for resume-after-SIGKILL); this memo keys on that hash plus an
 * FNV-1a fingerprint of the request's sweep-relevant parameters and
 * stores the handler's *serialized result JSON verbatim*. A hit
 * therefore returns a payload byte-identical to the miss that
 * populated it — asserted by the parity tests — and costs one hash
 * lookup instead of a format × partition sweep.
 *
 * Eviction is true LRU under a byte budget (payload bytes + a fixed
 * per-entry overhead estimate); a budget of zero disables the memo
 * entirely. Counters (hits/misses/evictions/entries/bytes) surface
 * through the stats endpoint and the Prometheus exposition.
 *
 * Thread safety: all state behind one ranked Mutex (serve.memo). The
 * lock is held only for map/list surgery and a payload copy — never
 * across a sweep — so handler threads contend for nanoseconds.
 */

#ifndef COPERNICUS_SERVE_RESULT_MEMO_HH
#define COPERNICUS_SERVE_RESULT_MEMO_HH

#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/lock_order.hh"
#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace copernicus {

/** Identity of one memoizable result. */
struct MemoKey
{
    /** Canonical triplet content hash (store/container.hh). */
    std::uint64_t contentHash = 0;

    /** Endpoint + sweep-relevant params fingerprint (FNV-1a). */
    std::uint64_t configHash = 0;

    bool operator==(const MemoKey &other) const
    {
        return contentHash == other.contentHash &&
               configHash == other.configHash;
    }
};

/** Counter snapshot for stats/metrics. */
struct ResultMemoStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
};

/** LRU result cache with a byte budget. */
class ResultMemo
{
  public:
    /** @param byteBudget Total payload budget; 0 disables the memo. */
    explicit ResultMemo(std::uint64_t byteBudget);

    bool enabled() const { return budget > 0; }

    /**
     * Copy the stored payload into @p payloadOut on a hit (returns
     * true, promotes the entry to most-recent). A miss is counted.
     * Always a miss when disabled.
     */
    bool lookup(const MemoKey &key, std::string &payloadOut);

    /**
     * Store @p payload under @p key, evicting least-recently-used
     * entries until it fits. A payload larger than the whole budget is
     * not stored. Re-inserting a resident key refreshes its payload.
     */
    void insert(const MemoKey &key, std::string_view payload);

    ResultMemoStats stats() const;

  private:
    struct Entry
    {
        MemoKey key;
        std::string payload;
    };

    struct KeyHash
    {
        std::size_t operator()(const MemoKey &key) const
        {
            // The two halves are already strong 64-bit fingerprints;
            // mixing them keeps (A,B) and (B,A) distinct.
            return static_cast<std::size_t>(
                key.contentHash ^
                (key.configHash * 0x9e3779b97f4a7c15ULL));
        }
    };

    static std::uint64_t entryCost(std::size_t payloadBytes);
    void evictUntilFits(std::uint64_t incomingCost)
        COPERNICUS_REQUIRES(mutex);

    const std::uint64_t budget;

    mutable Mutex mutex{lock_rank::serveMemo};
    std::list<Entry> lru COPERNICUS_GUARDED_BY(mutex); ///< front = MRU
    std::unordered_map<MemoKey, std::list<Entry>::iterator, KeyHash>
        index COPERNICUS_GUARDED_BY(mutex);
    ResultMemoStats counters COPERNICUS_GUARDED_BY(mutex);
};

} // namespace copernicus

#endif // COPERNICUS_SERVE_RESULT_MEMO_HH
