/**
 * @file
 * Wire protocol of the characterization service daemon.
 *
 * Requests and responses are newline-delimited JSON objects over a
 * byte stream (Unix-domain socket by default, TCP optionally):
 *
 *   -> {"op": "advise", "id": 7, "timeout_ms": 250,
 *       "params": {"matrix": {"kind": "band", "n": 512, "width": 8,
 *                             "seed": 1},
 *                  "goal": "latency"}}
 *   <- {"ok": true, "id": 7, "op": "advise", "result": {...}}
 *
 * Every request line receives exactly one response line — a result, or
 * an explicit error ({"ok": false, ..., "error": "<code>"}); the
 * server never silently drops a request. Error codes are the
 * serve_error constants below. This header owns parsing (on top of
 * common/json's JsonValue) and response serialisation so the server,
 * the client library and the tests agree on one source of truth.
 */

#ifndef COPERNICUS_SERVE_PROTOCOL_HH
#define COPERNICUS_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hh"
#include "common/trace_context.hh"
#include "core/advisor.hh"
#include "formats/format_kind.hh"
#include "matrix/triplet_matrix.hh"

namespace copernicus {

/** The operations the daemon serves. */
enum class Endpoint
{
    Ping,         ///< liveness probe
    Stats,        ///< per-endpoint latency/cache/queue counters
    Shutdown,     ///< begin graceful drain (responds first)
    Sleep,        ///< hold a worker for params.ms (load-gen/tests)
    RunStudy,     ///< full format x partition sweep over one matrix
    PlanFormats,  ///< adaptive per-tile format plan
    Advise,       ///< Section-8 format recommendation
    ValidateTile, ///< grammar-validate every encoded tile
    Metrics,      ///< Prometheus text exposition scrape
    DumpFlightRec, ///< dump the flight recorder (to file or inline)
    StoreInfo,    ///< inspect a .cbm binary matrix container
};

/** Every endpoint, in a fixed order (stats registration order). */
const std::vector<Endpoint> &allEndpoints();

/** Wire name of @p endpoint ("run_study", "ping", ...). */
std::string_view endpointName(Endpoint endpoint);

/** Parse a wire name; false when unknown. */
bool parseEndpoint(std::string_view name, Endpoint &out);

/** Machine-readable error codes carried in the "error" field. */
namespace serve_error {

inline constexpr std::string_view badRequest = "bad_request";
inline constexpr std::string_view queueFull = "queue_full";
inline constexpr std::string_view deadlineExceeded = "deadline_exceeded";
inline constexpr std::string_view cancelled = "cancelled";
inline constexpr std::string_view shuttingDown = "shutting_down";
inline constexpr std::string_view internal = "internal";

} // namespace serve_error

/** One parsed request line. */
struct ServeRequest
{
    Endpoint endpoint = Endpoint::Ping;

    /** Client-chosen correlation id, echoed in the response. */
    std::uint64_t id = 0;

    /** Per-request deadline; 0 falls back to the server default. */
    double timeoutMs = 0;

    /** The "params" object (empty object when the field is absent). */
    JsonValue params;

    /**
     * Caller's trace identity from the optional wire field
     * `"trace": {"trace_id": "<hex>", "parent_span_id": "<hex>"}`;
     * invalid (traceId 0) when absent or malformed — a bad trace field
     * never fails a request. spanId carries the parent span.
     */
    TraceContext trace;
};

/**
 * Why a request line failed to parse — the server keys its
 * per-endpoint error counters off this, so "the client sent garbage"
 * and "the client named an op we don't serve" stay distinguishable in
 * the metrics.
 */
enum class RequestParseError
{
    None,          ///< parse succeeded
    MalformedJson, ///< not valid JSON at all
    NotAnObject,   ///< valid JSON but not an object
    MissingOp,     ///< no string "op" field
    UnknownOp,     ///< "op" names nothing we serve
    BadParams,     ///< "params" present but not an object
};

/** Wire/metric label for a parse error ("malformed_json", ...). */
std::string_view requestParseErrorName(RequestParseError error);

/**
 * Parse one request line.
 *
 * @param line One newline-stripped JSON object.
 * @param out Filled on success.
 * @param error Human-readable reason on failure.
 * @param why Classification of the failure (None on success).
 * @return False on malformed JSON, a missing/unknown "op", or a
 *         non-object "params".
 */
bool parseRequest(const std::string &line, ServeRequest &out,
                  std::string &error, RequestParseError &why);

/** parseRequest() without the classification out-param. */
bool parseRequest(const std::string &line, ServeRequest &out,
                  std::string &error);

/**
 * Serialise a success response. @p resultJson must be a complete JSON
 * value (typically an object built by the handler). When the request
 * carries a valid trace the response echoes `"trace_id"` (hex), so a
 * client can correlate its reply with the server's spans and wide
 * event.
 */
std::string okResponse(const ServeRequest &request,
                       const std::string &resultJson);

/**
 * Serialise an error response. @p op is the wire name when known, ""
 * for lines that never parsed far enough to have one; @p traceId is
 * echoed as `"trace_id"` when non-zero.
 */
std::string errorResponse(std::uint64_t id, std::string_view op,
                          std::string_view code,
                          const std::string &message,
                          std::uint64_t traceId = 0);

/**
 * Build the workload matrix described by a request's "matrix" spec:
 *
 *   {"kind": "random",    "n", "density", "seed"}
 *   {"kind": "band",      "n", "width", "seed", "fill"}
 *   {"kind": "diagonal",  "n", "seed"}
 *   {"kind": "stencil2d", "nx", "ny"}
 *   {"kind": "rmat",      "n", "edges", "seed"}
 *   {"kind": "pruned",    "rows", "cols", "density", "seed", "block"}
 *   {"kind": "file",      "path"}
 *   {"kind": "cbm",       "path"}
 *
 * All generators are deterministic given the spec, so a request is
 * reproducible offline from its JSON alone. Dimensions are capped at
 * @p maxDim — the daemon's guard against a single request occupying a
 * worker indefinitely. Throws FatalError (mapped to bad_request) on a
 * malformed spec.
 */
TripletMatrix matrixFromSpec(const JsonValue &spec, Index maxDim);

/** Parse an advisor goal name ("latency", ...); FatalError if unknown. */
AdvisorGoal goalFromName(std::string_view name);

/**
 * Format list from a JSON array of names; @p fallback when @p array is
 * null. FatalError on an unknown name.
 */
std::vector<FormatKind>
formatsFromParam(const JsonValue *array,
                 const std::vector<FormatKind> &fallback);

/**
 * Partition sizes from a JSON array of numbers; @p fallback when
 * @p array is null. FatalError on a non-positive size.
 */
std::vector<Index>
partitionSizesFromParam(const JsonValue *array,
                        const std::vector<Index> &fallback);

} // namespace copernicus

#endif // COPERNICUS_SERVE_PROTOCOL_HH
