/**
 * @file
 * Length-prefixed binary framing for the characterization daemon.
 *
 * The wire dialect negotiated by a client that opens its connection
 * with the 4-byte magic "CPB1" (NDJSON remains the fallback for every
 * connection that does not). After the magic, the stream is a sequence
 * of frames in both directions:
 *
 *   offset  size  field
 *        0     4  payload length  (u32, little-endian, bytes)
 *        4     1  frame type      (1 request, 2 response, 3 cancel)
 *        5     1  flags           (must be 0; reserved)
 *        6     2  reserved        (must be 0)
 *        8     8  stream id       (u64, little-endian)
 *       16     n  payload         (UTF-8 JSON, no trailing newline)
 *
 * The payload of a Request/Response frame is byte-for-byte the JSON
 * object that would travel as one NDJSON line — the framing layer
 * multiplexes and delimits, it never re-encodes. That makes protocol
 * parity trivial to test (same request → identical payload bytes on
 * either dialect) and keeps serve/protocol.hh the single source of
 * truth for request/response shapes.
 *
 * Stream-id rules (enforced by the server):
 *  - chosen by the client, must be non-zero;
 *  - must not collide with a stream still in flight on the same
 *    connection (the response retires the id for reuse);
 *  - every Request receives exactly one Response frame with the same
 *    stream id, including cancelled and rejected requests;
 *  - a Cancel frame (empty payload) asks the server to abort the named
 *    stream cooperatively; cancelling an unknown or already-finished
 *    stream is a silent no-op, never an error.
 *
 * Error containment: a frame whose declared payload exceeds the
 * receiver's limit is consumed in a streaming discard (never buffered)
 * and answered with a per-stream bad_request — the connection and its
 * other streams continue. Only structurally broken input (bad type,
 * non-zero reserved bits, a length beyond the hard sanity cap) is
 * connection-fatal, because after it the byte stream has no frame
 * boundaries left to trust.
 */

#ifndef COPERNICUS_SERVE_FRAMING_HH
#define COPERNICUS_SERVE_FRAMING_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace copernicus {

/** Connection preamble a client sends to negotiate binary framing. */
inline constexpr std::string_view framingMagic = "CPB1";

/** Fixed frame-header size in bytes. */
inline constexpr std::size_t frameHeaderSize = 16;

/** Default per-frame payload cap (ServeOptions::maxFrameBytes). */
inline constexpr std::uint64_t defaultMaxFrameBytes = 16ull << 20;

/**
 * Hard sanity cap on a declared payload length. A peer declaring more
 * than this is not a confused client with a big matrix, it is a
 * desynchronized or hostile byte stream; the connection is torn down
 * instead of discarded through.
 */
inline constexpr std::uint64_t frameLengthHardCap = 1ull << 30;

/** Frame types on the wire. */
enum class FrameType : std::uint8_t
{
    Request = 1,
    Response = 2,
    Cancel = 3,
};

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Request;
    std::uint64_t streamId = 0;
    std::string payload;
};

/** Serialise one frame (header + payload). */
std::string encodeFrame(FrameType type, std::uint64_t streamId,
                        std::string_view payload);

/** encodeFrame() appending to @p out (hot path, no temporary). */
void appendFrame(std::string &out, FrameType type,
                 std::uint64_t streamId, std::string_view payload);

/** What FrameDecoder::next() pulled out of the buffered bytes. */
enum class DecodeResult
{
    NeedMore,  ///< no complete event yet; feed more bytes
    GotFrame,  ///< @p out holds one complete frame
    Oversized, ///< header of a too-large frame; payload being discarded
    Fatal,     ///< structurally broken stream; close the connection
};

/**
 * Incremental frame decoder.
 *
 * Feed arbitrary byte chunks (short reads, single bytes, many frames
 * at once — any segmentation); pull events with next(). An oversized
 * frame yields exactly one Oversized event carrying the offending
 * header (type, stream id, declaredLength()); its payload is then
 * consumed in-place without ever being buffered, so a 1 GiB declared
 * length costs the decoder one read-chunk of memory, not 1 GiB.
 *
 * Not thread-safe; one decoder per connection, owned by the reader.
 */
class FrameDecoder
{
  public:
    explicit FrameDecoder(
        std::uint64_t maxFrameBytes = defaultMaxFrameBytes);

    /** Buffer @p size bytes from the wire. */
    void feed(const char *data, std::size_t size);

    /** Decode the next event; GotFrame/Oversized fill @p out. */
    DecodeResult next(Frame &out);

    /**
     * True when bytes of an incomplete frame are pending — at EOF this
     * means the peer truncated its final frame mid-header or
     * mid-payload.
     */
    bool midFrame() const;

    /** Declared payload length of the current/last header. */
    std::uint64_t declaredLength() const { return length; }

    /** Human-readable reason after a Fatal result. */
    const std::string &error() const { return fatalReason; }

    /** Bytes currently buffered (tests; bounded by feed chunk size). */
    std::size_t bufferedBytes() const { return buffer.size() - consumed; }

  private:
    enum class State
    {
        Header,  ///< collecting the 16 header bytes
        Payload, ///< collecting a payload that fits the cap
        Discard, ///< consuming an oversized payload unbuffered
        Broken,  ///< Fatal was returned; everything else is ignored
    };

    void compact();

    std::uint64_t maxFrame;
    State state = State::Header;
    std::string buffer;
    std::size_t consumed = 0;

    // Current header, valid once 16 bytes were parsed.
    FrameType type = FrameType::Request;
    std::uint64_t streamId = 0;
    std::uint64_t length = 0;
    std::uint64_t discardRemaining = 0;
    std::string fatalReason;
};

} // namespace copernicus

#endif // COPERNICUS_SERVE_FRAMING_HH
