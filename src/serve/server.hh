/**
 * @file
 * The characterization service daemon.
 *
 * A Server owns one listening socket (Unix-domain by default, loopback
 * TCP optionally), one reader thread per connection, and a ThreadPool
 * that executes request handlers. Its load-shedding contract is the
 * point of the subsystem:
 *
 *  - Admission is bounded: at most queueCapacity requests are in
 *    flight; request queueCapacity+1 receives an immediate
 *    {"error": "queue_full"} response instead of queueing invisibly.
 *    Overload degrades to explicit rejections, never to silent hangs.
 *  - Every admitted request runs under a deadline (its timeout_ms, or
 *    the server default). Long handlers poll the deadline at partition
 *    boundaries via StudyConfig::cancelCheck and unwind with
 *    CancelledError, which maps to {"error": "deadline_exceeded"}.
 *  - Drain is graceful: beginShutdown() stops accepting, new requests
 *    get {"error": "shutting_down"}, in-flight requests finish and
 *    their responses are delivered, then waitDrained() flushes the
 *    stats JSON and the request-lane trace and returns.
 *
 * Threading model: the acceptor thread polls the listen socket (100 ms
 * tick, so drain never races accept); each connection gets a reader
 * thread that parses lines and performs admission; admitted requests
 * run on the pool (inline on the reader thread when the pool has one
 * lane, which keeps single-core containers correct — concurrency
 * across connections is still real because each has its own reader).
 * Response writes are serialized per connection by Conn::writeMutex,
 * and the connection fd is closed by the last owner of the shared
 * Conn, so a handler finishing after its client disconnected can never
 * write to a recycled descriptor.
 */

#ifndef COPERNICUS_SERVE_SERVER_HH
#define COPERNICUS_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/lock_order.hh"
#include "common/mutex.hh"
#include "common/stat_group.hh"
#include "common/thread_annotations.hh"
#include "common/thread_pool.hh"
#include "formats/encode_cache.hh"
#include "serve/protocol.hh"

namespace copernicus {

/** Daemon configuration (the copernicus_serve flags). */
struct ServeOptions
{
    /** Unix-domain socket path; unlinked on start and on drain. */
    std::string socketPath = "/tmp/copernicus_serve.sock";

    /**
     * Loopback TCP port instead of the Unix socket; -1 disables TCP,
     * 0 binds an ephemeral port (read it back with Server::tcpPort()).
     */
    int tcpPort = -1;

    /** Max requests in flight; the next one is rejected queue_full. */
    std::size_t queueCapacity = 64;

    /** Handler pool lanes, resolved through effectiveJobs(). */
    unsigned workers = 0;

    /** Default deadline for requests without timeout_ms; 0 = none. */
    double defaultTimeoutMs = 0;

    /** Cap on generated/loaded matrix dimensions per request. */
    Index maxMatrixDim = 4096;

    /** Where waitDrained() writes the stats dump; "" = nowhere. */
    std::string statsJsonPath;

    /** Where waitDrained() writes the request-lane trace; "" = off. */
    std::string tracePath;

    /** Where waitDrained() dumps the flight recorder; "" = nowhere. */
    std::string flightRecPath;

    /**
     * Run the observability plane: span recording into
     * SpanCollector::global(), one wide event per request into
     * FlightRecorder::global(), trace ids on the wire. The daemon
     * leaves this on (the plane is designed to be cheap enough to);
     * the overhead benchmark turns it off for its baseline.
     */
    bool observability = true;

    /** Wide-event ring capacity when observability is on. */
    std::size_t flightRecorderCapacity = 512;

    /**
     * Refuse to start unless the format registry passes the static
     * lint passes (spec structure, decoder bodies, contracts). A
     * daemon serving characterizations from a registry whose schedule
     * model is wrong would hand out wrong numbers for its whole
     * lifetime, so this fails fast instead.
     */
    bool checkRegistry = true;

    /** Also run the grammar + oracle lint passes at startup (slow). */
    bool fullLint = false;

    /**
     * Codec hyperparameters the startup lint gate validates (tests
     * inject a contract-violating set here to exercise the refusal).
     */
    FormatParams lintParams;
};

/** One request-lane trace record (flushed to tracePath at drain). */
struct RequestSpan
{
    Endpoint endpoint = Endpoint::Ping;
    std::uint64_t id = 0;
    std::uint64_t startUs = 0;
    std::uint64_t endUs = 0;
    std::string outcome; ///< "ok" or an error code
};

/** The daemon. Construct, start(), then waitDrained() blocks. */
class Server
{
  public:
    explicit Server(ServeOptions options);

    /** Joins everything if the caller forgot waitDrained(). */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Validate the registry (lint gate), bind the socket and spawn the
     * acceptor. Throws FatalError when the registry fails lint or the
     * socket cannot be bound.
     */
    void start();

    /**
     * Begin a graceful drain: stop admitting (new requests are
     * answered shutting_down) and let the acceptor exit. Safe from any
     * thread, including request handlers; idempotent.
     */
    void beginShutdown();

    /**
     * Async-signal-safe shutdown request (one atomic store); the
     * acceptor notices within one poll tick. Wire SIGINT/SIGTERM here.
     */
    static void requestShutdownFromSignal();

    /**
     * Block until a shutdown is requested, then drain: finish
     * in-flight requests, deliver their responses, join every thread,
     * flush statsJsonPath/tracePath, and release the socket.
     */
    void waitDrained();

    /** Actual TCP port once start() returned (ephemeral-port tests). */
    int tcpPort() const { return boundTcpPort; }

    /** True between start() and the beginning of a drain. */
    bool accepting() const;

    /**
     * The serve/thread_pool/encode_cache groups plus live load state
     * (`"queue_depth"`, an `"inflight"` array with per-request ages)
     * as one JSON doc — the stats endpoint's payload, which is also
     * what `copernicus_cli --top` polls.
     */
    std::string statsJson() const;

    /**
     * Prometheus text exposition of the serve counters, latency
     * histograms, pool and cache stats. Built entirely from atomic
     * reads and DistributionStat snapshots — a scrape never holds a
     * lock a request thread contends beyond one histogram copy.
     */
    std::string metricsText() const;

    /** Request spans recorded so far (tests; snapshot under lock). */
    std::vector<RequestSpan> spans() const;

    const ServeOptions &options() const { return opts; }

  private:
    /** Per-endpoint counters + latency histogram (group "serve"). */
    struct EndpointStats
    {
        std::unique_ptr<ScalarStat> accepted;
        std::unique_ptr<ScalarStat> rejected;
        std::unique_ptr<ScalarStat> completed;
        std::unique_ptr<ScalarStat> errors;
        std::unique_ptr<ScalarStat> cacheHits;
        std::unique_ptr<ScalarStat> cacheMisses;
        std::unique_ptr<DistributionStat> latencyUs;
    };

    /**
     * One accepted connection. The fd is owned by this struct and
     * closed by its destructor, so whichever of the reader thread and
     * the last in-flight handler drops its shared_ptr last also
     * retires the descriptor — there is no window where the fd number
     * can be recycled while a handler still holds it.
     */
    struct Conn
    {
        explicit Conn(int fd_) : fd(fd_) {}
        ~Conn();
        Conn(const Conn &) = delete;
        Conn &operator=(const Conn &) = delete;

        int fd = -1;
        /** Unranked leaf lock: nothing is acquired under a write. */
        Mutex writeMutex;
        std::atomic<bool> open{true};
        std::string rxBuffer;
    };

    enum class Admit { Ok, Full, Draining };

    /** What a handler reports back for the request's wide event. */
    struct RequestObs
    {
        std::size_t formatsSwept = 0; ///< sweep endpoints only
    };

    /** One in-flight request, for --top's per-request ages. */
    struct InflightEntry
    {
        Endpoint endpoint = Endpoint::Ping;
        std::uint64_t id = 0;
        std::uint64_t startUs = 0;
    };

    void bindSocket();
    void acceptorLoop();
    void readerLoop(std::uint64_t connId, std::shared_ptr<Conn> conn);
    void handleLine(const std::shared_ptr<Conn> &conn,
                    const std::string &line);

    /**
     * @param receiptUs observeNowUs() when the line was read — the
     *        queue-wait half of the latency split.
     * @param requestSpanId Pre-allocated id of the serve.request span,
     *        0 when span recording is off.
     */
    void runRequest(std::shared_ptr<Conn> conn, ServeRequest request,
                    std::uint64_t receiptUs,
                    std::uint64_t requestSpanId);

    /** Dispatch to the endpoint handler; returns the result JSON. */
    std::string dispatch(const ServeRequest &request,
                         const std::function<bool()> &deadlineHit,
                         RequestObs &obs);

    /** Record one wide event (no-op when observability is off). */
    void recordWideEvent(const ServeRequest &request,
                         std::string_view outcome,
                         std::uint64_t receiptUs, std::uint64_t startUs,
                         std::uint64_t endUs, double timeoutMs,
                         std::uint64_t cacheHits,
                         std::uint64_t cacheMisses,
                         std::uint64_t compressUs,
                         const RequestObs &obs);

    Admit tryAdmit();
    void releaseAdmission();
    void sendLine(const std::shared_ptr<Conn> &conn,
                  const std::string &line);
    void reapFinishedReaders();
    std::uint64_t nowUs() const;
    EndpointStats &statsFor(Endpoint endpoint);

    ServeOptions opts;
    int listenFd = -1;
    int boundTcpPort = -1;
    bool started = false;

    std::thread acceptor;

    /** Reader bookkeeping, all under connsMutex. */
    Mutex connsMutex{lock_rank::serveConns};
    std::map<std::uint64_t, std::shared_ptr<Conn>> conns
        COPERNICUS_GUARDED_BY(connsMutex);
    std::map<std::uint64_t, std::thread> readers
        COPERNICUS_GUARDED_BY(connsMutex);
    std::vector<std::uint64_t> finishedReaders
        COPERNICUS_GUARDED_BY(connsMutex);
    std::uint64_t nextConnId COPERNICUS_GUARDED_BY(connsMutex) = 1;

    /**
     * Admission state, all under admitMutex. CV-paired, so it stays
     * std::mutex (documented exclusion, common/mutex.hh).
     */
    mutable std::mutex admitMutex;
    std::size_t inflight = 0;
    bool draining = false;
    std::condition_variable idleCv;  ///< inflight reached zero
    std::condition_variable drainCv; ///< draining flipped on

    std::unique_ptr<ThreadPool> pool;

    StatGroup grp{"serve"};
    std::vector<EndpointStats> endpointStats; ///< allEndpoints() order
    std::unique_ptr<ScalarStat> connections;
    std::unique_ptr<ScalarStat> badLines;
    /** badLines split by RequestParseError (satellite counters). */
    std::unique_ptr<ScalarStat> badLinesMalformed;
    std::unique_ptr<ScalarStat> badLinesUnknownOp;
    std::unique_ptr<ScalarStat> badLinesOther;
    ThreadPoolStats poolStats;
    EncodeCacheStats cacheStats;

    mutable Mutex spansMutex{lock_rank::serveSpans};
    std::vector<RequestSpan> requestSpans
        COPERNICUS_GUARDED_BY(spansMutex);

    /** In-flight registry for --top, under inflightMutex. */
    mutable Mutex inflightMutex{lock_rank::serveInflight};
    std::map<std::uint64_t, InflightEntry> inflightReqs
        COPERNICUS_GUARDED_BY(inflightMutex);
    std::uint64_t nextReqToken COPERNICUS_GUARDED_BY(inflightMutex) = 1;

    /** True when this server turned the span collector on. */
    bool observingSpans = false;
};

} // namespace copernicus

#endif // COPERNICUS_SERVE_SERVER_HH
