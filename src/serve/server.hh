/**
 * @file
 * The characterization service daemon.
 *
 * A Server owns one listening socket (Unix-domain by default, loopback
 * TCP optionally), one epoll event loop driving every connection, and
 * a ThreadPool that executes request handlers. Its load-shedding
 * contract is the point of the subsystem:
 *
 *  - Admission is bounded: at most queueCapacity requests are in
 *    flight; request queueCapacity+1 receives an immediate
 *    {"error": "queue_full"} response instead of queueing invisibly.
 *    Overload degrades to explicit rejections, never to silent hangs.
 *  - Every admitted request runs under a deadline (its timeout_ms, or
 *    the server default) and, on a multiplexed connection, under its
 *    stream's cancel flag. Long handlers poll both at partition
 *    boundaries via StudyConfig::cancelCheck and unwind with
 *    CancelledError, which maps to {"error": "deadline_exceeded"} or
 *    {"error": "cancelled"}.
 *  - Drain is graceful: beginShutdown() stops accepting, new requests
 *    get {"error": "shutting_down"}, in-flight requests finish and
 *    their responses are delivered, then waitDrained() flushes the
 *    stats JSON and the request-lane trace and returns.
 *
 * Threading model (the PR-10 event-loop rewrite): a single I/O thread
 * owns the epoll instance, the listening socket and every connection
 * fd — it accepts, reads, parses frames/lines, performs admission and
 * flushes output buffers; it never executes a handler. Admitted
 * requests run on the pool (sized so at least one worker exists even
 * on a single-core container — the loop must stay responsive while a
 * sweep runs). Handlers never touch a socket: they append the
 * serialized response to the connection's tx buffer (Conn::txMutex, a
 * ranked leaf) and wake the loop through an eventfd; the loop performs
 * the nonblocking sends and arms EPOLLOUT when a peer stops reading,
 * so one slow client backpressures its own buffer, never a thread.
 * The fd itself is closed by the last owner of the shared Conn, so a
 * handler finishing after its client disconnected can never write to
 * a recycled descriptor.
 *
 * Wire dialects: a connection whose first bytes are the "CPB1" magic
 * speaks the multiplexed binary framing (serve/framing.hh) — many
 * concurrent streams, per-stream cancellation; anything else is
 * NDJSON, one request line at a time, exactly the PR-4 dialect, so
 * every pre-existing client keeps working unmodified.
 */

#ifndef COPERNICUS_SERVE_SERVER_HH
#define COPERNICUS_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/lock_order.hh"
#include "common/mutex.hh"
#include "common/stat_group.hh"
#include "common/thread_annotations.hh"
#include "common/thread_pool.hh"
#include "formats/encode_cache.hh"
#include "serve/framing.hh"
#include "serve/protocol.hh"
#include "serve/result_memo.hh"

namespace copernicus {

/** Daemon configuration (the copernicus_serve flags). */
struct ServeOptions
{
    /** Unix-domain socket path; unlinked on start and on drain. */
    std::string socketPath = "/tmp/copernicus_serve.sock";

    /**
     * Loopback TCP port instead of the Unix socket; -1 disables TCP,
     * 0 binds an ephemeral port (read it back with Server::tcpPort()).
     */
    int tcpPort = -1;

    /** Max requests in flight; the next one is rejected queue_full. */
    std::size_t queueCapacity = 64;

    /** Handler pool lanes, resolved through effectiveJobs(). */
    unsigned workers = 0;

    /** Default deadline for requests without timeout_ms; 0 = none. */
    double defaultTimeoutMs = 0;

    /** Cap on generated/loaded matrix dimensions per request. */
    Index maxMatrixDim = 4096;

    /**
     * Per-frame payload cap on binary connections. A frame declaring
     * more is answered bad_request on its stream and its payload is
     * discarded without buffering; the connection survives.
     */
    std::uint64_t maxFrameBytes = defaultMaxFrameBytes;

    /**
     * Byte budget of the advise/plan_formats result memo (LRU, keyed
     * on content hash + config fingerprint); 0 disables memoization.
     */
    std::uint64_t memoBytes = 8ull << 20;

    /** Where waitDrained() writes the stats dump; "" = nowhere. */
    std::string statsJsonPath;

    /** Where waitDrained() writes the request-lane trace; "" = off. */
    std::string tracePath;

    /** Where waitDrained() dumps the flight recorder; "" = nowhere. */
    std::string flightRecPath;

    /**
     * Run the observability plane: span recording into
     * SpanCollector::global(), one wide event per request into
     * FlightRecorder::global(), trace ids on the wire. The daemon
     * leaves this on (the plane is designed to be cheap enough to);
     * the overhead benchmark turns it off for its baseline.
     */
    bool observability = true;

    /** Wide-event ring capacity when observability is on. */
    std::size_t flightRecorderCapacity = 512;

    /**
     * Refuse to start unless the format registry passes the static
     * lint passes (spec structure, decoder bodies, contracts). A
     * daemon serving characterizations from a registry whose schedule
     * model is wrong would hand out wrong numbers for its whole
     * lifetime, so this fails fast instead.
     */
    bool checkRegistry = true;

    /** Also run the grammar + oracle lint passes at startup (slow). */
    bool fullLint = false;

    /**
     * Codec hyperparameters the startup lint gate validates (tests
     * inject a contract-violating set here to exercise the refusal).
     */
    FormatParams lintParams;
};

/** One request-lane trace record (flushed to tracePath at drain). */
struct RequestSpan
{
    Endpoint endpoint = Endpoint::Ping;
    std::uint64_t id = 0;
    std::uint64_t startUs = 0;
    std::uint64_t endUs = 0;
    std::string outcome; ///< "ok" or an error code
};

/** The daemon. Construct, start(), then waitDrained() blocks. */
class Server
{
  public:
    explicit Server(ServeOptions options);

    /** Joins everything if the caller forgot waitDrained(). */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Validate the registry (lint gate), bind the socket and spawn the
     * event loop. Throws FatalError when the registry fails lint or
     * the socket cannot be bound.
     */
    void start();

    /**
     * Begin a graceful drain: stop admitting (new requests are
     * answered shutting_down) and deregister the listen socket. Safe
     * from any thread, including request handlers; idempotent.
     */
    void beginShutdown();

    /**
     * Async-signal-safe shutdown request (one atomic store); the event
     * loop notices within one epoll tick. Wire SIGINT/SIGTERM here.
     */
    static void requestShutdownFromSignal();

    /**
     * Block until a shutdown is requested, then drain: finish
     * in-flight requests, deliver their responses, join every thread,
     * flush statsJsonPath/tracePath, and release the socket.
     */
    void waitDrained();

    /** Actual TCP port once start() returned (ephemeral-port tests). */
    int tcpPort() const { return boundTcpPort; }

    /** True between start() and the beginning of a drain. */
    bool accepting() const;

    /**
     * The serve/thread_pool/encode_cache groups plus live load state
     * (`"queue_depth"`, an `"inflight"` array with per-request ages,
     * a `"memo"` object with the result-memo counters) as one JSON
     * doc — the stats endpoint's payload, which is also what
     * `copernicus_cli --top` polls.
     */
    std::string statsJson() const;

    /**
     * Prometheus text exposition of the serve counters, latency
     * histograms, pool, cache and memo stats. Built entirely from
     * atomic reads and DistributionStat snapshots — a scrape never
     * holds a lock a request thread contends beyond one histogram
     * copy.
     */
    std::string metricsText() const;

    /** Request spans recorded so far (tests; snapshot under lock). */
    std::vector<RequestSpan> spans() const;

    const ServeOptions &options() const { return opts; }

  private:
    /** Per-endpoint counters + latency histogram (group "serve"). */
    struct EndpointStats
    {
        std::unique_ptr<ScalarStat> accepted;
        std::unique_ptr<ScalarStat> rejected;
        std::unique_ptr<ScalarStat> completed;
        std::unique_ptr<ScalarStat> errors;
        std::unique_ptr<ScalarStat> cacheHits;
        std::unique_ptr<ScalarStat> cacheMisses;
        std::unique_ptr<DistributionStat> latencyUs;
    };

    /** Which wire dialect a connection settled on. */
    enum class Protocol
    {
        Sniffing, ///< first bytes not seen yet
        Ndjson,   ///< newline-delimited JSON (the PR-4 dialect)
        Binary,   ///< CPB1 length-prefixed multiplexed frames
    };

    /**
     * One accepted connection. The fd is owned by this struct and
     * closed by its destructor, so whichever of the event loop and the
     * last in-flight handler drops its shared_ptr last also retires
     * the descriptor — there is no window where the fd number can be
     * recycled while a handler still holds it. Parse state (rxBuffer,
     * decoder, protocol) is touched only by the loop thread; the tx
     * buffer and the stream table are the two cross-thread surfaces,
     * each behind its own ranked mutex.
     */
    struct Conn
    {
        Conn(int fd_, std::uint64_t maxFrameBytes)
            : fd(fd_), decoder(maxFrameBytes)
        {
        }
        ~Conn();
        Conn(const Conn &) = delete;
        Conn &operator=(const Conn &) = delete;

        const int fd;
        std::atomic<bool> open{true};

        // --- loop-thread-only parse state ---
        Protocol protocol = Protocol::Sniffing;
        std::string rxBuffer;
        FrameDecoder decoder;
        bool wantWrite = false; ///< EPOLLOUT currently armed
        std::uint64_t nextSyntheticStream = 1; ///< NDJSON cancel keys

        /** Buffered output; the loop flushes, handlers only append. */
        Mutex txMutex{lock_rank::serveTx};
        std::string txBuffer COPERNICUS_GUARDED_BY(txMutex);
        std::size_t txOffset COPERNICUS_GUARDED_BY(txMutex) = 0;

        /** In-flight streams; value = the stream's cancel flag. */
        Mutex streamsMutex{lock_rank::serveStreams};
        std::map<std::uint64_t, std::shared_ptr<std::atomic<bool>>>
            streams COPERNICUS_GUARDED_BY(streamsMutex);
    };

    enum class Admit { Ok, Full, Draining };

    /** What a handler reports back for the request's wide event. */
    struct RequestObs
    {
        std::size_t formatsSwept = 0; ///< sweep endpoints only
        bool memoHit = false; ///< advise/plan_formats served from memo
    };

    /** One in-flight request, for --top's per-request ages. */
    struct InflightEntry
    {
        Endpoint endpoint = Endpoint::Ping;
        std::uint64_t id = 0;
        std::uint64_t startUs = 0;
    };

    /** A request's identity on its connection. */
    struct StreamHandle
    {
        bool binary = false;
        std::uint64_t streamId = 0; ///< wire id, or synthetic (NDJSON)
        std::shared_ptr<std::atomic<bool>> cancelFlag;
    };

    void bindSocket();

    // --- event loop (all private loop* methods run on loopThread) ---
    void loopMain();
    void loopAccept(
        std::map<int, std::shared_ptr<Conn>> &connsByFd);
    bool loopRead(const std::shared_ptr<Conn> &conn);
    bool consumeSniff(const std::shared_ptr<Conn> &conn);
    void consumeNdjson(const std::shared_ptr<Conn> &conn);
    bool consumeBinary(const std::shared_ptr<Conn> &conn);
    void closeConn(std::map<int, std::shared_ptr<Conn>> &connsByFd,
                   const std::shared_ptr<Conn> &conn);
    void flushConn(const std::shared_ptr<Conn> &conn);
    void updateWriteInterest(const std::shared_ptr<Conn> &conn,
                             bool want);
    void drainWakeups();
    void flushAllBeforeExit(
        std::map<int, std::shared_ptr<Conn>> &connsByFd);

    /**
     * Parse + admit one request payload (a JSON object without its
     * framing) and hand it to the pool. @p binary selects the response
     * dialect; @p wireStreamId is the frame's stream id (ignored for
     * NDJSON, which gets a synthetic key for disconnect-cancel).
     */
    void handlePayload(const std::shared_ptr<Conn> &conn,
                       const std::string &payload, bool binary,
                       std::uint64_t wireStreamId);
    void handleCancel(const std::shared_ptr<Conn> &conn,
                      std::uint64_t streamId);

    /**
     * @param receiptUs observeNowUs() when the payload was read — the
     *        queue-wait half of the latency split.
     * @param requestSpanId Pre-allocated id of the serve.request span,
     *        0 when span recording is off.
     */
    void runRequest(std::shared_ptr<Conn> conn, ServeRequest request,
                    StreamHandle stream, std::uint64_t receiptUs,
                    std::uint64_t requestSpanId);

    /** Dispatch to the endpoint handler; returns the result JSON. */
    std::string dispatch(const ServeRequest &request,
                         const std::function<bool()> &abortRequested,
                         RequestObs &obs);

    /** Record one wide event (no-op when observability is off). */
    void recordWideEvent(const ServeRequest &request,
                         std::string_view outcome, bool binary,
                         std::uint64_t receiptUs, std::uint64_t startUs,
                         std::uint64_t endUs, double timeoutMs,
                         std::uint64_t cacheHits,
                         std::uint64_t cacheMisses,
                         std::uint64_t compressUs,
                         const RequestObs &obs);

    Admit tryAdmit();
    void releaseAdmission();

    /**
     * Append one response payload to the connection's tx buffer in its
     * wire dialect (frame or line) and get it flushed: immediately
     * when called on the loop thread, via a dirty-list entry plus an
     * eventfd wakeup otherwise. Safe from any thread.
     */
    void respond(const std::shared_ptr<Conn> &conn, bool binary,
                 std::uint64_t streamId, std::string_view payload);
    void wakeLoop();
    bool onLoopThread() const;

    std::uint64_t nowUs() const;
    EndpointStats &statsFor(Endpoint endpoint);

    ServeOptions opts;
    int listenFd = -1;
    int epollFd = -1;
    int wakeFd = -1;
    int boundTcpPort = -1;
    bool started = false;

    std::thread loopThread;
    std::atomic<bool> loopExit{false};
    std::thread::id loopThreadId;

    /** Cross-thread handoff to the loop: connections with fresh tx. */
    Mutex loopMutex{lock_rank::serveLoop};
    std::vector<std::shared_ptr<Conn>> dirtyConns
        COPERNICUS_GUARDED_BY(loopMutex);

    /**
     * Admission state, all under admitMutex. CV-paired, so it stays
     * std::mutex (documented exclusion, common/mutex.hh).
     */
    mutable std::mutex admitMutex;
    std::size_t inflight = 0;
    bool draining = false;
    std::condition_variable idleCv;  ///< inflight reached zero
    std::condition_variable drainCv; ///< draining flipped on
    /** Mirror of `draining` the loop polls without the CV mutex. */
    std::atomic<bool> drainingFlag{false};

    std::unique_ptr<ThreadPool> pool;
    std::unique_ptr<ResultMemo> memo;

    StatGroup grp{"serve"};
    std::vector<EndpointStats> endpointStats; ///< allEndpoints() order
    std::unique_ptr<ScalarStat> connections;
    std::unique_ptr<ScalarStat> badLines;
    /** badLines split by RequestParseError (satellite counters). */
    std::unique_ptr<ScalarStat> badLinesMalformed;
    std::unique_ptr<ScalarStat> badLinesUnknownOp;
    std::unique_ptr<ScalarStat> badLinesOther;
    /** Binary-framing protocol errors, by kind. */
    std::unique_ptr<ScalarStat> framesOversized;
    std::unique_ptr<ScalarStat> framesProtocolError;
    std::unique_ptr<ScalarStat> framesTruncated;
    std::unique_ptr<ScalarStat> streamsCancelled;
    ThreadPoolStats poolStats;
    EncodeCacheStats cacheStats;

    mutable Mutex spansMutex{lock_rank::serveSpans};
    std::vector<RequestSpan> requestSpans
        COPERNICUS_GUARDED_BY(spansMutex);

    /** In-flight registry for --top, under inflightMutex. */
    mutable Mutex inflightMutex{lock_rank::serveInflight};
    std::map<std::uint64_t, InflightEntry> inflightReqs
        COPERNICUS_GUARDED_BY(inflightMutex);
    std::uint64_t nextReqToken COPERNICUS_GUARDED_BY(inflightMutex) = 1;

    /** True when this server turned the span collector on. */
    bool observingSpans = false;
};

} // namespace copernicus

#endif // COPERNICUS_SERVE_SERVER_HH
