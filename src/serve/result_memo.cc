#include "serve/result_memo.hh"

namespace copernicus {

ResultMemo::ResultMemo(std::uint64_t byteBudget) : budget(byteBudget)
{
}

std::uint64_t
ResultMemo::entryCost(std::size_t payloadBytes)
{
    // Payload bytes plus a flat estimate for the list node, the index
    // slot and two string headers; keeps the budget honest for many
    // small entries without weighing real allocations.
    return static_cast<std::uint64_t>(payloadBytes) + 96;
}

bool
ResultMemo::lookup(const MemoKey &key, std::string &payloadOut)
{
    if (!enabled())
        return false;
    const MutexLock lock(mutex);
    const auto it = index.find(key);
    if (it == index.end()) {
        ++counters.misses;
        return false;
    }
    lru.splice(lru.begin(), lru, it->second);
    payloadOut = it->second->payload;
    ++counters.hits;
    return true;
}

void
ResultMemo::evictUntilFits(std::uint64_t incomingCost)
{
    while (!lru.empty() &&
           counters.bytes + incomingCost > budget) {
        const Entry &victim = lru.back();
        counters.bytes -= entryCost(victim.payload.size());
        index.erase(victim.key);
        lru.pop_back();
        --counters.entries;
        ++counters.evictions;
    }
}

void
ResultMemo::insert(const MemoKey &key, std::string_view payload)
{
    if (!enabled())
        return;
    const std::uint64_t cost = entryCost(payload.size());
    if (cost > budget)
        return; // would evict everything and still not fit
    const MutexLock lock(mutex);
    const auto it = index.find(key);
    if (it != index.end()) {
        // Refresh in place (same key can race two concurrent misses).
        counters.bytes -= entryCost(it->second->payload.size());
        it->second->payload.assign(payload.data(), payload.size());
        counters.bytes += cost;
        lru.splice(lru.begin(), lru, it->second);
        evictUntilFits(0);
        return;
    }
    evictUntilFits(cost);
    lru.push_front(Entry{key, std::string(payload)});
    index.emplace(key, lru.begin());
    counters.bytes += cost;
    ++counters.entries;
}

ResultMemoStats
ResultMemo::stats() const
{
    const MutexLock lock(mutex);
    return counters;
}

} // namespace copernicus
