/**
 * @file
 * Blocking client for the characterization daemon, speaking either
 * wire dialect.
 *
 * One ServeClient wraps one connected socket. By default it speaks
 * NDJSON: call() frames a request line, sends it, and blocks until the
 * matching response line arrives (that dialect answers every request
 * on the connection in order, so no correlation table is needed).
 * enableBinaryFraming() — before the first request — switches the
 * connection to the CPB1 multiplexed framing (serve/framing.hh): the
 * same call()/requestLine() surface keeps working one-request-at-a-
 * time, and startCall()/awaitCall()/cancelCall() expose the
 * multiplexing — many streams in flight, responses claimed in any
 * order, cooperative per-stream cancellation. Shared by
 * `copernicus_cli --connect`, the bench_serve_load generator and
 * tests/test_serve.cc, so all of them speak exactly the wire dialects
 * the server does.
 *
 * Thread safety: none — use one ServeClient per thread (that is what
 * the closed-loop load generator does).
 */

#ifndef COPERNICUS_SERVE_CLIENT_HH
#define COPERNICUS_SERVE_CLIENT_HH

#include <cstdint>
#include <map>
#include <string>

#include "common/json.hh"
#include "serve/framing.hh"

namespace copernicus {

/** One client connection to a copernicus_serve daemon. */
class ServeClient
{
  public:
    /** Connect to a Unix-domain socket; FatalError on failure. */
    static ServeClient connectUnix(const std::string &path);

    /** Connect to a loopback TCP port; FatalError on failure. */
    static ServeClient connectTcp(int port);

    ~ServeClient();
    ServeClient(ServeClient &&other) noexcept;
    ServeClient &operator=(ServeClient &&other) noexcept;
    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /**
     * Issue one request and block for its response.
     *
     * @param op Endpoint wire name ("ping", "advise", ...).
     * @param paramsJson The params object as raw JSON; "" omits it.
     * @param timeoutMs Serialized as the request's timeout_ms when
     *        positive. This is the *server-side* deadline; pair it
     *        with setReceiveTimeoutMs for a client-side one.
     * @return The parsed response (always an object with "ok").
     */
    JsonValue call(const std::string &op,
                   const std::string &paramsJson = "",
                   double timeoutMs = 0);

    /**
     * Send one raw line (newline appended) and return the next
     * response line, newline stripped. FatalError when the server
     * closes the connection or the receive timeout fires.
     */
    std::string requestLine(const std::string &line);

    /**
     * Negotiate the CPB1 binary framing by sending the connection
     * magic. Must be the first bytes on the wire — call it before any
     * request. All subsequent calls (call, requestLine, startCall)
     * travel as frames.
     */
    void enableBinaryFraming();

    /** True once enableBinaryFraming() succeeded. */
    bool binaryFraming() const { return binary; }

    /**
     * Send one request on a fresh stream without waiting (binary
     * framing only). Returns the stream id to pass to awaitCall() or
     * cancelCall(); any number of streams may be in flight.
     */
    std::uint64_t startCall(const std::string &op,
                            const std::string &paramsJson = "",
                            double timeoutMs = 0);

    /** Block for the response of one in-flight stream (any order). */
    JsonValue awaitCall(std::uint64_t streamId);

    /**
     * Ask the server to abort @p streamId cooperatively (binary
     * framing only). The stream still gets its response — normally
     * {"error": "cancelled"} — which awaitCall() must still claim.
     */
    void cancelCall(std::uint64_t streamId);

    /** SO_RCVTIMEO guard against a dead server; 0 disables. */
    void setReceiveTimeoutMs(double ms);

    /** The correlation id the next call() will use. */
    std::uint64_t nextId() const { return nextRequestId; }

  private:
    explicit ServeClient(int fd_) : fd(fd_) {}

    void sendAll(const char *data, std::size_t size);
    std::string buildRequestJson(const std::string &op,
                                 const std::string &paramsJson,
                                 double timeoutMs);
    std::uint64_t sendRequestFrame(const std::string &payload);
    std::string awaitResponse(std::uint64_t streamId);

    int fd = -1;
    std::string rxBuffer;
    std::uint64_t nextRequestId = 1;

    bool binary = false;
    FrameDecoder decoder;
    std::uint64_t nextStreamId = 1;
    /** Responses read while waiting for a different stream. */
    std::map<std::uint64_t, std::string> readyResponses;
};

} // namespace copernicus

#endif // COPERNICUS_SERVE_CLIENT_HH
