/**
 * @file
 * Blocking NDJSON client for the characterization daemon.
 *
 * One ServeClient wraps one connected socket. call() frames a request
 * line, sends it, and blocks until the matching response line arrives
 * (the protocol answers every request on the connection in order, so
 * no correlation table is needed). Shared by `copernicus_cli
 * --connect`, the bench_serve_load generator and tests/test_serve.cc,
 * so all of them speak exactly the wire dialect the server does.
 *
 * Thread safety: none — use one ServeClient per thread (that is what
 * the closed-loop load generator does).
 */

#ifndef COPERNICUS_SERVE_CLIENT_HH
#define COPERNICUS_SERVE_CLIENT_HH

#include <cstdint>
#include <string>

#include "common/json.hh"

namespace copernicus {

/** One client connection to a copernicus_serve daemon. */
class ServeClient
{
  public:
    /** Connect to a Unix-domain socket; FatalError on failure. */
    static ServeClient connectUnix(const std::string &path);

    /** Connect to a loopback TCP port; FatalError on failure. */
    static ServeClient connectTcp(int port);

    ~ServeClient();
    ServeClient(ServeClient &&other) noexcept;
    ServeClient &operator=(ServeClient &&other) noexcept;
    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /**
     * Issue one request and block for its response.
     *
     * @param op Endpoint wire name ("ping", "advise", ...).
     * @param paramsJson The params object as raw JSON; "" omits it.
     * @param timeoutMs Serialized as the request's timeout_ms when
     *        positive. This is the *server-side* deadline; pair it
     *        with setReceiveTimeoutMs for a client-side one.
     * @return The parsed response (always an object with "ok").
     */
    JsonValue call(const std::string &op,
                   const std::string &paramsJson = "",
                   double timeoutMs = 0);

    /**
     * Send one raw line (newline appended) and return the next
     * response line, newline stripped. FatalError when the server
     * closes the connection or the receive timeout fires.
     */
    std::string requestLine(const std::string &line);

    /** SO_RCVTIMEO guard against a dead server; 0 disables. */
    void setReceiveTimeoutMs(double ms);

    /** The correlation id the next call() will use. */
    std::uint64_t nextId() const { return nextRequestId; }

  private:
    explicit ServeClient(int fd_) : fd(fd_) {}

    int fd = -1;
    std::string rxBuffer;
    std::uint64_t nextRequestId = 1;
};

} // namespace copernicus

#endif // COPERNICUS_SERVE_CLIENT_HH
