#include "serve/framing.hh"

#include <algorithm>
#include <cstring>

#include "common/status.hh"

namespace copernicus {

namespace {

void
putU32le(char *out, std::uint32_t v)
{
    out[0] = static_cast<char>(v & 0xff);
    out[1] = static_cast<char>((v >> 8) & 0xff);
    out[2] = static_cast<char>((v >> 16) & 0xff);
    out[3] = static_cast<char>((v >> 24) & 0xff);
}

void
putU64le(char *out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint32_t
getU32le(const char *in)
{
    const auto *b = reinterpret_cast<const unsigned char *>(in);
    return static_cast<std::uint32_t>(b[0]) |
           (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) |
           (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t
getU64le(const char *in)
{
    const auto *b = reinterpret_cast<const unsigned char *>(in);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
}

} // namespace

void
appendFrame(std::string &out, FrameType type, std::uint64_t streamId,
            std::string_view payload)
{
    panicIf(payload.size() > frameLengthHardCap,
            "framing: payload exceeds the hard frame cap");
    char header[frameHeaderSize] = {};
    putU32le(header, static_cast<std::uint32_t>(payload.size()));
    header[4] = static_cast<char>(type);
    header[5] = 0; // flags
    header[6] = 0; // reserved
    header[7] = 0;
    putU64le(header + 8, streamId);
    out.append(header, frameHeaderSize);
    out.append(payload.data(), payload.size());
}

std::string
encodeFrame(FrameType type, std::uint64_t streamId,
            std::string_view payload)
{
    std::string out;
    out.reserve(frameHeaderSize + payload.size());
    appendFrame(out, type, streamId, payload);
    return out;
}

FrameDecoder::FrameDecoder(std::uint64_t maxFrameBytes)
    : maxFrame(maxFrameBytes)
{
}

void
FrameDecoder::feed(const char *data, std::size_t size)
{
    if (state == State::Broken)
        return;
    buffer.append(data, size);
}

bool
FrameDecoder::midFrame() const
{
    if (state == State::Payload || state == State::Discard)
        return true;
    return state == State::Header && bufferedBytes() > 0;
}

void
FrameDecoder::compact()
{
    // Drop consumed bytes once they dominate the buffer, so the
    // decoder's memory stays bounded by the feed chunk size instead of
    // growing with connection lifetime.
    if (consumed > 4096 && consumed * 2 >= buffer.size()) {
        buffer.erase(0, consumed);
        consumed = 0;
    }
}

DecodeResult
FrameDecoder::next(Frame &out)
{
    for (;;) {
        switch (state) {
          case State::Broken:
            return DecodeResult::Fatal;

          case State::Discard: {
            const std::size_t avail = bufferedBytes();
            const std::size_t take = static_cast<std::size_t>(
                std::min<std::uint64_t>(avail, discardRemaining));
            consumed += take;
            discardRemaining -= take;
            compact();
            if (discardRemaining > 0)
                return DecodeResult::NeedMore;
            state = State::Header;
            continue;
          }

          case State::Header: {
            if (bufferedBytes() < frameHeaderSize)
                return DecodeResult::NeedMore;
            const char *h = buffer.data() + consumed;
            length = getU32le(h);
            const auto rawType =
                static_cast<std::uint8_t>(h[4]);
            const auto flags = static_cast<std::uint8_t>(h[5]);
            const std::uint16_t reserved =
                static_cast<std::uint16_t>(
                    static_cast<std::uint8_t>(h[6]) |
                    (static_cast<std::uint8_t>(h[7]) << 8));
            streamId = getU64le(h + 8);
            consumed += frameHeaderSize;
            compact();

            if (rawType < 1 || rawType > 3) {
                state = State::Broken;
                fatalReason = "unknown frame type " +
                              std::to_string(rawType);
                return DecodeResult::Fatal;
            }
            type = static_cast<FrameType>(rawType);
            if (flags != 0 || reserved != 0) {
                state = State::Broken;
                fatalReason =
                    "non-zero flags/reserved bits in frame header";
                return DecodeResult::Fatal;
            }
            if (length > frameLengthHardCap) {
                state = State::Broken;
                fatalReason = "declared payload of " +
                              std::to_string(length) +
                              " bytes exceeds the hard cap";
                return DecodeResult::Fatal;
            }
            if (type == FrameType::Cancel && length != 0) {
                state = State::Broken;
                fatalReason = "cancel frame carries a payload";
                return DecodeResult::Fatal;
            }
            if (length > maxFrame) {
                // Report the header once, then stream the payload into
                // the void; the connection keeps its framing.
                state = State::Discard;
                discardRemaining = length;
                out.type = type;
                out.streamId = streamId;
                out.payload.clear();
                return DecodeResult::Oversized;
            }
            state = State::Payload;
            continue;
          }

          case State::Payload: {
            if (bufferedBytes() < length)
                return DecodeResult::NeedMore;
            out.type = type;
            out.streamId = streamId;
            out.payload.assign(buffer.data() + consumed,
                               static_cast<std::size_t>(length));
            consumed += static_cast<std::size_t>(length);
            compact();
            state = State::Header;
            return DecodeResult::GotFrame;
          }
        }
    }
}

} // namespace copernicus
