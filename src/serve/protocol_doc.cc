#include "serve/protocol_doc.hh"

#include <sstream>

#include "common/json.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

namespace copernicus {

namespace {

std::string
quoted(std::string_view text)
{
    std::ostringstream out;
    writeJsonString(out, text);
    return out.str();
}

std::string
num(double v)
{
    std::ostringstream out;
    writeJsonNumber(out, v);
    return out.str();
}

} // namespace

std::string
buildWideEventJson(const WideEventInputs &in)
{
    // One flat, pre-serialised record per request: everything a
    // post-mortem asks first, without joining other data sources.
    std::ostringstream out;
    out << "{\"type\": \"request\", \"endpoint\": "
        << quoted(in.endpoint) << ", \"id\": " << in.id
        << ", \"trace_id\": " << quoted(in.traceIdHex)
        << ", \"outcome\": " << quoted(in.outcome)
        << ", \"receipt_us\": " << in.receiptUs
        << ", \"queue_wait_us\": " << in.queueWaitUs
        << ", \"latency_us\": " << in.latencyUs
        << ", \"deadline_budget_ms\": " << num(in.deadlineBudgetMs)
        << ", \"deadline_used_ms\": " << num(in.deadlineUsedMs)
        << ", \"cache_hits\": " << in.cacheHits
        << ", \"cache_misses\": " << in.cacheMisses
        << ", \"compress_us\": " << in.compressUs
        << ", \"formats_swept\": " << in.formatsSwept
        << ", \"memo_hit\": " << (in.memoHit ? "true" : "false")
        << ", \"protocol\": " << quoted(in.protocol) << '}';
    return out.str();
}

const std::vector<std::string> &
documentedEndpoints()
{
    static const std::vector<std::string> table = {
        "ping",          "stats",       "shutdown",
        "sleep",         "run_study",   "plan_formats",
        "advise",        "validate_tile", "metrics",
        "dump_flightrec", "store_info",
    };
    return table;
}

const std::vector<std::string> &
documentedWideEventFields()
{
    static const std::vector<std::string> table = {
        "type",
        "endpoint",
        "id",
        "trace_id",
        "outcome",
        "receipt_us",
        "queue_wait_us",
        "latency_us",
        "deadline_budget_ms",
        "deadline_used_ms",
        "cache_hits",
        "cache_misses",
        "compress_us",
        "formats_swept",
        "memo_hit",
        "protocol",
    };
    return table;
}

const std::vector<std::string> &
documentedMetricFamilies()
{
    static const std::vector<std::string> table = {
        "copernicus_serve_requests_accepted_total",
        "copernicus_serve_requests_rejected_total",
        "copernicus_serve_requests_completed_total",
        "copernicus_serve_requests_errored_total",
        "copernicus_serve_cache_hits_total",
        "copernicus_serve_cache_misses_total",
        "copernicus_serve_bad_lines_total",
        "copernicus_serve_connections_total",
        "copernicus_serve_frame_errors_total",
        "copernicus_serve_streams_cancelled_total",
        "copernicus_serve_queue_depth",
        "copernicus_serve_memo_hits_total",
        "copernicus_serve_memo_misses_total",
        "copernicus_serve_memo_evictions_total",
        "copernicus_serve_memo_entries",
        "copernicus_serve_memo_bytes",
        "copernicus_serve_request_duration_seconds",
        "copernicus_thread_pool_tasks_total",
        "copernicus_thread_pool_steals_total",
        "copernicus_encode_cache_hits_total",
        "copernicus_encode_cache_misses_total",
        "copernicus_encode_cache_entries",
        "copernicus_flightrec_wide_events_total",
        "copernicus_flightrec_wide_events_dropped_total",
        "copernicus_spans_recorded_total",
        "copernicus_spans_dropped_total",
    };
    return table;
}

ProtocolSurface
collectServeProtocolSurface()
{
    ProtocolSurface surface;

    // Implemented endpoints: the dispatch switch covers every enum
    // value (a missing case is a -Wswitch build error), so the
    // endpoint registry IS the handled set.
    for (const Endpoint endpoint : allEndpoints())
        surface.handledEndpoints.emplace_back(endpointName(endpoint));

    // Implemented wide-event fields: build a sample through the one
    // real serializer and read the keys back.
    JsonValue sample;
    if (parseJson(buildWideEventJson(WideEventInputs()), sample))
        for (const auto &[key, value] : sample.members)
            surface.wideEventFields.push_back(key);

    // Implemented metric families: scrape a throwaway Server (never
    // started, so no socket) and read the `# HELP <name>` lines the
    // exposition writes once per family.
    ServeOptions options;
    options.checkRegistry = false;
    options.observability = false;
    const Server probe(std::move(options));
    std::istringstream metrics(probe.metricsText());
    std::string line;
    while (std::getline(metrics, line)) {
        constexpr std::string_view help = "# HELP ";
        if (line.compare(0, help.size(), help) != 0)
            continue;
        const std::string::size_type nameEnd =
            line.find(' ', help.size());
        surface.metricNames.push_back(
            line.substr(help.size(), nameEnd == std::string::npos
                                         ? std::string::npos
                                         : nameEnd - help.size()));
    }

    surface.documentedEndpoints = documentedEndpoints();
    surface.documentedWideEventFields = documentedWideEventFields();
    surface.documentedMetricNames = documentedMetricFamilies();
    return surface;
}

} // namespace copernicus
