#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "analysis/schedule_check.hh"
#include "common/fnv.hh"
#include "common/logging.hh"
#include "common/prometheus.hh"
#include "common/status.hh"
#include "common/trace_context.hh"
#include "compress/second_stage.hh"
#include "core/scheduler.hh"
#include "core/study.hh"
#include "formats/validate.hh"
#include "matrix/stats.hh"
#include "serve/protocol_doc.hh"
#include "store/container.hh"
#include "store/sweep_journal.hh"
#include "trace/flight_recorder.hh"
#include "trace/span.hh"
#include "trace/trace_writer.hh"

namespace copernicus {

namespace {

/** Set by requestShutdownFromSignal(); polled by the event-loop tick. */
std::atomic<bool> signalShutdown{false};

std::string
jsonStr(std::string_view text)
{
    std::ostringstream out;
    writeJsonString(out, text);
    return out.str();
}

std::string
jsonNum(double v)
{
    std::ostringstream out;
    writeJsonNumber(out, v);
    return out.str();
}

} // namespace

Server::Conn::~Conn()
{
    if (fd >= 0)
        ::close(fd);
}

Server::Server(ServeOptions options) : opts(std::move(options))
{
    fatalIf(opts.queueCapacity == 0,
            "serve: queue capacity must be at least 1");
    connections = std::make_unique<ScalarStat>(
        grp, "connections", "client connections accepted");
    badLines = std::make_unique<ScalarStat>(
        grp, "bad_lines", "request lines that failed to parse");
    badLinesMalformed = std::make_unique<ScalarStat>(
        grp, "bad_lines.malformed_json",
        "request lines that were not valid JSON");
    badLinesUnknownOp = std::make_unique<ScalarStat>(
        grp, "bad_lines.unknown_op",
        "well-formed requests naming an op we do not serve");
    badLinesOther = std::make_unique<ScalarStat>(
        grp, "bad_lines.other",
        "other frame errors (non-object, missing op, bad params)");
    framesOversized = std::make_unique<ScalarStat>(
        grp, "frames.oversized",
        "binary frames rejected for exceeding the payload cap");
    framesProtocolError = std::make_unique<ScalarStat>(
        grp, "frames.protocol_error",
        "binary frames violating the framing protocol");
    framesTruncated = std::make_unique<ScalarStat>(
        grp, "frames.truncated",
        "binary connections that ended mid-frame");
    streamsCancelled = std::make_unique<ScalarStat>(
        grp, "streams.cancelled",
        "streams cancelled by an explicit cancel frame");
    endpointStats.resize(allEndpoints().size());
    for (std::size_t i = 0; i < allEndpoints().size(); ++i) {
        const std::string prefix(endpointName(allEndpoints()[i]));
        EndpointStats &s = endpointStats[i];
        s.accepted = std::make_unique<ScalarStat>(
            grp, prefix + ".accepted", "requests admitted");
        s.rejected = std::make_unique<ScalarStat>(
            grp, prefix + ".rejected",
            "requests shed (queue_full / shutting_down)");
        s.completed = std::make_unique<ScalarStat>(
            grp, prefix + ".completed", "requests answered ok");
        s.errors = std::make_unique<ScalarStat>(
            grp, prefix + ".errors",
            "admitted requests answered with an error");
        s.cacheHits = std::make_unique<ScalarStat>(
            grp, prefix + ".cache_hits",
            "encode-cache hits attributed to this endpoint");
        s.cacheMisses = std::make_unique<ScalarStat>(
            grp, prefix + ".cache_misses",
            "encode-cache misses attributed to this endpoint");
        s.latencyUs = std::make_unique<DistributionStat>(
            grp, prefix + ".latency_us",
            "admitted-request latency (microseconds)", 0, 100000, 1000);
    }
    memo = std::make_unique<ResultMemo>(opts.memoBytes);
}

Server::~Server()
{
    if (started) {
        beginShutdown();
        waitDrained();
    }
}

Server::EndpointStats &
Server::statsFor(Endpoint endpoint)
{
    const auto index = static_cast<std::size_t>(endpoint);
    panicIf(index >= endpointStats.size(),
            "serve: endpoint index out of range");
    return endpointStats[index];
}

std::uint64_t
Server::nowUs() const
{
    // The shared observability clock, so request spans, wide events
    // and SpanCollector spans all line up on one axis.
    return observeNowUs();
}

void
Server::requestShutdownFromSignal()
{
    signalShutdown.store(true, std::memory_order_relaxed);
}

void
Server::bindSocket()
{
    if (opts.tcpPort >= 0) {
        listenFd = ::socket(AF_INET,
                            SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                            0);
        fatalIf(listenFd < 0, std::string("serve: socket(): ") +
                                  std::strerror(errno));
        const int one = 1;
        ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<std::uint16_t>(opts.tcpPort));
        fatalIf(::bind(listenFd,
                       reinterpret_cast<const sockaddr *>(&addr),
                       sizeof(addr)) != 0,
                "serve: cannot bind 127.0.0.1:" +
                    std::to_string(opts.tcpPort) + ": " +
                    std::strerror(errno));
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        fatalIf(::getsockname(listenFd,
                              reinterpret_cast<sockaddr *>(&bound),
                              &len) != 0,
                std::string("serve: getsockname(): ") +
                    std::strerror(errno));
        boundTcpPort = ntohs(bound.sin_port);
    } else {
        fatalIf(opts.socketPath.empty(),
                "serve: a socket path or --tcp port is required");
        sockaddr_un addr{};
        fatalIf(opts.socketPath.size() >= sizeof(addr.sun_path),
                "serve: socket path '" + opts.socketPath +
                    "' is too long for sockaddr_un");
        listenFd = ::socket(AF_UNIX,
                            SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                            0);
        fatalIf(listenFd < 0, std::string("serve: socket(): ") +
                                  std::strerror(errno));
        ::unlink(opts.socketPath.c_str());
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        fatalIf(::bind(listenFd,
                       reinterpret_cast<const sockaddr *>(&addr),
                       sizeof(addr)) != 0,
                "serve: cannot bind '" + opts.socketPath +
                    "': " + std::strerror(errno));
    }
    // SOMAXCONN instead of a hand-picked backlog: the load benchmark
    // opens thousands of connections in a burst, and a short backlog
    // turns that burst into ECONNREFUSED/retry latency at the client.
    fatalIf(::listen(listenFd, SOMAXCONN) != 0,
            std::string("serve: listen(): ") + std::strerror(errno));
}

void
Server::start()
{
    panicIf(started, "serve: start() called twice");

    if (opts.checkRegistry) {
        LintOptions lint;
        lint.params = opts.lintParams;
        lint.runGrammar = opts.fullLint;
        lint.runOracle = opts.fullLint;
        lint.runStreams = opts.fullLint;
        lint.runCompress = opts.fullLint;
        // The quick gate keeps the static passes (spec, body,
        // contract, overflow, capacity, thread-safety, protocol) —
        // they cost milliseconds; only the tile sweeps gate on
        // fullLint. A daemon whose own protocol surface drifted from
        // its documentation refuses to start just like one whose
        // schedule model is wrong.
        const ProtocolSurface surface = collectServeProtocolSurface();
        lint.protocol = &surface;
        const LintReport report = runLint(lint);
        fatalIf(!report.ok(),
                "serve: refusing to start, the format registry failed "
                "the schedule contract check:\n" +
                    report.toString());
        inform("serve: registry lint passed (" +
                std::to_string(report.warningCount()) + " warnings)");
    }

    if (opts.observability) {
        FlightRecorder::global().setCapacity(
            opts.flightRecorderCapacity);
        if (!SpanCollector::global().enabled()) {
            SpanCollector::global().setEnabled(true);
            observingSpans = true;
        }
    }

    // One lane more than the handler concurrency: the event loop must
    // never execute a handler inline (ThreadPool::submit degrades to
    // inline execution on a 1-lane pool), or a sweep would stall every
    // other connection's I/O. effectiveJobs(workers) lanes do handler
    // work; the +1 lane is the loop's submitting thread, which never
    // participates.
    pool = std::make_unique<ThreadPool>(effectiveJobs(opts.workers) + 1);
    bindSocket();

    epollFd = ::epoll_create1(EPOLL_CLOEXEC);
    fatalIf(epollFd < 0, std::string("serve: epoll_create1(): ") +
                             std::strerror(errno));
    wakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    fatalIf(wakeFd < 0, std::string("serve: eventfd(): ") +
                            std::strerror(errno));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listenFd;
    fatalIf(::epoll_ctl(epollFd, EPOLL_CTL_ADD, listenFd, &ev) != 0,
            std::string("serve: epoll_ctl(listen): ") +
                std::strerror(errno));
    ev.data.fd = wakeFd;
    fatalIf(::epoll_ctl(epollFd, EPOLL_CTL_ADD, wakeFd, &ev) != 0,
            std::string("serve: epoll_ctl(wake): ") +
                std::strerror(errno));

    started = true;
    loopExit.store(false, std::memory_order_relaxed);
    loopThread = std::thread([this] { loopMain(); });

    if (opts.tcpPort >= 0) {
        inform("serve: listening on 127.0.0.1:" +
                std::to_string(boundTcpPort));
    } else {
        inform("serve: listening on " + opts.socketPath);
    }
}

bool
Server::accepting() const
{
    const std::lock_guard<std::mutex> lock(admitMutex);
    return started && !draining;
}

Server::Admit
Server::tryAdmit()
{
    const std::lock_guard<std::mutex> lock(admitMutex);
    if (draining)
        return Admit::Draining;
    if (inflight >= opts.queueCapacity)
        return Admit::Full;
    ++inflight;
    return Admit::Ok;
}

void
Server::releaseAdmission()
{
    std::lock_guard<std::mutex> lock(admitMutex);
    panicIf(inflight == 0, "serve: admission released twice");
    --inflight;
    if (inflight == 0)
        idleCv.notify_all();
}

void
Server::beginShutdown()
{
    {
        const std::lock_guard<std::mutex> lock(admitMutex);
        if (draining)
            return;
        draining = true;
    }
    drainingFlag.store(true, std::memory_order_release);
    drainCv.notify_all();
    idleCv.notify_all();
    wakeLoop();
    inform("serve: draining (in-flight requests will finish)");
}

void
Server::wakeLoop()
{
    if (wakeFd < 0)
        return;
    const std::uint64_t one = 1;
    // An EAGAIN here means the counter is already non-zero — the loop
    // is waking anyway, so the lost write is harmless.
    [[maybe_unused]] const ssize_t n =
        ::write(wakeFd, &one, sizeof(one));
}

bool
Server::onLoopThread() const
{
    return std::this_thread::get_id() == loopThreadId;
}

void
Server::respond(const std::shared_ptr<Conn> &conn, bool binary,
                std::uint64_t streamId, std::string_view payload)
{
    if (!conn->open.load(std::memory_order_relaxed))
        return;
    {
        const MutexLock lock(conn->txMutex);
        if (binary) {
            appendFrame(conn->txBuffer, FrameType::Response, streamId,
                        payload);
        } else {
            conn->txBuffer.append(payload.data(), payload.size());
            conn->txBuffer.push_back('\n');
        }
    }
    if (onLoopThread()) {
        flushConn(conn);
        return;
    }
    {
        const MutexLock lock(loopMutex);
        dirtyConns.push_back(conn);
    }
    wakeLoop();
}

void
Server::loopMain()
{
    loopThreadId = std::this_thread::get_id();
    std::map<int, std::shared_ptr<Conn>> connsByFd;
    bool listenArmed = true;
    epoll_event events[64];

    for (;;) {
        if (signalShutdown.load(std::memory_order_relaxed))
            beginShutdown();
        if (listenArmed &&
            drainingFlag.load(std::memory_order_acquire)) {
            ::epoll_ctl(epollFd, EPOLL_CTL_DEL, listenFd, nullptr);
            listenArmed = false;
        }
        if (loopExit.load(std::memory_order_acquire))
            break;

        const int ready = ::epoll_wait(epollFd, events, 64, 100);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < ready; ++i) {
            const int fd = events[i].data.fd;
            if (fd == listenFd) {
                if (listenArmed)
                    loopAccept(connsByFd);
                continue;
            }
            if (fd == wakeFd) {
                drainWakeups();
                continue;
            }
            const auto it = connsByFd.find(fd);
            if (it == connsByFd.end())
                continue;
            // Copy the shared_ptr: closeConn() erases the map entry.
            const std::shared_ptr<Conn> conn = it->second;
            const std::uint32_t what = events[i].events;
            if (what & EPOLLOUT)
                flushConn(conn);
            bool keep = conn->open.load(std::memory_order_relaxed);
            if (keep && (what & (EPOLLIN | EPOLLHUP | EPOLLERR)))
                keep = loopRead(conn);
            if (!keep || !conn->open.load(std::memory_order_relaxed))
                closeConn(connsByFd, conn);
        }

        // Flush the connections handlers marked dirty since the last
        // tick (their responses were appended off-thread).
        std::vector<std::shared_ptr<Conn>> dirty;
        {
            const MutexLock lock(loopMutex);
            dirty.swap(dirtyConns);
        }
        for (const std::shared_ptr<Conn> &conn : dirty) {
            if (!conn->open.load(std::memory_order_relaxed))
                continue;
            flushConn(conn);
            if (!conn->open.load(std::memory_order_relaxed))
                closeConn(connsByFd, conn);
        }
    }

    flushAllBeforeExit(connsByFd);
}

void
Server::loopAccept(std::map<int, std::shared_ptr<Conn>> &connsByFd)
{
    for (;;) {
        const int fd = ::accept4(listenFd, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN, or a transient accept error; next tick
        }
        if (opts.tcpPort >= 0) {
            // Request/response frames are small relative to an MTU;
            // Nagle would add up to one delayed-ACK interval (~40 ms)
            // to every response on loopback TCP, dwarfing the actual
            // service time. Measured in BENCH_serve_load.json.
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
        }
        *connections += 1;
        auto conn = std::make_shared<Conn>(fd, opts.maxFrameBytes);
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) != 0)
            continue; // conn drops here, dtor closes fd
        connsByFd.emplace(fd, std::move(conn));
    }
}

bool
Server::loopRead(const std::shared_ptr<Conn> &conn)
{
    char buf[65536];
    for (;;) {
        const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true;
        }
        if (n <= 0) {
            // EOF or a hard error: the peer is gone. A binary
            // connection that ends inside a frame truncated its final
            // frame — worth a counter, it usually means a client
            // crashed mid-send.
            if (conn->protocol == Protocol::Binary &&
                conn->decoder.midFrame())
                *framesTruncated += 1;
            return false;
        }
        switch (conn->protocol) {
          case Protocol::Sniffing:
            conn->rxBuffer.append(buf, static_cast<std::size_t>(n));
            if (!consumeSniff(conn))
                return false;
            break;
          case Protocol::Ndjson:
            conn->rxBuffer.append(buf, static_cast<std::size_t>(n));
            consumeNdjson(conn);
            break;
          case Protocol::Binary:
            conn->decoder.feed(buf, static_cast<std::size_t>(n));
            if (!consumeBinary(conn))
                return false;
            break;
        }
    }
}

bool
Server::consumeSniff(const std::shared_ptr<Conn> &conn)
{
    // A connection opens in one of two ways: the 4-byte "CPB1" magic
    // (binary framing) or anything else (NDJSON). The magic contains
    // no newline, so the first byte that diverges from it — including
    // a newline — settles the dialect immediately; at most 3 bytes are
    // ever held back waiting for the decision.
    const std::string &rx = conn->rxBuffer;
    const std::size_t probe =
        std::min<std::size_t>(rx.size(), framingMagic.size());
    if (rx.compare(0, probe, framingMagic.data(), probe) != 0) {
        conn->protocol = Protocol::Ndjson;
        consumeNdjson(conn);
        return true;
    }
    if (rx.size() < framingMagic.size())
        return true; // still a strict prefix of the magic; wait
    conn->protocol = Protocol::Binary;
    if (rx.size() > framingMagic.size())
        conn->decoder.feed(rx.data() + framingMagic.size(),
                           rx.size() - framingMagic.size());
    conn->rxBuffer.clear();
    conn->rxBuffer.shrink_to_fit();
    return consumeBinary(conn);
}

void
Server::consumeNdjson(const std::shared_ptr<Conn> &conn)
{
    std::size_t pos;
    while ((pos = conn->rxBuffer.find('\n')) != std::string::npos) {
        std::string line = conn->rxBuffer.substr(0, pos);
        conn->rxBuffer.erase(0, pos + 1);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.find_first_not_of(" \t") == std::string::npos)
            continue;
        handlePayload(conn, line, /*binary=*/false, /*wireStreamId=*/0);
    }
}

bool
Server::consumeBinary(const std::shared_ptr<Conn> &conn)
{
    Frame frame;
    for (;;) {
        switch (conn->decoder.next(frame)) {
          case DecodeResult::NeedMore:
            return true;

          case DecodeResult::GotFrame:
            switch (frame.type) {
              case FrameType::Request:
                handlePayload(conn, frame.payload, /*binary=*/true,
                              frame.streamId);
                break;
              case FrameType::Cancel:
                handleCancel(conn, frame.streamId);
                break;
              case FrameType::Response:
                // Only servers send Response frames. Misuse, but the
                // stream boundaries are intact, so answer on the
                // stream and keep the connection.
                *framesProtocolError += 1;
                respond(conn, true, frame.streamId,
                        errorResponse(0, "", serve_error::badRequest,
                                      "unexpected response frame from "
                                      "client"));
                break;
            }
            break;

          case DecodeResult::Oversized:
            // The declared payload exceeds the cap; the decoder is
            // discarding it without buffering. The stream gets its
            // one response; the connection and its other streams
            // continue untouched.
            *framesOversized += 1;
            respond(conn, true, frame.streamId,
                    errorResponse(
                        0, "", serve_error::badRequest,
                        "frame payload of " +
                            std::to_string(conn->decoder.declaredLength()) +
                            " bytes exceeds the " +
                            std::to_string(opts.maxFrameBytes) +
                            " byte limit"));
            break;

          case DecodeResult::Fatal:
            *framesProtocolError += 1;
            inform("serve: closing desynchronized binary connection: " +
                   conn->decoder.error());
            return false;
        }
    }
}

void
Server::handleCancel(const std::shared_ptr<Conn> &conn,
                     std::uint64_t streamId)
{
    std::shared_ptr<std::atomic<bool>> flag;
    {
        const MutexLock lock(conn->streamsMutex);
        const auto it = conn->streams.find(streamId);
        if (it != conn->streams.end())
            flag = it->second;
    }
    // Unknown stream: the response already retired it, or the client
    // made the id up. Either way cancel is best-effort and idempotent.
    if (!flag)
        return;
    flag->store(true, std::memory_order_relaxed);
    *streamsCancelled += 1;
}

void
Server::closeConn(std::map<int, std::shared_ptr<Conn>> &connsByFd,
                  const std::shared_ptr<Conn> &conn)
{
    conn->open.store(false, std::memory_order_relaxed);
    ::epoll_ctl(epollFd, EPOLL_CTL_DEL, conn->fd, nullptr);
    {
        // A vanished client cancels everything it had in flight; the
        // handlers unwind at their next cancel poll instead of
        // sweeping for a peer that will never read the answer.
        const MutexLock lock(conn->streamsMutex);
        for (const auto &[id, flag] : conn->streams)
            flag->store(true, std::memory_order_relaxed);
        conn->streams.clear();
    }
    connsByFd.erase(conn->fd);
    // The fd itself closes when the last shared_ptr (possibly held by
    // an in-flight handler) releases the Conn.
}

void
Server::flushConn(const std::shared_ptr<Conn> &conn)
{
    if (!conn->open.load(std::memory_order_relaxed))
        return;
    bool want = false;
    {
        const MutexLock lock(conn->txMutex);
        while (conn->txOffset < conn->txBuffer.size()) {
            const ssize_t n =
                ::send(conn->fd, conn->txBuffer.data() + conn->txOffset,
                       conn->txBuffer.size() - conn->txOffset,
                       MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK) {
                    want = true;
                    break;
                }
                // The peer is gone; drop the buffer, the event loop
                // retires the connection on its next pass.
                conn->open.store(false, std::memory_order_relaxed);
                conn->txBuffer.clear();
                conn->txOffset = 0;
                return;
            }
            conn->txOffset += static_cast<std::size_t>(n);
        }
        if (conn->txOffset > 0) {
            conn->txBuffer.erase(0, conn->txOffset);
            conn->txOffset = 0;
        }
    }
    updateWriteInterest(conn, want);
}

void
Server::updateWriteInterest(const std::shared_ptr<Conn> &conn,
                            bool want)
{
    if (want == conn->wantWrite ||
        !conn->open.load(std::memory_order_relaxed))
        return;
    epoll_event ev{};
    ev.events = want ? (EPOLLIN | EPOLLOUT)
                     : static_cast<std::uint32_t>(EPOLLIN);
    ev.data.fd = conn->fd;
    if (::epoll_ctl(epollFd, EPOLL_CTL_MOD, conn->fd, &ev) == 0)
        conn->wantWrite = want;
}

void
Server::drainWakeups()
{
    std::uint64_t counter = 0;
    while (::read(wakeFd, &counter, sizeof(counter)) > 0) {
    }
}

void
Server::flushAllBeforeExit(
    std::map<int, std::shared_ptr<Conn>> &connsByFd)
{
    // All handlers have finished (waitDrained holds loopExit until
    // inflight hit zero), so every response is in some tx buffer.
    // Deliver them with a bounded retry window for peers applying
    // backpressure, then retire everything.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    for (;;) {
        drainWakeups();
        {
            const MutexLock lock(loopMutex);
            dirtyConns.clear();
        }
        bool pending = false;
        for (const auto &[fd, conn] : connsByFd) {
            if (!conn->open.load(std::memory_order_relaxed))
                continue;
            flushConn(conn);
            if (!conn->open.load(std::memory_order_relaxed))
                continue;
            const MutexLock lock(conn->txMutex);
            if (conn->txOffset < conn->txBuffer.size())
                pending = true;
        }
        if (!pending || std::chrono::steady_clock::now() >= deadline)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    for (const auto &[fd, conn] : connsByFd) {
        ::shutdown(conn->fd, SHUT_RDWR);
        conn->open.store(false, std::memory_order_relaxed);
        const MutexLock lock(conn->streamsMutex);
        for (const auto &[id, flag] : conn->streams)
            flag->store(true, std::memory_order_relaxed);
        conn->streams.clear();
    }
    connsByFd.clear();
}

void
Server::handlePayload(const std::shared_ptr<Conn> &conn,
                      const std::string &payload, bool binary,
                      std::uint64_t wireStreamId)
{
    const std::uint64_t receiptUs = nowUs();
    ServeRequest request;
    std::string parseError;
    RequestParseError why;
    if (!parseRequest(payload, request, parseError, why)) {
        *badLines += 1;
        switch (why) {
          case RequestParseError::MalformedJson:
            *badLinesMalformed += 1;
            break;
          case RequestParseError::UnknownOp:
            *badLinesUnknownOp += 1;
            break;
          default:
            *badLinesOther += 1;
            break;
        }
        if (opts.observability) {
            FlightRecorder::global().record(
                "{\"type\": \"bad_line\", \"reason\": " +
                jsonStr(requestParseErrorName(why)) +
                ", \"receipt_us\": " + std::to_string(receiptUs) + "}");
        }
        respond(conn, binary, wireStreamId,
                errorResponse(0, "", serve_error::badRequest,
                              parseError));
        return;
    }

    if (binary && wireStreamId == 0) {
        // Stream id 0 is reserved (it is the NDJSON synthetic space's
        // "no stream" value); a request on it has no usable reply
        // address.
        *framesProtocolError += 1;
        respond(conn, binary, 0,
                errorResponse(request.id,
                              endpointName(request.endpoint),
                              serve_error::badRequest,
                              "stream id 0 is reserved"));
        return;
    }

    // Assign the request's trace identity up front: the rejection wide
    // events and the eventual serve.request span share one trace, and
    // a client-supplied trace id is adopted so the caller's client
    // span becomes the parent of everything the server records.
    std::uint64_t requestSpanId = 0;
    if (opts.observability && SpanCollector::global().enabled()) {
        if (!request.trace.valid())
            request.trace.traceId = newTraceId();
        requestSpanId = newSpanId();
    }

    switch (tryAdmit()) {
      case Admit::Full:
        *statsFor(request.endpoint).rejected += 1;
        recordWideEvent(request, serve_error::queueFull, binary,
                        receiptUs, receiptUs, nowUs(), 0, 0, 0, 0,
                        RequestObs{});
        respond(conn, binary, wireStreamId,
                errorResponse(request.id,
                              endpointName(request.endpoint),
                              serve_error::queueFull,
                              "admission queue is full (capacity " +
                                  std::to_string(opts.queueCapacity) +
                                  "); retry later",
                              request.trace.traceId));
        return;
      case Admit::Draining:
        *statsFor(request.endpoint).rejected += 1;
        recordWideEvent(request, serve_error::shuttingDown, binary,
                        receiptUs, receiptUs, nowUs(), 0, 0, 0, 0,
                        RequestObs{});
        respond(conn, binary, wireStreamId,
                errorResponse(request.id,
                              endpointName(request.endpoint),
                              serve_error::shuttingDown,
                              "server is draining",
                              request.trace.traceId));
        return;
      case Admit::Ok:
        break;
    }

    // Register the stream before the handler can run: its cancel flag
    // is the rendezvous between a Cancel frame (or a disconnect) and
    // the handler's cancelCheck polls. NDJSON requests get a synthetic
    // id from a space the wire never uses, purely for disconnect
    // cancellation.
    StreamHandle stream;
    stream.binary = binary;
    stream.cancelFlag = std::make_shared<std::atomic<bool>>(false);
    bool duplicate = false;
    if (binary) {
        stream.streamId = wireStreamId;
        const MutexLock lock(conn->streamsMutex);
        duplicate = !conn->streams
                         .emplace(wireStreamId, stream.cancelFlag)
                         .second;
    } else {
        stream.streamId = conn->nextSyntheticStream++;
        const MutexLock lock(conn->streamsMutex);
        conn->streams.emplace(stream.streamId, stream.cancelFlag);
    }
    if (duplicate) {
        // The id is still owned by the earlier request; this one was
        // admitted but never registered, so hand the slot back.
        releaseAdmission();
        *statsFor(request.endpoint).rejected += 1;
        *framesProtocolError += 1;
        respond(conn, binary, wireStreamId,
                errorResponse(request.id,
                              endpointName(request.endpoint),
                              serve_error::badRequest,
                              "stream id " +
                                  std::to_string(wireStreamId) +
                                  " is already in flight",
                              request.trace.traceId));
        return;
    }

    *statsFor(request.endpoint).accepted += 1;
    // The shared_ptr keeps the Conn (and its fd) alive until the
    // handler is done with it even if the client disconnects
    // mid-request; the loop never blocks on this work.
    pool->submit([this, conn, request = std::move(request), stream,
                  receiptUs, requestSpanId]() mutable {
        runRequest(conn, std::move(request), std::move(stream),
                   receiptUs, requestSpanId);
    });
}

void
Server::runRequest(std::shared_ptr<Conn> conn, ServeRequest request,
                   StreamHandle stream, std::uint64_t receiptUs,
                   std::uint64_t requestSpanId)
{
    EndpointStats &stats = statsFor(request.endpoint);
    const std::uint64_t startUs = nowUs();
    const EncodeCache::Stats cacheBefore = EncodeCache::global().stats();
    const CompressTotals compressBefore = compressTotals();

    const bool observe = requestSpanId != 0;
    if (observe) {
        // The queue span covers receipt -> handler start; it is a
        // child of the serve.request span recorded below.
        SpanCollector::global().record({request.trace.traceId,
                                        newSpanId(), requestSpanId,
                                        "serve.queue", "serve",
                                        receiptUs, startUs});
    }

    std::uint64_t token = 0;
    {
        const MutexLock lock(inflightMutex);
        token = nextReqToken++;
        inflightReqs.emplace(
            token, InflightEntry{request.endpoint, request.id, startUs});
    }

    double timeoutMs = request.timeoutMs > 0 ? request.timeoutMs
                                             : opts.defaultTimeoutMs;
    std::function<bool()> deadlineHit;
    if (timeoutMs > 0) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(
                static_cast<std::int64_t>(timeoutMs * 1000.0));
        deadlineHit = [deadline] {
            return std::chrono::steady_clock::now() >= deadline;
        };
    }
    // One predicate feeds every cancelCheck poll: explicit per-stream
    // cancel (or disconnect) and the deadline look identical to the
    // handler; which one fired is resolved after the unwind.
    const std::shared_ptr<std::atomic<bool>> cancelFlag =
        stream.cancelFlag;
    std::function<bool()> abortRequested;
    if (deadlineHit || cancelFlag) {
        abortRequested = [deadlineHit, cancelFlag] {
            if (cancelFlag &&
                cancelFlag->load(std::memory_order_relaxed))
                return true;
            return deadlineHit && deadlineHit();
        };
    }

    std::string response;
    std::string outcome = "ok";
    RequestObs obs;
    {
        // Everything the handler does — the serve.handler span, the
        // study phases, any pool fan-out — parents under the
        // serve.request span through the thread-local context.
        const TraceContextScope scope(
            observe ? TraceContext{request.trace.traceId, requestSpanId}
                    : TraceContext{});
        const ScopedSpan handler("serve.handler", "serve");
        try {
            response = okResponse(request,
                                  dispatch(request, abortRequested, obs));
            *stats.completed += 1;
        } catch (const CancelledError &e) {
            const bool wasCancelled =
                cancelFlag &&
                cancelFlag->load(std::memory_order_relaxed);
            outcome = std::string(wasCancelled
                                      ? serve_error::cancelled
                                      : serve_error::deadlineExceeded);
            response = errorResponse(
                request.id, endpointName(request.endpoint), outcome,
                wasCancelled ? "stream cancelled by the client"
                             : e.what(),
                request.trace.traceId);
            *stats.errors += 1;
        } catch (const FatalError &e) {
            outcome = std::string(serve_error::badRequest);
            response = errorResponse(
                request.id, endpointName(request.endpoint),
                serve_error::badRequest, e.what(),
                request.trace.traceId);
            *stats.errors += 1;
        } catch (const std::exception &e) {
            outcome = std::string(serve_error::internal);
            response = errorResponse(
                request.id, endpointName(request.endpoint),
                serve_error::internal, e.what(),
                request.trace.traceId);
            *stats.errors += 1;
        }
    }

    // Attribute cache activity to the endpoint. Deltas from a shared
    // cache are approximate when requests overlap, but per-endpoint
    // hit *rates* remain meaningful because the mix is attributed
    // proportionally over many requests.
    const EncodeCache::Stats cacheAfter = EncodeCache::global().stats();
    const auto cacheHits = cacheAfter.hits - cacheBefore.hits;
    const auto cacheMisses = cacheAfter.misses - cacheBefore.misses;
    // Second-stage compression time attributed to this request; the
    // same approximate-under-overlap caveat as the cache deltas.
    const std::uint64_t compressUs =
        (compressTotals().nanos - compressBefore.nanos) / 1000;
    *stats.cacheHits += static_cast<double>(cacheHits);
    *stats.cacheMisses += static_cast<double>(cacheMisses);

    const std::uint64_t endUs = nowUs();
    stats.latencyUs->sample(static_cast<double>(endUs - startUs));
    {
        const MutexLock lock(spansMutex);
        requestSpans.push_back(
            {request.endpoint, request.id, startUs, endUs, outcome});
    }
    {
        const MutexLock lock(inflightMutex);
        inflightReqs.erase(token);
    }

    if (observe) {
        // The root (or client-parented) serve.request span spans
        // receipt to completion, covering queue wait and handler both.
        SpanCollector::global().record(
            {request.trace.traceId, requestSpanId,
             request.trace.spanId, "serve.request", "serve", receiptUs,
             endUs});
    }
    recordWideEvent(request, outcome, stream.binary, receiptUs,
                    startUs, endUs, timeoutMs, cacheHits, cacheMisses,
                    compressUs, obs);

    // Retire the stream id before the response leaves, so a client
    // that reuses an id immediately after reading its response can
    // never race the erase.
    {
        const MutexLock lock(conn->streamsMutex);
        conn->streams.erase(stream.streamId);
    }
    respond(conn, stream.binary, stream.streamId, response);
    releaseAdmission();

    // The shutdown endpoint's response must reach the tx buffer before
    // the drain can race the connection teardown, so drain starts
    // last.
    if (request.endpoint == Endpoint::Shutdown)
        beginShutdown();
}

void
Server::recordWideEvent(const ServeRequest &request,
                        std::string_view outcome, bool binary,
                        std::uint64_t receiptUs, std::uint64_t startUs,
                        std::uint64_t endUs, double timeoutMs,
                        std::uint64_t cacheHits,
                        std::uint64_t cacheMisses,
                        std::uint64_t compressUs,
                        const RequestObs &obs)
{
    if (!opts.observability)
        return;
    WideEventInputs event;
    event.endpoint = endpointName(request.endpoint);
    event.id = request.id;
    event.traceIdHex = traceIdToHex(request.trace.traceId);
    event.outcome = outcome;
    event.receiptUs = receiptUs;
    event.queueWaitUs = startUs - receiptUs;
    event.latencyUs = endUs - startUs;
    event.deadlineBudgetMs = timeoutMs;
    event.deadlineUsedMs =
        static_cast<double>(endUs - startUs) / 1000.0;
    event.cacheHits = cacheHits;
    event.cacheMisses = cacheMisses;
    event.compressUs = compressUs;
    event.formatsSwept = obs.formatsSwept;
    event.memoHit = obs.memoHit;
    event.protocol = binary ? "binary" : "ndjson";
    FlightRecorder::global().record(buildWideEventJson(event));
}

std::string
Server::dispatch(const ServeRequest &request,
                 const std::function<bool()> &abortRequested,
                 RequestObs &obs)
{
    const auto checkAbort = [&abortRequested] {
        if (abortRequested && abortRequested())
            throw CancelledError("request deadline exceeded");
    };
    const JsonValue &params = request.params;

    switch (request.endpoint) {
      case Endpoint::Ping:
        return "{\"pong\": true}";

      case Endpoint::Stats:
        return statsJson();

      case Endpoint::Shutdown:
        return "{\"draining\": true}";

      case Endpoint::Sleep: {
        // Test/load-gen endpoint: occupy an admission slot for a
        // controlled time, honoring the deadline like a real sweep.
        double ms = params.numberOr("ms", 100);
        fatalIf(ms < 0 || ms > 60000,
                "sleep: ms must be in [0, 60000]");
        double slept = 0;
        while (slept < ms) {
            checkAbort();
            const double slice = std::min(5.0, ms - slept);
            std::this_thread::sleep_for(std::chrono::microseconds(
                static_cast<std::int64_t>(slice * 1000.0)));
            slept += slice;
        }
        return "{\"slept_ms\": " + jsonNum(ms) + "}";
      }

      case Endpoint::Advise: {
        const JsonValue *spec = params.find("matrix");
        fatalIf(spec == nullptr, "advise: params.matrix is required");
        const TripletMatrix matrix =
            matrixFromSpec(*spec, opts.maxMatrixDim);
        checkAbort();
        const AdvisorGoal goal =
            goalFromName(params.stringOr("goal", "balanced"));
        const bool tailored = params.boolOr("tailored_engine", false);

        // Advice is a pure function of (matrix content, goal,
        // tailored-engine flag); the memo key binds exactly those.
        // Params are validated *before* the lookup so a hit and a miss
        // reject the same malformed requests.
        MemoKey key;
        std::string cached;
        if (memo->enabled()) {
            key.contentHash = contentHashOf(matrix);
            std::uint64_t h = fnv1a("advise", 6);
            const std::string_view goalStr = goalName(goal);
            h = fnv1a(goalStr.data(), goalStr.size(), h);
            h = fnv1aValue(tailored, h);
            key.configHash = h;
            if (memo->lookup(key, cached)) {
                obs.memoHit = true;
                const ScopedSpan span("serve.memo", "serve");
                return cached;
            }
        }

        const MatrixStats mstats = computeStats(matrix);
        const Recommendation rec = advise(mstats, goal, tailored);
        std::ostringstream out;
        out << "{\"format\": " << jsonStr(formatName(rec.format))
            << ", \"partition_size\": " << rec.partitionSize
            << ", \"requires_tailored_engine\": "
            << (rec.requiresTailoredEngine ? "true" : "false")
            << ", \"goal\": " << jsonStr(goalName(goal))
            << ", \"alternatives\": [";
        for (std::size_t i = 0; i < rec.alternatives.size(); ++i) {
            if (i > 0)
                out << ", ";
            out << jsonStr(formatName(rec.alternatives[i]));
        }
        out << "], \"rationale\": " << jsonStr(rec.rationale)
            << ", \"matrix\": {\"rows\": " << mstats.rows
            << ", \"cols\": " << mstats.cols
            << ", \"nnz\": " << mstats.nnz
            << ", \"density\": " << jsonNum(mstats.density)
            << ", \"bandwidth\": " << mstats.bandwidth << "}}";
        const std::string payload = out.str();
        if (memo->enabled())
            memo->insert(key, payload);
        return payload;
      }

      case Endpoint::RunStudy: {
        const JsonValue *spec = params.find("matrix");
        fatalIf(spec == nullptr,
                "run_study: params.matrix is required");
        TripletMatrix matrix =
            matrixFromSpec(*spec, opts.maxMatrixDim);
        StudyConfig cfg;
        cfg.partitionSizes = partitionSizesFromParam(
            params.find("partition_sizes"), cfg.partitionSizes);
        cfg.formats =
            formatsFromParam(params.find("formats"), cfg.formats);
        obs.formatsSwept = cfg.formats.size();
        // One lane: the serve pool is the concurrency layer; a nested
        // per-request pool would oversubscribe and break the admission
        // queue's meaning as "concurrent work units".
        cfg.jobs = 1;
        cfg.cancelCheck = abortRequested;
        // Optional sweep journal: completed cells of a previous
        // (killed) run of the same matrix/config are reused, not
        // re-simulated. The identity must bind before Study copies
        // the config, and to the exact workload set Study will see.
        std::size_t resumedCells = 0;
        const std::string journalPath =
            params.stringOr("journal", "");
        if (!journalPath.empty()) {
            JournalIdentity identity;
            identity.matrixHash =
                workloadSetHash({{"request", contentHashOf(matrix)}});
            if (spec->stringOr("kind", "") == "cbm")
                identity.matrixEpoch =
                    CbmReader(spec->stringOr("path", "")).epoch();
            identity.configHash =
                sweepConfigHash(cfg.partitionSizes, cfg.formats);
            cfg.journal =
                std::make_shared<SweepJournal>(journalPath, identity);
            resumedCells = cfg.journal->resumedCells();
        }
        Study study(cfg);
        study.addWorkload("request", std::move(matrix));
        const StudyResult result = study.run();

        std::ostringstream out;
        out << "{\"rows\": " << result.rows.size()
            << ", \"resumed_cells\": " << resumedCells
            << ", \"by_format\": [";
        const std::vector<FormatMetrics> agg =
            result.aggregateByFormat();
        for (std::size_t i = 0; i < agg.size(); ++i) {
            if (i > 0)
                out << ", ";
            out << "{\"format\": " << jsonStr(formatName(agg[i].format))
                << ", \"mean_sigma\": " << jsonNum(agg[i].meanSigma)
                << ", \"throughput_bps\": "
                << jsonNum(agg[i].throughput)
                << ", \"balance_ratio\": "
                << jsonNum(agg[i].balanceRatio)
                << ", \"bw_util\": "
                << jsonNum(agg[i].bandwidthUtilization)
                << ", \"total_seconds\": "
                << jsonNum(agg[i].totalSeconds)
                << ", \"dyn_power_w\": "
                << jsonNum(agg[i].dynamicPowerW) << '}';
        }
        out << ']';
        if (params.boolOr("include_rows", false)) {
            out << ", \"row_details\": [";
            for (std::size_t i = 0; i < result.rows.size(); ++i) {
                const StudyRow &row = result.rows[i];
                if (i > 0)
                    out << ", ";
                out << "{\"format\": "
                    << jsonStr(formatName(row.format))
                    << ", \"p\": " << row.partitionSize
                    << ", \"total_cycles\": " << row.totalCycles
                    << ", \"mean_sigma\": " << jsonNum(row.meanSigma)
                    << ", \"bw_util\": "
                    << jsonNum(row.bandwidthUtilization) << '}';
            }
            out << ']';
        }
        out << '}';
        return out.str();
      }

      case Endpoint::PlanFormats: {
        const JsonValue *spec = params.find("matrix");
        fatalIf(spec == nullptr,
                "plan_formats: params.matrix is required");
        const TripletMatrix matrix =
            matrixFromSpec(*spec, opts.maxMatrixDim);
        const double p = params.numberOr("partition_size", 16);
        fatalIf(p < 1 || p > 4096,
                "plan_formats: partition_size must be in [1, 4096]");
        const std::vector<FormatKind> candidates =
            formatsFromParam(params.find("formats"), paperFormats());
        obs.formatsSwept = candidates.size();
        const std::string objectiveName =
            params.stringOr("objective", "bottleneck");
        SchedulerObjective objective = SchedulerObjective::Bottleneck;
        if (objectiveName == "compute") {
            objective = SchedulerObjective::Compute;
        } else if (objectiveName == "bytes") {
            objective = SchedulerObjective::Bytes;
        } else {
            fatalIf(objectiveName != "bottleneck",
                    "plan_formats: unknown objective '" +
                        objectiveName +
                        "' (expected bottleneck|compute|bytes)");
        }

        // Like advise: the plan depends only on (matrix content,
        // partition size, candidate set, objective), all validated
        // above, so key on exactly those.
        MemoKey key;
        std::string cached;
        if (memo->enabled()) {
            key.contentHash = contentHashOf(matrix);
            std::uint64_t h = fnv1a("plan_formats", 12);
            h = fnv1aValue(static_cast<std::uint64_t>(
                               static_cast<Index>(p)),
                           h);
            for (FormatKind kind : candidates) {
                const std::string_view name = formatName(kind);
                h = fnv1a(name.data(), name.size(), h);
                h = fnv1a("|", 1, h);
            }
            h = fnv1a(objectiveName.data(), objectiveName.size(), h);
            key.configHash = h;
            if (memo->lookup(key, cached)) {
                obs.memoHit = true;
                const ScopedSpan span("serve.memo", "serve");
                return cached;
            }
        }

        checkAbort();
        const Partitioning parts =
            partition(matrix, static_cast<Index>(p));
        checkAbort();
        const FormatPlan plan =
            planFormats(parts, candidates, objective, HlsConfig(),
                        defaultRegistry(), 1);
        std::ostringstream out;
        out << "{\"tiles\": " << plan.perTile.size()
            << ", \"histogram\": {";
        bool first = true;
        for (const auto &[kind, tiles] : plan.histogram) {
            if (!first)
                out << ", ";
            first = false;
            out << jsonStr(formatName(kind)) << ": " << tiles;
        }
        out << "}}";
        const std::string payload = out.str();
        if (memo->enabled())
            memo->insert(key, payload);
        return payload;
      }

      case Endpoint::ValidateTile: {
        const JsonValue *spec = params.find("matrix");
        fatalIf(spec == nullptr,
                "validate_tile: params.matrix is required");
        const TripletMatrix matrix =
            matrixFromSpec(*spec, opts.maxMatrixDim);
        const double p = params.numberOr("partition_size", 16);
        fatalIf(p < 1 || p > 4096,
                "validate_tile: partition_size must be in [1, 4096]");
        const std::vector<FormatKind> kinds =
            formatsFromParam(params.find("formats"), paperFormats());
        obs.formatsSwept = kinds.size();
        const Partitioning parts =
            partition(matrix, static_cast<Index>(p));
        std::vector<std::string> violations;
        std::size_t checked = 0;
        for (const Tile &tile : parts.tiles) {
            checkAbort();
            for (FormatKind kind : kinds) {
                const auto encoded =
                    encodeCached(defaultRegistry(), kind, tile);
                const GrammarReport report =
                    validateEncodedTile(*encoded);
                ++checked;
                for (const GrammarViolation &v : report.violations)
                    violations.push_back(v.toString());
            }
        }
        std::ostringstream out;
        out << "{\"tiles\": " << parts.tiles.size()
            << ", \"formats\": " << kinds.size()
            << ", \"checked\": " << checked << ", \"ok\": "
            << (violations.empty() ? "true" : "false")
            << ", \"violations\": [";
        for (std::size_t i = 0; i < violations.size(); ++i) {
            if (i > 0)
                out << ", ";
            out << jsonStr(violations[i]);
        }
        out << "]}";
        return out.str();
      }

      case Endpoint::Metrics: {
        // The exposition text rides inside the JSON envelope; a
        // scraper sidecar (or the CLI's --metrics) unwraps "body".
        return "{\"content_type\": "
               "\"text/plain; version=0.0.4; charset=utf-8\", "
               "\"body\": " +
               jsonStr(metricsText()) + "}";
      }

      case Endpoint::DumpFlightRec: {
        const std::string path = params.stringOr("path", "");
        const FlightRecorder &recorder = FlightRecorder::global();
        if (!path.empty()) {
            recorder.dumpToFile(path);
            std::ostringstream out;
            out << "{\"path\": " << jsonStr(path)
                << ", \"wide_events\": "
                << recorder.snapshot().size() << ", \"spans\": "
                << SpanCollector::global().snapshot().size() << '}';
            return out.str();
        }
        // No path: the dump document itself is the result.
        std::ostringstream out;
        recorder.dump(out);
        return out.str();
      }

      case Endpoint::StoreInfo: {
        const std::string path = params.stringOr("path", "");
        fatalIf(path.empty(), "store_info: params.path is required");
        const bool deep = params.boolOr("deep", false);
        const std::vector<CbmIssue> issues =
            inspectCbmFile(path, deep);
        std::ostringstream out;
        if (issues.empty()) {
            const CbmReader reader(path);
            out << "{\"valid\": true, \"deep\": "
                << (deep ? "true" : "false")
                << ", \"rows\": " << reader.rows()
                << ", \"cols\": " << reader.cols()
                << ", \"nnz\": " << reader.nnz()
                << ", \"epoch\": " << reader.epoch()
                << ", \"content_hash\": " << reader.contentHash()
                << ", \"chunk_count\": " << reader.chunkCount()
                << ", \"chunk_target_nnz\": "
                << reader.chunkTargetNnz() << ", \"issues\": []}";
            return out.str();
        }
        // A broken container is a valid answer to "inspect this
        // file", not a request error: report what the inspector saw.
        out << "{\"valid\": false, \"deep\": "
            << (deep ? "true" : "false") << ", \"issues\": [";
        for (std::size_t i = 0; i < issues.size(); ++i) {
            if (i > 0)
                out << ", ";
            out << "{\"kind\": "
                << jsonStr(cbmIssueKindName(issues[i].kind))
                << ", \"message\": " << jsonStr(issues[i].message)
                << '}';
        }
        out << "]}";
        return out.str();
      }
    }
    panic("serve: unhandled endpoint in dispatch");
}

std::string
Server::statsJson() const
{
    std::ostringstream out;
    dumpGroupsJson(out,
                   {&grp, &poolStats.group(), &cacheStats.group()});
    std::string json = out.str();
    // dumpGroupsJson ends its document with '\n'; embedded in a
    // response payload that newline would split an NDJSON line, so
    // trim it.
    while (!json.empty() &&
           (json.back() == '\n' || json.back() == '\r'))
        json.pop_back();

    // Splice live load state into the document: --top reads queue
    // depth, per-request ages and the memo occupancy from here, so
    // the stats endpoint stays the one poll target.
    panicIf(json.empty() || json.back() != '}',
            "serve: stats dump is not a JSON object");
    json.pop_back();
    std::size_t depth;
    {
        const std::lock_guard<std::mutex> lock(admitMutex);
        depth = inflight;
    }
    json += ", \"queue_depth\": " + std::to_string(depth) +
            ", \"inflight\": [";
    const std::uint64_t now = nowUs();
    {
        const MutexLock lock(inflightMutex);
        bool first = true;
        for (const auto &[token, entry] : inflightReqs) {
            if (!first)
                json += ", ";
            first = false;
            json += "{\"endpoint\": " +
                    jsonStr(endpointName(entry.endpoint)) +
                    ", \"id\": " + std::to_string(entry.id) +
                    ", \"age_us\": " +
                    std::to_string(now > entry.startUs
                                       ? now - entry.startUs
                                       : 0) +
                    "}";
        }
    }
    json += "]";
    const ResultMemoStats memoStats = memo->stats();
    json += ", \"memo\": {\"hits\": " +
            std::to_string(memoStats.hits) +
            ", \"misses\": " + std::to_string(memoStats.misses) +
            ", \"evictions\": " + std::to_string(memoStats.evictions) +
            ", \"entries\": " + std::to_string(memoStats.entries) +
            ", \"bytes\": " + std::to_string(memoStats.bytes) + "}}";
    return json;
}

std::string
Server::metricsText() const
{
    PrometheusWriter writer;
    using Series =
        std::vector<std::pair<std::vector<PrometheusLabel>, double>>;

    // Per-endpoint counters, one series per endpoint.
    const auto perEndpoint = [this](auto member) {
        Series series;
        for (std::size_t i = 0; i < allEndpoints().size(); ++i) {
            series.push_back(
                {{{"endpoint",
                   std::string(endpointName(allEndpoints()[i]))}},
                 (endpointStats[i].*member)->value()});
        }
        return series;
    };
    writer.counter("copernicus_serve_requests_accepted_total",
                   "Requests admitted, by endpoint.",
                   perEndpoint(&EndpointStats::accepted));
    writer.counter("copernicus_serve_requests_rejected_total",
                   "Requests shed (queue_full / shutting_down).",
                   perEndpoint(&EndpointStats::rejected));
    writer.counter("copernicus_serve_requests_completed_total",
                   "Requests answered ok.",
                   perEndpoint(&EndpointStats::completed));
    writer.counter("copernicus_serve_requests_errored_total",
                   "Admitted requests answered with an error.",
                   perEndpoint(&EndpointStats::errors));
    writer.counter("copernicus_serve_cache_hits_total",
                   "Encode-cache hits attributed to the endpoint.",
                   perEndpoint(&EndpointStats::cacheHits));
    writer.counter("copernicus_serve_cache_misses_total",
                   "Encode-cache misses attributed to the endpoint.",
                   perEndpoint(&EndpointStats::cacheMisses));

    writer.counter(
        "copernicus_serve_bad_lines_total",
        "Request lines that failed to parse, by reason.",
        {{{{"reason", "malformed_json"}}, badLinesMalformed->value()},
         {{{"reason", "unknown_op"}}, badLinesUnknownOp->value()},
         {{{"reason", "other"}}, badLinesOther->value()}});
    writer.counter("copernicus_serve_connections_total",
                   "Client connections accepted.",
                   {{{}, connections->value()}});
    writer.counter(
        "copernicus_serve_frame_errors_total",
        "Binary-framing protocol errors, by kind.",
        {{{{"reason", "oversized"}}, framesOversized->value()},
         {{{"reason", "protocol"}}, framesProtocolError->value()},
         {{{"reason", "truncated"}}, framesTruncated->value()}});
    writer.counter(
        "copernicus_serve_streams_cancelled_total",
        "Streams cancelled by an explicit cancel frame.",
        {{{}, streamsCancelled->value()}});

    std::size_t depth;
    {
        const std::lock_guard<std::mutex> lock(admitMutex);
        depth = inflight;
    }
    writer.gauge("copernicus_serve_queue_depth",
                 "Requests currently admitted (in flight).",
                 {{{}, static_cast<double>(depth)}});

    const ResultMemoStats memoStats = memo->stats();
    writer.counter(
        "copernicus_serve_memo_hits_total",
        "Advise/plan_formats requests served from the result memo.",
        {{{}, static_cast<double>(memoStats.hits)}});
    writer.counter("copernicus_serve_memo_misses_total",
                   "Result-memo lookups that missed.",
                   {{{}, static_cast<double>(memoStats.misses)}});
    writer.counter(
        "copernicus_serve_memo_evictions_total",
        "Result-memo entries evicted by the byte budget.",
        {{{}, static_cast<double>(memoStats.evictions)}});
    writer.gauge("copernicus_serve_memo_entries",
                 "Entries resident in the result memo.",
                 {{{}, static_cast<double>(memoStats.entries)}});
    writer.gauge("copernicus_serve_memo_bytes",
                 "Estimated bytes resident in the result memo.",
                 {{{}, static_cast<double>(memoStats.bytes)}});

    // Latency histograms from snapshots: the one histogram copy per
    // endpoint is the only lock a scrape shares with request threads.
    std::vector<std::pair<std::vector<PrometheusLabel>,
                          DistributionStat::Snapshot>>
        latencies;
    for (std::size_t i = 0; i < allEndpoints().size(); ++i) {
        latencies.push_back(
            {{{"endpoint",
               std::string(endpointName(allEndpoints()[i]))}},
             endpointStats[i].latencyUs->snapshot()});
    }
    writer.histogram("copernicus_serve_request_duration_seconds",
                     "Admitted-request latency.", latencies, 1e-6);

    const ThreadPool::Counters poolCounters =
        ThreadPool::globalCounters();
    writer.counter("copernicus_thread_pool_tasks_total",
                   "Pool tasks executed on any lane.",
                   {{{}, static_cast<double>(poolCounters.tasksRun)}});
    writer.counter("copernicus_thread_pool_steals_total",
                   "Tasks taken from another lane's deque.",
                   {{{}, static_cast<double>(poolCounters.steals)}});

    const EncodeCache::Stats cache = EncodeCache::global().stats();
    writer.counter("copernicus_encode_cache_hits_total",
                   "Encode-cache hits, process-wide.",
                   {{{}, static_cast<double>(cache.hits)}});
    writer.counter("copernicus_encode_cache_misses_total",
                   "Encode-cache misses, process-wide.",
                   {{{}, static_cast<double>(cache.misses)}});
    writer.gauge("copernicus_encode_cache_entries",
                 "Entries resident in the encode cache.",
                 {{{}, static_cast<double>(cache.entries)}});

    const FlightRecorder &recorder = FlightRecorder::global();
    writer.counter(
        "copernicus_flightrec_wide_events_total",
        "Wide events recorded by the flight recorder.",
        {{{}, static_cast<double>(recorder.recorded())}});
    writer.counter("copernicus_flightrec_wide_events_dropped_total",
                   "Wide events overwritten by ring wrap-around.",
                   {{{}, static_cast<double>(recorder.dropped())}});
    const SpanCollector &spanCollector = SpanCollector::global();
    writer.counter(
        "copernicus_spans_recorded_total",
        "Spans recorded by the span collector.",
        {{{}, static_cast<double>(spanCollector.recorded())}});
    writer.counter(
        "copernicus_spans_dropped_total",
        "Spans overwritten by ring wrap-around.",
        {{{}, static_cast<double>(spanCollector.dropped())}});

    return writer.text();
}

std::vector<RequestSpan>
Server::spans() const
{
    const MutexLock lock(spansMutex);
    return requestSpans;
}

void
Server::waitDrained()
{
    panicIf(!started, "serve: waitDrained() before start()");

    // 1. Park until someone (signal, shutdown endpoint, or
    //    beginShutdown()) starts the drain. The event loop stops
    //    accepting on its next tick but keeps reading and writing —
    //    in-flight responses still need the wire.
    {
        std::unique_lock<std::mutex> lock(admitMutex);
        drainCv.wait(lock, [this] { return draining; });
    }

    // 2. Wait for the in-flight requests to finish. Admission is
    //    closed (draining), so inflight can only fall; each completion
    //    appends its response to a tx buffer before releasing.
    {
        std::unique_lock<std::mutex> lock(admitMutex);
        idleCv.wait(lock, [this] { return inflight == 0; });
    }

    // 3. Stop the event loop. Its exit path flushes every remaining
    //    tx buffer to the wire before retiring the connections, so
    //    the responses appended in step 2 are delivered.
    loopExit.store(true, std::memory_order_release);
    wakeLoop();
    if (loopThread.joinable())
        loopThread.join();

    // 4. Drain the pool (joins its workers) before flushing artifacts
    //    so no handler can race the single-threaded writers below.
    pool.reset();

    if (!opts.statsJsonPath.empty()) {
        std::ofstream out(opts.statsJsonPath);
        fatalIf(!out, "serve: cannot open stats path '" +
                          opts.statsJsonPath + "'");
        out << statsJson() << '\n';
        inform("serve: stats written to " + opts.statsJsonPath);
    }
    if (!opts.tracePath.empty()) {
        TraceWriter writer;
        writer.beginScope("serve");
        {
            const MutexLock lock(spansMutex);
            for (const RequestSpan &span : requestSpans) {
                writer.durationEvent(endpointName(span.endpoint),
                                     "r" + std::to_string(span.id) +
                                         " " + span.outcome,
                                     span.startUs, span.endUs);
            }
        }
        if (opts.observability) {
            // The span tree rides in the same Chrome trace: one scope,
            // tracks by subsystem, and the causal edges preserved in
            // each event's args (the timeline view flattens them).
            writer.beginScope("spans");
            for (const SpanRecord &span :
                 SpanCollector::global().snapshot()) {
                writer.durationEventArgs(
                    span.track, span.name, span.startUs, span.endUs,
                    "{\"trace_id\": " + jsonStr(traceIdToHex(
                                            span.traceId)) +
                        ", \"span_id\": " +
                        jsonStr(traceIdToHex(span.spanId)) +
                        ", \"parent_span_id\": " +
                        jsonStr(traceIdToHex(span.parentSpanId)) + "}");
            }
        }
        writer.writeFile(opts.tracePath);
        inform("serve: request trace written to " + opts.tracePath);
    }
    if (!opts.flightRecPath.empty()) {
        FlightRecorder::global().dumpToFile(opts.flightRecPath);
        inform("serve: flight recorder dumped to " + opts.flightRecPath);
    }
    if (observingSpans) {
        SpanCollector::global().setEnabled(false);
        observingSpans = false;
    }

    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
    if (epollFd >= 0) {
        ::close(epollFd);
        epollFd = -1;
    }
    if (wakeFd >= 0) {
        ::close(wakeFd);
        wakeFd = -1;
    }
    if (opts.tcpPort < 0 && !opts.socketPath.empty())
        ::unlink(opts.socketPath.c_str());
    started = false;
    inform("serve: drain complete");
}

} // namespace copernicus
