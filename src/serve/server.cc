#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "analysis/schedule_check.hh"
#include "common/logging.hh"
#include "common/prometheus.hh"
#include "common/status.hh"
#include "common/trace_context.hh"
#include "compress/second_stage.hh"
#include "core/scheduler.hh"
#include "core/study.hh"
#include "formats/validate.hh"
#include "matrix/stats.hh"
#include "serve/protocol_doc.hh"
#include "store/container.hh"
#include "store/sweep_journal.hh"
#include "trace/flight_recorder.hh"
#include "trace/span.hh"
#include "trace/trace_writer.hh"

namespace copernicus {

namespace {

/** Set by requestShutdownFromSignal(); polled by the acceptor tick. */
std::atomic<bool> signalShutdown{false};

std::string
jsonStr(std::string_view text)
{
    std::ostringstream out;
    writeJsonString(out, text);
    return out.str();
}

std::string
jsonNum(double v)
{
    std::ostringstream out;
    writeJsonNumber(out, v);
    return out.str();
}

} // namespace

Server::Conn::~Conn()
{
    if (fd >= 0)
        ::close(fd);
}

Server::Server(ServeOptions options) : opts(std::move(options))
{
    fatalIf(opts.queueCapacity == 0,
            "serve: queue capacity must be at least 1");
    connections = std::make_unique<ScalarStat>(
        grp, "connections", "client connections accepted");
    badLines = std::make_unique<ScalarStat>(
        grp, "bad_lines", "request lines that failed to parse");
    badLinesMalformed = std::make_unique<ScalarStat>(
        grp, "bad_lines.malformed_json",
        "request lines that were not valid JSON");
    badLinesUnknownOp = std::make_unique<ScalarStat>(
        grp, "bad_lines.unknown_op",
        "well-formed requests naming an op we do not serve");
    badLinesOther = std::make_unique<ScalarStat>(
        grp, "bad_lines.other",
        "other frame errors (non-object, missing op, bad params)");
    endpointStats.resize(allEndpoints().size());
    for (std::size_t i = 0; i < allEndpoints().size(); ++i) {
        const std::string prefix(endpointName(allEndpoints()[i]));
        EndpointStats &s = endpointStats[i];
        s.accepted = std::make_unique<ScalarStat>(
            grp, prefix + ".accepted", "requests admitted");
        s.rejected = std::make_unique<ScalarStat>(
            grp, prefix + ".rejected",
            "requests shed (queue_full / shutting_down)");
        s.completed = std::make_unique<ScalarStat>(
            grp, prefix + ".completed", "requests answered ok");
        s.errors = std::make_unique<ScalarStat>(
            grp, prefix + ".errors",
            "admitted requests answered with an error");
        s.cacheHits = std::make_unique<ScalarStat>(
            grp, prefix + ".cache_hits",
            "encode-cache hits attributed to this endpoint");
        s.cacheMisses = std::make_unique<ScalarStat>(
            grp, prefix + ".cache_misses",
            "encode-cache misses attributed to this endpoint");
        s.latencyUs = std::make_unique<DistributionStat>(
            grp, prefix + ".latency_us",
            "admitted-request latency (microseconds)", 0, 100000, 1000);
    }
}

Server::~Server()
{
    if (started) {
        beginShutdown();
        waitDrained();
    }
}

Server::EndpointStats &
Server::statsFor(Endpoint endpoint)
{
    const auto index = static_cast<std::size_t>(endpoint);
    panicIf(index >= endpointStats.size(),
            "serve: endpoint index out of range");
    return endpointStats[index];
}

std::uint64_t
Server::nowUs() const
{
    // The shared observability clock, so request spans, wide events
    // and SpanCollector spans all line up on one axis.
    return observeNowUs();
}

void
Server::requestShutdownFromSignal()
{
    signalShutdown.store(true, std::memory_order_relaxed);
}

void
Server::bindSocket()
{
    if (opts.tcpPort >= 0) {
        listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        fatalIf(listenFd < 0, std::string("serve: socket(): ") +
                                  std::strerror(errno));
        const int one = 1;
        ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<std::uint16_t>(opts.tcpPort));
        fatalIf(::bind(listenFd,
                       reinterpret_cast<const sockaddr *>(&addr),
                       sizeof(addr)) != 0,
                "serve: cannot bind 127.0.0.1:" +
                    std::to_string(opts.tcpPort) + ": " +
                    std::strerror(errno));
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        fatalIf(::getsockname(listenFd,
                              reinterpret_cast<sockaddr *>(&bound),
                              &len) != 0,
                std::string("serve: getsockname(): ") +
                    std::strerror(errno));
        boundTcpPort = ntohs(bound.sin_port);
    } else {
        fatalIf(opts.socketPath.empty(),
                "serve: a socket path or --tcp port is required");
        sockaddr_un addr{};
        fatalIf(opts.socketPath.size() >= sizeof(addr.sun_path),
                "serve: socket path '" + opts.socketPath +
                    "' is too long for sockaddr_un");
        listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        fatalIf(listenFd < 0, std::string("serve: socket(): ") +
                                  std::strerror(errno));
        ::unlink(opts.socketPath.c_str());
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        fatalIf(::bind(listenFd,
                       reinterpret_cast<const sockaddr *>(&addr),
                       sizeof(addr)) != 0,
                "serve: cannot bind '" + opts.socketPath +
                    "': " + std::strerror(errno));
    }
    fatalIf(::listen(listenFd, 64) != 0,
            std::string("serve: listen(): ") + std::strerror(errno));
}

void
Server::start()
{
    panicIf(started, "serve: start() called twice");

    if (opts.checkRegistry) {
        LintOptions lint;
        lint.params = opts.lintParams;
        lint.runGrammar = opts.fullLint;
        lint.runOracle = opts.fullLint;
        lint.runStreams = opts.fullLint;
        lint.runCompress = opts.fullLint;
        // The quick gate keeps the static passes (spec, body,
        // contract, overflow, capacity, thread-safety, protocol) —
        // they cost milliseconds; only the tile sweeps gate on
        // fullLint. A daemon whose own protocol surface drifted from
        // its documentation refuses to start just like one whose
        // schedule model is wrong.
        const ProtocolSurface surface = collectServeProtocolSurface();
        lint.protocol = &surface;
        const LintReport report = runLint(lint);
        fatalIf(!report.ok(),
                "serve: refusing to start, the format registry failed "
                "the schedule contract check:\n" +
                    report.toString());
        inform("serve: registry lint passed (" +
                std::to_string(report.warningCount()) + " warnings)");
    }

    if (opts.observability) {
        FlightRecorder::global().setCapacity(
            opts.flightRecorderCapacity);
        if (!SpanCollector::global().enabled()) {
            SpanCollector::global().setEnabled(true);
            observingSpans = true;
        }
    }

    pool = std::make_unique<ThreadPool>(opts.workers);
    bindSocket();
    started = true;
    acceptor = std::thread([this] { acceptorLoop(); });

    if (opts.tcpPort >= 0) {
        inform("serve: listening on 127.0.0.1:" +
                std::to_string(boundTcpPort));
    } else {
        inform("serve: listening on " + opts.socketPath);
    }
}

bool
Server::accepting() const
{
    const std::lock_guard<std::mutex> lock(admitMutex);
    return started && !draining;
}

Server::Admit
Server::tryAdmit()
{
    const std::lock_guard<std::mutex> lock(admitMutex);
    if (draining)
        return Admit::Draining;
    if (inflight >= opts.queueCapacity)
        return Admit::Full;
    ++inflight;
    return Admit::Ok;
}

void
Server::releaseAdmission()
{
    std::lock_guard<std::mutex> lock(admitMutex);
    panicIf(inflight == 0, "serve: admission released twice");
    --inflight;
    if (inflight == 0)
        idleCv.notify_all();
}

void
Server::beginShutdown()
{
    {
        const std::lock_guard<std::mutex> lock(admitMutex);
        if (draining)
            return;
        draining = true;
    }
    drainCv.notify_all();
    idleCv.notify_all();
    inform("serve: draining (in-flight requests will finish)");
}

void
Server::sendLine(const std::shared_ptr<Conn> &conn,
                 const std::string &line)
{
    if (!conn->open.load(std::memory_order_relaxed))
        return;
    std::string framed = line;
    framed.push_back('\n');
    const MutexLock lock(conn->writeMutex);
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n =
            ::send(conn->fd, framed.data() + sent, framed.size() - sent,
                   MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            // The client went away; the reader thread will see EOF and
            // retire the connection.
            conn->open.store(false, std::memory_order_relaxed);
            return;
        }
        sent += static_cast<std::size_t>(n);
    }
}

void
Server::reapFinishedReaders()
{
    std::vector<std::thread> joinable;
    {
        const MutexLock lock(connsMutex);
        for (std::uint64_t id : finishedReaders) {
            auto it = readers.find(id);
            if (it != readers.end()) {
                joinable.push_back(std::move(it->second));
                readers.erase(it);
            }
            conns.erase(id);
        }
        finishedReaders.clear();
    }
    for (std::thread &t : joinable)
        t.join();
}

void
Server::acceptorLoop()
{
    for (;;) {
        if (signalShutdown.load(std::memory_order_relaxed))
            beginShutdown();
        {
            const std::lock_guard<std::mutex> lock(admitMutex);
            if (draining)
                break;
        }
        pollfd pfd{};
        pfd.fd = listenFd;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 100);
        reapFinishedReaders();
        if (ready <= 0)
            continue;
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Conn>(fd);
        *connections += 1;
        const MutexLock lock(connsMutex);
        const std::uint64_t id = nextConnId++;
        conns.emplace(id, conn);
        readers.emplace(id, std::thread([this, id, conn] {
                            readerLoop(id, conn);
                        }));
    }
}

void
Server::readerLoop(std::uint64_t connId, std::shared_ptr<Conn> conn)
{
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        conn->rxBuffer.append(buf, static_cast<std::size_t>(n));
        std::size_t pos;
        while ((pos = conn->rxBuffer.find('\n')) != std::string::npos) {
            std::string line = conn->rxBuffer.substr(0, pos);
            conn->rxBuffer.erase(0, pos + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.find_first_not_of(" \t") == std::string::npos)
                continue;
            handleLine(conn, line);
        }
    }
    conn->open.store(false, std::memory_order_relaxed);
    const MutexLock lock(connsMutex);
    finishedReaders.push_back(connId);
}

void
Server::handleLine(const std::shared_ptr<Conn> &conn,
                   const std::string &line)
{
    const std::uint64_t receiptUs = nowUs();
    ServeRequest request;
    std::string parseError;
    RequestParseError why;
    if (!parseRequest(line, request, parseError, why)) {
        *badLines += 1;
        switch (why) {
          case RequestParseError::MalformedJson:
            *badLinesMalformed += 1;
            break;
          case RequestParseError::UnknownOp:
            *badLinesUnknownOp += 1;
            break;
          default:
            *badLinesOther += 1;
            break;
        }
        if (opts.observability) {
            FlightRecorder::global().record(
                "{\"type\": \"bad_line\", \"reason\": " +
                jsonStr(requestParseErrorName(why)) +
                ", \"receipt_us\": " + std::to_string(receiptUs) + "}");
        }
        sendLine(conn, errorResponse(0, "", serve_error::badRequest,
                                     parseError));
        return;
    }

    // Assign the request's trace identity up front: the rejection wide
    // events and the eventual serve.request span share one trace, and
    // a client-supplied trace id is adopted so the caller's client
    // span becomes the parent of everything the server records.
    std::uint64_t requestSpanId = 0;
    if (opts.observability && SpanCollector::global().enabled()) {
        if (!request.trace.valid())
            request.trace.traceId = newTraceId();
        requestSpanId = newSpanId();
    }

    switch (tryAdmit()) {
      case Admit::Full:
        *statsFor(request.endpoint).rejected += 1;
        recordWideEvent(request, serve_error::queueFull, receiptUs,
                        receiptUs, nowUs(), 0, 0, 0, 0, RequestObs{});
        sendLine(conn,
                 errorResponse(request.id,
                               endpointName(request.endpoint),
                               serve_error::queueFull,
                               "admission queue is full (capacity " +
                                   std::to_string(opts.queueCapacity) +
                                   "); retry later",
                               request.trace.traceId));
        return;
      case Admit::Draining:
        *statsFor(request.endpoint).rejected += 1;
        recordWideEvent(request, serve_error::shuttingDown, receiptUs,
                        receiptUs, nowUs(), 0, 0, 0, 0, RequestObs{});
        sendLine(conn,
                 errorResponse(request.id,
                               endpointName(request.endpoint),
                               serve_error::shuttingDown,
                               "server is draining",
                               request.trace.traceId));
        return;
      case Admit::Ok:
        break;
    }

    *statsFor(request.endpoint).accepted += 1;
    // The shared_ptr keeps the fd alive until the handler is done with
    // it even if the client disconnects mid-request. On a one-lane
    // pool submit() runs inline right here, which serializes requests
    // per connection but keeps cross-connection concurrency.
    pool->submit([this, conn, request = std::move(request), receiptUs,
                  requestSpanId]() mutable {
        runRequest(conn, std::move(request), receiptUs, requestSpanId);
    });
}

void
Server::runRequest(std::shared_ptr<Conn> conn, ServeRequest request,
                   std::uint64_t receiptUs,
                   std::uint64_t requestSpanId)
{
    EndpointStats &stats = statsFor(request.endpoint);
    const std::uint64_t startUs = nowUs();
    const EncodeCache::Stats cacheBefore = EncodeCache::global().stats();
    const CompressTotals compressBefore = compressTotals();

    const bool observe = requestSpanId != 0;
    if (observe) {
        // The queue span covers receipt -> handler start; it is a
        // child of the serve.request span recorded below.
        SpanCollector::global().record({request.trace.traceId,
                                        newSpanId(), requestSpanId,
                                        "serve.queue", "serve",
                                        receiptUs, startUs});
    }

    std::uint64_t token = 0;
    {
        const MutexLock lock(inflightMutex);
        token = nextReqToken++;
        inflightReqs.emplace(
            token, InflightEntry{request.endpoint, request.id, startUs});
    }

    double timeoutMs = request.timeoutMs > 0 ? request.timeoutMs
                                             : opts.defaultTimeoutMs;
    std::function<bool()> deadlineHit;
    if (timeoutMs > 0) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(
                static_cast<std::int64_t>(timeoutMs * 1000.0));
        deadlineHit = [deadline] {
            return std::chrono::steady_clock::now() >= deadline;
        };
    }

    std::string response;
    std::string outcome = "ok";
    RequestObs obs;
    {
        // Everything the handler does — the serve.handler span, the
        // study phases, any pool fan-out — parents under the
        // serve.request span through the thread-local context.
        const TraceContextScope scope(
            observe ? TraceContext{request.trace.traceId, requestSpanId}
                    : TraceContext{});
        const ScopedSpan handler("serve.handler", "serve");
        try {
            response = okResponse(request,
                                  dispatch(request, deadlineHit, obs));
            *stats.completed += 1;
        } catch (const CancelledError &e) {
            outcome = std::string(serve_error::deadlineExceeded);
            response = errorResponse(request.id,
                                     endpointName(request.endpoint),
                                     serve_error::deadlineExceeded,
                                     e.what(), request.trace.traceId);
            *stats.errors += 1;
        } catch (const FatalError &e) {
            outcome = std::string(serve_error::badRequest);
            response = errorResponse(
                request.id, endpointName(request.endpoint),
                serve_error::badRequest, e.what(),
                request.trace.traceId);
            *stats.errors += 1;
        } catch (const std::exception &e) {
            outcome = std::string(serve_error::internal);
            response = errorResponse(
                request.id, endpointName(request.endpoint),
                serve_error::internal, e.what(),
                request.trace.traceId);
            *stats.errors += 1;
        }
    }

    // Attribute cache activity to the endpoint. Deltas from a shared
    // cache are approximate when requests overlap, but per-endpoint
    // hit *rates* remain meaningful because the mix is attributed
    // proportionally over many requests.
    const EncodeCache::Stats cacheAfter = EncodeCache::global().stats();
    const auto cacheHits = cacheAfter.hits - cacheBefore.hits;
    const auto cacheMisses = cacheAfter.misses - cacheBefore.misses;
    // Second-stage compression time attributed to this request; the
    // same approximate-under-overlap caveat as the cache deltas.
    const std::uint64_t compressUs =
        (compressTotals().nanos - compressBefore.nanos) / 1000;
    *stats.cacheHits += static_cast<double>(cacheHits);
    *stats.cacheMisses += static_cast<double>(cacheMisses);

    const std::uint64_t endUs = nowUs();
    stats.latencyUs->sample(static_cast<double>(endUs - startUs));
    {
        const MutexLock lock(spansMutex);
        requestSpans.push_back(
            {request.endpoint, request.id, startUs, endUs, outcome});
    }
    {
        const MutexLock lock(inflightMutex);
        inflightReqs.erase(token);
    }

    if (observe) {
        // The root (or client-parented) serve.request span spans
        // receipt to completion, covering queue wait and handler both.
        SpanCollector::global().record(
            {request.trace.traceId, requestSpanId,
             request.trace.spanId, "serve.request", "serve", receiptUs,
             endUs});
    }
    recordWideEvent(request, outcome, receiptUs, startUs, endUs,
                    timeoutMs, cacheHits, cacheMisses, compressUs,
                    obs);

    sendLine(conn, response);
    releaseAdmission();

    // The shutdown endpoint's response must reach the wire before the
    // drain can race the connection shutdown, so drain starts last.
    if (request.endpoint == Endpoint::Shutdown)
        beginShutdown();
}

void
Server::recordWideEvent(const ServeRequest &request,
                        std::string_view outcome,
                        std::uint64_t receiptUs, std::uint64_t startUs,
                        std::uint64_t endUs, double timeoutMs,
                        std::uint64_t cacheHits,
                        std::uint64_t cacheMisses,
                        std::uint64_t compressUs,
                        const RequestObs &obs)
{
    if (!opts.observability)
        return;
    WideEventInputs event;
    event.endpoint = endpointName(request.endpoint);
    event.id = request.id;
    event.traceIdHex = traceIdToHex(request.trace.traceId);
    event.outcome = outcome;
    event.receiptUs = receiptUs;
    event.queueWaitUs = startUs - receiptUs;
    event.latencyUs = endUs - startUs;
    event.deadlineBudgetMs = timeoutMs;
    event.deadlineUsedMs =
        static_cast<double>(endUs - startUs) / 1000.0;
    event.cacheHits = cacheHits;
    event.cacheMisses = cacheMisses;
    event.compressUs = compressUs;
    event.formatsSwept = obs.formatsSwept;
    FlightRecorder::global().record(buildWideEventJson(event));
}

std::string
Server::dispatch(const ServeRequest &request,
                 const std::function<bool()> &deadlineHit,
                 RequestObs &obs)
{
    const auto checkDeadline = [&deadlineHit] {
        if (deadlineHit && deadlineHit())
            throw CancelledError("request deadline exceeded");
    };
    const JsonValue &params = request.params;

    switch (request.endpoint) {
      case Endpoint::Ping:
        return "{\"pong\": true}";

      case Endpoint::Stats:
        return statsJson();

      case Endpoint::Shutdown:
        return "{\"draining\": true}";

      case Endpoint::Sleep: {
        // Test/load-gen endpoint: occupy an admission slot for a
        // controlled time, honoring the deadline like a real sweep.
        double ms = params.numberOr("ms", 100);
        fatalIf(ms < 0 || ms > 60000,
                "sleep: ms must be in [0, 60000]");
        double slept = 0;
        while (slept < ms) {
            checkDeadline();
            const double slice = std::min(5.0, ms - slept);
            std::this_thread::sleep_for(std::chrono::microseconds(
                static_cast<std::int64_t>(slice * 1000.0)));
            slept += slice;
        }
        return "{\"slept_ms\": " + jsonNum(ms) + "}";
      }

      case Endpoint::Advise: {
        const JsonValue *spec = params.find("matrix");
        fatalIf(spec == nullptr, "advise: params.matrix is required");
        const TripletMatrix matrix =
            matrixFromSpec(*spec, opts.maxMatrixDim);
        checkDeadline();
        const MatrixStats mstats = computeStats(matrix);
        const AdvisorGoal goal =
            goalFromName(params.stringOr("goal", "balanced"));
        const Recommendation rec =
            advise(mstats, goal,
                   params.boolOr("tailored_engine", false));
        std::ostringstream out;
        out << "{\"format\": " << jsonStr(formatName(rec.format))
            << ", \"partition_size\": " << rec.partitionSize
            << ", \"requires_tailored_engine\": "
            << (rec.requiresTailoredEngine ? "true" : "false")
            << ", \"goal\": " << jsonStr(goalName(goal))
            << ", \"alternatives\": [";
        for (std::size_t i = 0; i < rec.alternatives.size(); ++i) {
            if (i > 0)
                out << ", ";
            out << jsonStr(formatName(rec.alternatives[i]));
        }
        out << "], \"rationale\": " << jsonStr(rec.rationale)
            << ", \"matrix\": {\"rows\": " << mstats.rows
            << ", \"cols\": " << mstats.cols
            << ", \"nnz\": " << mstats.nnz
            << ", \"density\": " << jsonNum(mstats.density)
            << ", \"bandwidth\": " << mstats.bandwidth << "}}";
        return out.str();
      }

      case Endpoint::RunStudy: {
        const JsonValue *spec = params.find("matrix");
        fatalIf(spec == nullptr,
                "run_study: params.matrix is required");
        TripletMatrix matrix =
            matrixFromSpec(*spec, opts.maxMatrixDim);
        StudyConfig cfg;
        cfg.partitionSizes = partitionSizesFromParam(
            params.find("partition_sizes"), cfg.partitionSizes);
        cfg.formats =
            formatsFromParam(params.find("formats"), cfg.formats);
        obs.formatsSwept = cfg.formats.size();
        // One lane: the serve pool is the concurrency layer; a nested
        // per-request pool would oversubscribe and break the admission
        // queue's meaning as "concurrent work units".
        cfg.jobs = 1;
        cfg.cancelCheck = deadlineHit;
        // Optional sweep journal: completed cells of a previous
        // (killed) run of the same matrix/config are reused, not
        // re-simulated. The identity must bind before Study copies
        // the config, and to the exact workload set Study will see.
        std::size_t resumedCells = 0;
        const std::string journalPath =
            params.stringOr("journal", "");
        if (!journalPath.empty()) {
            JournalIdentity identity;
            identity.matrixHash =
                workloadSetHash({{"request", contentHashOf(matrix)}});
            if (spec->stringOr("kind", "") == "cbm")
                identity.matrixEpoch =
                    CbmReader(spec->stringOr("path", "")).epoch();
            identity.configHash =
                sweepConfigHash(cfg.partitionSizes, cfg.formats);
            cfg.journal =
                std::make_shared<SweepJournal>(journalPath, identity);
            resumedCells = cfg.journal->resumedCells();
        }
        Study study(cfg);
        study.addWorkload("request", std::move(matrix));
        const StudyResult result = study.run();

        std::ostringstream out;
        out << "{\"rows\": " << result.rows.size()
            << ", \"resumed_cells\": " << resumedCells
            << ", \"by_format\": [";
        const std::vector<FormatMetrics> agg =
            result.aggregateByFormat();
        for (std::size_t i = 0; i < agg.size(); ++i) {
            if (i > 0)
                out << ", ";
            out << "{\"format\": " << jsonStr(formatName(agg[i].format))
                << ", \"mean_sigma\": " << jsonNum(agg[i].meanSigma)
                << ", \"throughput_bps\": "
                << jsonNum(agg[i].throughput)
                << ", \"balance_ratio\": "
                << jsonNum(agg[i].balanceRatio)
                << ", \"bw_util\": "
                << jsonNum(agg[i].bandwidthUtilization)
                << ", \"total_seconds\": "
                << jsonNum(agg[i].totalSeconds)
                << ", \"dyn_power_w\": "
                << jsonNum(agg[i].dynamicPowerW) << '}';
        }
        out << ']';
        if (params.boolOr("include_rows", false)) {
            out << ", \"row_details\": [";
            for (std::size_t i = 0; i < result.rows.size(); ++i) {
                const StudyRow &row = result.rows[i];
                if (i > 0)
                    out << ", ";
                out << "{\"format\": "
                    << jsonStr(formatName(row.format))
                    << ", \"p\": " << row.partitionSize
                    << ", \"total_cycles\": " << row.totalCycles
                    << ", \"mean_sigma\": " << jsonNum(row.meanSigma)
                    << ", \"bw_util\": "
                    << jsonNum(row.bandwidthUtilization) << '}';
            }
            out << ']';
        }
        out << '}';
        return out.str();
      }

      case Endpoint::PlanFormats: {
        const JsonValue *spec = params.find("matrix");
        fatalIf(spec == nullptr,
                "plan_formats: params.matrix is required");
        const TripletMatrix matrix =
            matrixFromSpec(*spec, opts.maxMatrixDim);
        const double p = params.numberOr("partition_size", 16);
        fatalIf(p < 1 || p > 4096,
                "plan_formats: partition_size must be in [1, 4096]");
        const std::vector<FormatKind> candidates =
            formatsFromParam(params.find("formats"), paperFormats());
        obs.formatsSwept = candidates.size();
        const std::string objectiveName =
            params.stringOr("objective", "bottleneck");
        SchedulerObjective objective = SchedulerObjective::Bottleneck;
        if (objectiveName == "compute") {
            objective = SchedulerObjective::Compute;
        } else if (objectiveName == "bytes") {
            objective = SchedulerObjective::Bytes;
        } else {
            fatalIf(objectiveName != "bottleneck",
                    "plan_formats: unknown objective '" +
                        objectiveName +
                        "' (expected bottleneck|compute|bytes)");
        }
        checkDeadline();
        const Partitioning parts =
            partition(matrix, static_cast<Index>(p));
        checkDeadline();
        const FormatPlan plan =
            planFormats(parts, candidates, objective, HlsConfig(),
                        defaultRegistry(), 1);
        std::ostringstream out;
        out << "{\"tiles\": " << plan.perTile.size()
            << ", \"histogram\": {";
        bool first = true;
        for (const auto &[kind, tiles] : plan.histogram) {
            if (!first)
                out << ", ";
            first = false;
            out << jsonStr(formatName(kind)) << ": " << tiles;
        }
        out << "}}";
        return out.str();
      }

      case Endpoint::ValidateTile: {
        const JsonValue *spec = params.find("matrix");
        fatalIf(spec == nullptr,
                "validate_tile: params.matrix is required");
        const TripletMatrix matrix =
            matrixFromSpec(*spec, opts.maxMatrixDim);
        const double p = params.numberOr("partition_size", 16);
        fatalIf(p < 1 || p > 4096,
                "validate_tile: partition_size must be in [1, 4096]");
        const std::vector<FormatKind> kinds =
            formatsFromParam(params.find("formats"), paperFormats());
        obs.formatsSwept = kinds.size();
        const Partitioning parts =
            partition(matrix, static_cast<Index>(p));
        std::vector<std::string> violations;
        std::size_t checked = 0;
        for (const Tile &tile : parts.tiles) {
            checkDeadline();
            for (FormatKind kind : kinds) {
                const auto encoded =
                    encodeCached(defaultRegistry(), kind, tile);
                const GrammarReport report =
                    validateEncodedTile(*encoded);
                ++checked;
                for (const GrammarViolation &v : report.violations)
                    violations.push_back(v.toString());
            }
        }
        std::ostringstream out;
        out << "{\"tiles\": " << parts.tiles.size()
            << ", \"formats\": " << kinds.size()
            << ", \"checked\": " << checked << ", \"ok\": "
            << (violations.empty() ? "true" : "false")
            << ", \"violations\": [";
        for (std::size_t i = 0; i < violations.size(); ++i) {
            if (i > 0)
                out << ", ";
            out << jsonStr(violations[i]);
        }
        out << "]}";
        return out.str();
      }

      case Endpoint::Metrics: {
        // The exposition text rides inside the NDJSON envelope; a
        // scraper sidecar (or the CLI's --metrics) unwraps "body".
        return "{\"content_type\": "
               "\"text/plain; version=0.0.4; charset=utf-8\", "
               "\"body\": " +
               jsonStr(metricsText()) + "}";
      }

      case Endpoint::DumpFlightRec: {
        const std::string path = params.stringOr("path", "");
        const FlightRecorder &recorder = FlightRecorder::global();
        if (!path.empty()) {
            recorder.dumpToFile(path);
            std::ostringstream out;
            out << "{\"path\": " << jsonStr(path)
                << ", \"wide_events\": "
                << recorder.snapshot().size() << ", \"spans\": "
                << SpanCollector::global().snapshot().size() << '}';
            return out.str();
        }
        // No path: the dump document itself is the result.
        std::ostringstream out;
        recorder.dump(out);
        return out.str();
      }

      case Endpoint::StoreInfo: {
        const std::string path = params.stringOr("path", "");
        fatalIf(path.empty(), "store_info: params.path is required");
        const bool deep = params.boolOr("deep", false);
        const std::vector<CbmIssue> issues =
            inspectCbmFile(path, deep);
        std::ostringstream out;
        if (issues.empty()) {
            const CbmReader reader(path);
            out << "{\"valid\": true, \"deep\": "
                << (deep ? "true" : "false")
                << ", \"rows\": " << reader.rows()
                << ", \"cols\": " << reader.cols()
                << ", \"nnz\": " << reader.nnz()
                << ", \"epoch\": " << reader.epoch()
                << ", \"content_hash\": " << reader.contentHash()
                << ", \"chunk_count\": " << reader.chunkCount()
                << ", \"chunk_target_nnz\": "
                << reader.chunkTargetNnz() << ", \"issues\": []}";
            return out.str();
        }
        // A broken container is a valid answer to "inspect this
        // file", not a request error: report what the inspector saw.
        out << "{\"valid\": false, \"deep\": "
            << (deep ? "true" : "false") << ", \"issues\": [";
        for (std::size_t i = 0; i < issues.size(); ++i) {
            if (i > 0)
                out << ", ";
            out << "{\"kind\": "
                << jsonStr(cbmIssueKindName(issues[i].kind))
                << ", \"message\": " << jsonStr(issues[i].message)
                << '}';
        }
        out << "]}";
        return out.str();
      }
    }
    panic("serve: unhandled endpoint in dispatch");
}

std::string
Server::statsJson() const
{
    std::ostringstream out;
    dumpGroupsJson(out,
                   {&grp, &poolStats.group(), &cacheStats.group()});
    std::string json = out.str();
    // dumpGroupsJson ends its document with '\n'; embedded in an
    // NDJSON response that newline would split the line, so trim it.
    while (!json.empty() &&
           (json.back() == '\n' || json.back() == '\r'))
        json.pop_back();

    // Splice live load state into the document: --top reads queue
    // depth and per-request ages from here, so the stats endpoint
    // stays the one poll target.
    panicIf(json.empty() || json.back() != '}',
            "serve: stats dump is not a JSON object");
    json.pop_back();
    std::size_t depth;
    {
        const std::lock_guard<std::mutex> lock(admitMutex);
        depth = inflight;
    }
    json += ", \"queue_depth\": " + std::to_string(depth) +
            ", \"inflight\": [";
    const std::uint64_t now = nowUs();
    {
        const MutexLock lock(inflightMutex);
        bool first = true;
        for (const auto &[token, entry] : inflightReqs) {
            if (!first)
                json += ", ";
            first = false;
            json += "{\"endpoint\": " +
                    jsonStr(endpointName(entry.endpoint)) +
                    ", \"id\": " + std::to_string(entry.id) +
                    ", \"age_us\": " +
                    std::to_string(now > entry.startUs
                                       ? now - entry.startUs
                                       : 0) +
                    "}";
        }
    }
    json += "]}";
    return json;
}

std::string
Server::metricsText() const
{
    PrometheusWriter writer;
    using Series =
        std::vector<std::pair<std::vector<PrometheusLabel>, double>>;

    // Per-endpoint counters, one series per endpoint.
    const auto perEndpoint = [this](auto member) {
        Series series;
        for (std::size_t i = 0; i < allEndpoints().size(); ++i) {
            series.push_back(
                {{{"endpoint",
                   std::string(endpointName(allEndpoints()[i]))}},
                 (endpointStats[i].*member)->value()});
        }
        return series;
    };
    writer.counter("copernicus_serve_requests_accepted_total",
                   "Requests admitted, by endpoint.",
                   perEndpoint(&EndpointStats::accepted));
    writer.counter("copernicus_serve_requests_rejected_total",
                   "Requests shed (queue_full / shutting_down).",
                   perEndpoint(&EndpointStats::rejected));
    writer.counter("copernicus_serve_requests_completed_total",
                   "Requests answered ok.",
                   perEndpoint(&EndpointStats::completed));
    writer.counter("copernicus_serve_requests_errored_total",
                   "Admitted requests answered with an error.",
                   perEndpoint(&EndpointStats::errors));
    writer.counter("copernicus_serve_cache_hits_total",
                   "Encode-cache hits attributed to the endpoint.",
                   perEndpoint(&EndpointStats::cacheHits));
    writer.counter("copernicus_serve_cache_misses_total",
                   "Encode-cache misses attributed to the endpoint.",
                   perEndpoint(&EndpointStats::cacheMisses));

    writer.counter(
        "copernicus_serve_bad_lines_total",
        "Request lines that failed to parse, by reason.",
        {{{{"reason", "malformed_json"}}, badLinesMalformed->value()},
         {{{"reason", "unknown_op"}}, badLinesUnknownOp->value()},
         {{{"reason", "other"}}, badLinesOther->value()}});
    writer.counter("copernicus_serve_connections_total",
                   "Client connections accepted.",
                   {{{}, connections->value()}});

    std::size_t depth;
    {
        const std::lock_guard<std::mutex> lock(admitMutex);
        depth = inflight;
    }
    writer.gauge("copernicus_serve_queue_depth",
                 "Requests currently admitted (in flight).",
                 {{{}, static_cast<double>(depth)}});

    // Latency histograms from snapshots: the one histogram copy per
    // endpoint is the only lock a scrape shares with request threads.
    std::vector<std::pair<std::vector<PrometheusLabel>,
                          DistributionStat::Snapshot>>
        latencies;
    for (std::size_t i = 0; i < allEndpoints().size(); ++i) {
        latencies.push_back(
            {{{"endpoint",
               std::string(endpointName(allEndpoints()[i]))}},
             endpointStats[i].latencyUs->snapshot()});
    }
    writer.histogram("copernicus_serve_request_duration_seconds",
                     "Admitted-request latency.", latencies, 1e-6);

    const ThreadPool::Counters poolCounters =
        ThreadPool::globalCounters();
    writer.counter("copernicus_thread_pool_tasks_total",
                   "Pool tasks executed on any lane.",
                   {{{}, static_cast<double>(poolCounters.tasksRun)}});
    writer.counter("copernicus_thread_pool_steals_total",
                   "Tasks taken from another lane's deque.",
                   {{{}, static_cast<double>(poolCounters.steals)}});

    const EncodeCache::Stats cache = EncodeCache::global().stats();
    writer.counter("copernicus_encode_cache_hits_total",
                   "Encode-cache hits, process-wide.",
                   {{{}, static_cast<double>(cache.hits)}});
    writer.counter("copernicus_encode_cache_misses_total",
                   "Encode-cache misses, process-wide.",
                   {{{}, static_cast<double>(cache.misses)}});
    writer.gauge("copernicus_encode_cache_entries",
                 "Entries resident in the encode cache.",
                 {{{}, static_cast<double>(cache.entries)}});

    const FlightRecorder &recorder = FlightRecorder::global();
    writer.counter(
        "copernicus_flightrec_wide_events_total",
        "Wide events recorded by the flight recorder.",
        {{{}, static_cast<double>(recorder.recorded())}});
    writer.counter("copernicus_flightrec_wide_events_dropped_total",
                   "Wide events overwritten by ring wrap-around.",
                   {{{}, static_cast<double>(recorder.dropped())}});
    const SpanCollector &spanCollector = SpanCollector::global();
    writer.counter(
        "copernicus_spans_recorded_total",
        "Spans recorded by the span collector.",
        {{{}, static_cast<double>(spanCollector.recorded())}});
    writer.counter(
        "copernicus_spans_dropped_total",
        "Spans overwritten by ring wrap-around.",
        {{{}, static_cast<double>(spanCollector.dropped())}});

    return writer.text();
}

std::vector<RequestSpan>
Server::spans() const
{
    const MutexLock lock(spansMutex);
    return requestSpans;
}

void
Server::waitDrained()
{
    panicIf(!started, "serve: waitDrained() before start()");

    // 1. Park until someone (signal, shutdown endpoint, or
    //    beginShutdown()) starts the drain.
    {
        std::unique_lock<std::mutex> lock(admitMutex);
        drainCv.wait(lock, [this] { return draining; });
    }

    // 2. The acceptor exits on its next tick; no new connections.
    if (acceptor.joinable())
        acceptor.join();

    // 3. Wait for the in-flight requests to finish. Admission is
    //    closed (draining), so inflight can only fall.
    {
        std::unique_lock<std::mutex> lock(admitMutex);
        idleCv.wait(lock, [this] { return inflight == 0; });
    }

    // 4. Unblock every reader: after SHUT_RDWR their recv() returns 0
    //    and they retire. Responses already written are delivered —
    //    SHUT_RDWR does not discard sent data on AF_UNIX/loopback.
    std::map<std::uint64_t, std::thread> remaining;
    {
        const MutexLock lock(connsMutex);
        for (auto &[id, conn] : conns)
            ::shutdown(conn->fd, SHUT_RDWR);
        remaining = std::move(readers);
        readers.clear();
    }
    for (auto &[id, thread] : remaining)
        thread.join();
    {
        const MutexLock lock(connsMutex);
        conns.clear();
        finishedReaders.clear();
    }

    // 5. Drain the pool (joins its workers) before flushing artifacts
    //    so no handler can race the single-threaded writers below.
    pool.reset();

    if (!opts.statsJsonPath.empty()) {
        std::ofstream out(opts.statsJsonPath);
        fatalIf(!out, "serve: cannot open stats path '" +
                          opts.statsJsonPath + "'");
        out << statsJson() << '\n';
        inform("serve: stats written to " + opts.statsJsonPath);
    }
    if (!opts.tracePath.empty()) {
        TraceWriter writer;
        writer.beginScope("serve");
        {
            const MutexLock lock(spansMutex);
            for (const RequestSpan &span : requestSpans) {
                writer.durationEvent(endpointName(span.endpoint),
                                     "r" + std::to_string(span.id) +
                                         " " + span.outcome,
                                     span.startUs, span.endUs);
            }
        }
        if (opts.observability) {
            // The span tree rides in the same Chrome trace: one scope,
            // tracks by subsystem, and the causal edges preserved in
            // each event's args (the timeline view flattens them).
            writer.beginScope("spans");
            for (const SpanRecord &span :
                 SpanCollector::global().snapshot()) {
                writer.durationEventArgs(
                    span.track, span.name, span.startUs, span.endUs,
                    "{\"trace_id\": " + jsonStr(traceIdToHex(
                                            span.traceId)) +
                        ", \"span_id\": " +
                        jsonStr(traceIdToHex(span.spanId)) +
                        ", \"parent_span_id\": " +
                        jsonStr(traceIdToHex(span.parentSpanId)) + "}");
            }
        }
        writer.writeFile(opts.tracePath);
        inform("serve: request trace written to " + opts.tracePath);
    }
    if (!opts.flightRecPath.empty()) {
        FlightRecorder::global().dumpToFile(opts.flightRecPath);
        inform("serve: flight recorder dumped to " + opts.flightRecPath);
    }
    if (observingSpans) {
        SpanCollector::global().setEnabled(false);
        observingSpans = false;
    }

    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
    if (opts.tcpPort < 0 && !opts.socketPath.empty())
        ::unlink(opts.socketPath.c_str());
    started = false;
    inform("serve: drain complete");
}

} // namespace copernicus
