/**
 * @file
 * The serve protocol's documented surface, plus the collector that
 * snapshots the implemented surface for conformance lint.
 *
 * Three hand-maintained tables — endpoints, wide-event fields, metric
 * families — are the protocol documentation of record: README.md's
 * serve section renders them, operators build dashboards against them,
 * and the analyzer's protocol pass (COP090-093) diffs them against
 * what the implementation actually exposes. Keeping the tables here,
 * next to the code they describe, makes "update the docs" a compile-
 * adjacent edit the lint gate enforces instead of a wiki chore.
 *
 * collectServeProtocolSurface() fills an analysis::ProtocolSurface
 * with both halves: the documented tables verbatim, and the
 * implemented side interrogated from the real artifacts — the
 * endpoint registry, a sample wide event built by the same
 * buildWideEventJson() the server records through, and the metric
 * families parsed out of a throwaway Server's Prometheus exposition.
 * The lint CLIs and the daemon's startup gate inject that surface
 * into LintOptions::protocol.
 */

#ifndef COPERNICUS_SERVE_PROTOCOL_DOC_HH
#define COPERNICUS_SERVE_PROTOCOL_DOC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/protocol_surface.hh"

namespace copernicus {

/** Everything one request's wide event records. */
struct WideEventInputs
{
    std::string endpoint; ///< wire name ("run_study")
    std::uint64_t id = 0;
    std::string traceIdHex;
    std::string outcome = "ok";
    std::uint64_t receiptUs = 0;
    std::uint64_t queueWaitUs = 0;
    std::uint64_t latencyUs = 0;
    double deadlineBudgetMs = 0;
    double deadlineUsedMs = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t compressUs = 0;
    std::uint64_t formatsSwept = 0;
    bool memoHit = false;          ///< served from the result memo
    std::string protocol = "ndjson"; ///< wire dialect ("binary")
};

/**
 * Serialize one wide event. This is the *only* producer of the
 * flight-recorder request record — the server records through it and
 * the protocol collector parses a sample of it, so the lint pass
 * checks the real field set, not a copy.
 */
std::string buildWideEventJson(const WideEventInputs &inputs);

/** Documented request endpoints (wire names). */
const std::vector<std::string> &documentedEndpoints();

/** Documented wide-event fields. */
const std::vector<std::string> &documentedWideEventFields();

/** Documented Prometheus metric families. */
const std::vector<std::string> &documentedMetricFamilies();

/**
 * Snapshot the implemented + documented surface for the protocol
 * lint pass. Constructs a throwaway (never started) Server to scrape
 * the metric exposition; cheap and socket-free.
 */
ProtocolSurface collectServeProtocolSurface();

} // namespace copernicus

#endif // COPERNICUS_SERVE_PROTOCOL_DOC_HH
