/**
 * @file
 * Second-stage stream compression: per-stream-class codec selection
 * over an encoded tile's typed streams.
 *
 * Copernicus charges every byte crossing the memory interface against
 * bandwidth utilization (Section 4.2). The first stage is the sparse
 * format itself; this module adds the optional second stage: each
 * typed stream (typed_stream.hh) is byte-compressed before the DDR
 * transfer model sees it. Index, offset and value streams have very
 * different statistics — offsets are near-monotone and highly
 * repetitive, indices are small-alphabet, values are mostly
 * incompressible floats — so the codec is chosen *per stream class*
 * (SMASH and Qin et al., PAPERS.md), with an automatic
 * try-both-pick-smaller mode and a STORE passthrough whenever
 * compression loses.
 *
 * Accounting contract: a STORE stream ships the raw serialized bytes
 * unchanged, so storedBytes() <= rawBytes() always, and disabling the
 * second stage is exactly the all-STORE policy. Compressed streams
 * pay a fixed per-stream container header (family + raw size) so the
 * model never undercounts framing.
 */

#ifndef COPERNICUS_COMPRESS_SECOND_STAGE_HH
#define COPERNICUS_COMPRESS_SECOND_STAGE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "compress/stream_compressor.hh"
#include "formats/encoded_tile.hh"
#include "formats/typed_stream.hh"

namespace copernicus {

/** Codec choice for one stream class. */
enum class SecondStageChoice : std::uint8_t
{
    Auto, ///< try every family, keep the smallest (or STORE)
    Store,
    Lz4,
    Lzf,
};

/**
 * Per-stream-class selection policy. Defaults to Auto everywhere —
 * the measured-smallest choice per stream.
 */
struct CompressionPolicy
{
    SecondStageChoice value = SecondStageChoice::Auto;
    SecondStageChoice index = SecondStageChoice::Auto;
    SecondStageChoice offset = SecondStageChoice::Auto;

    SecondStageChoice forClass(StreamClass cls) const;
};

/**
 * Fixed container header charged to every non-STORE stream: one
 * family byte plus the 32-bit raw size the decoder needs.
 */
constexpr Bytes streamHeaderBytes = 5;

/** One stream after second-stage selection. */
struct CompressedStream
{
    StreamClass cls = StreamClass::Value;
    const char *name = "";
    CompressionFamily family = CompressionFamily::Store;

    /** Serialized (pre-compression) payload size. */
    Bytes rawBytes = 0;

    /** Compressed payload size (== rawBytes for STORE). */
    Bytes payloadBytes = 0;

    /**
     * Bytes that cross the memory interface: the payload plus the
     * container header for compressed streams; exactly the raw bytes
     * for STORE.
     */
    Bytes
    storedBytes() const
    {
        return family == CompressionFamily::Store
                   ? rawBytes
                   : payloadBytes + streamHeaderBytes;
    }

    /** Compressed image; kept only when requested (tests, benches). */
    std::vector<std::byte> payload;
};

/** Second-stage result for one encoded tile. */
struct TileCompression
{
    std::vector<CompressedStream> streams;

    Bytes rawBytes() const;
    Bytes storedBytes() const;

    /** Per-stream stored sizes, for the AXI streamline model. */
    std::vector<Bytes> storedStreamBytes() const;
};

/**
 * Run second-stage selection over @p tile's typed streams.
 *
 * Every compressed candidate is roundtrip-verified (decompressed and
 * byte-compared against the raw payload) before it may be selected;
 * a candidate that fails verification is discarded in favor of STORE
 * — a storage format that cannot prove it preserves the stream never
 * wins. With @p keepPayloads the winning compressed images are
 * retained on the result for inspection.
 */
TileCompression compressTile(const EncodedTile &tile,
                             const CompressionPolicy &policy = {},
                             bool keepPayloads = false);

/** Monotonic process-wide second-stage counters (wide events). */
struct CompressTotals
{
    std::uint64_t streams = 0;
    std::uint64_t rawBytes = 0;
    std::uint64_t storedBytes = 0;
    std::uint64_t nanos = 0;
};

/** Snapshot of the counters compressTile() maintains. */
CompressTotals compressTotals();

} // namespace copernicus

#endif // COPERNICUS_COMPRESS_SECOND_STAGE_HH
