#include "compress/stream_compressor.hh"

#include "compress/lz4_block.hh"
#include "compress/lzf_block.hh"

namespace copernicus {

namespace {

class Lz4StreamCompressor final : public StreamCompressor
{
  public:
    CompressionFamily family() const override
    {
        return CompressionFamily::Lz4;
    }

    std::size_t
    compress(std::span<const std::byte> src,
             std::vector<std::byte> &out) const override
    {
        return lz4Compress(src, out);
    }

    bool
    decompress(std::span<const std::byte> src,
               std::span<std::byte> dst) const override
    {
        return lz4Decompress(src, dst);
    }
};

class LzfStreamCompressor final : public StreamCompressor
{
  public:
    CompressionFamily family() const override
    {
        return CompressionFamily::Lzf;
    }

    std::size_t
    compress(std::span<const std::byte> src,
             std::vector<std::byte> &out) const override
    {
        return lzfCompress(src, out);
    }

    bool
    decompress(std::span<const std::byte> src,
               std::span<std::byte> dst) const override
    {
        return lzfDecompress(src, dst);
    }
};

} // namespace

const char *
compressionFamilyName(CompressionFamily family)
{
    switch (family) {
    case CompressionFamily::Store:
        return "store";
    case CompressionFamily::Lz4:
        return "lz4";
    case CompressionFamily::Lzf:
        return "lzf";
    }
    return "unknown";
}

const StreamCompressor &
lz4Compressor()
{
    static const Lz4StreamCompressor compressor;
    return compressor;
}

const StreamCompressor &
lzfCompressor()
{
    static const LzfStreamCompressor compressor;
    return compressor;
}

const StreamCompressor *
compressorFor(CompressionFamily family)
{
    switch (family) {
    case CompressionFamily::Store:
        return nullptr;
    case CompressionFamily::Lz4:
        return &lz4Compressor();
    case CompressionFamily::Lzf:
        return &lzfCompressor();
    }
    return nullptr;
}

} // namespace copernicus
