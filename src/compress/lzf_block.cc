#include "compress/lzf_block.hh"

#include <array>
#include <cstdint>
#include <cstring>

namespace copernicus {

namespace {

constexpr std::size_t minMatch = 3;
constexpr std::size_t maxMatch = 264; // 7 + 255 + 2
constexpr std::size_t maxOffset = 8192;
constexpr std::size_t maxLiteralRun = 32;

constexpr unsigned hashBits = 12;

std::uint32_t
read24(const std::uint8_t *p)
{
    return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
           (std::uint32_t(p[2]) << 16);
}

std::uint32_t
hash3(std::uint32_t sequence)
{
    return (sequence * 2654435761u) >> (32 - hashBits);
}

/** Stale-safe single-probe table; see lz4_block.cc for the scheme. */
std::uint32_t *
matchTable()
{
    thread_local std::array<std::uint32_t, 1u << hashBits> table{};
    return table.data();
}

void
flushLiterals(std::vector<std::byte> &out, const std::uint8_t *literals,
              std::size_t len)
{
    while (len != 0) {
        const std::size_t run =
            len < maxLiteralRun ? len : maxLiteralRun;
        out.push_back(std::byte(run - 1));
        const std::size_t at = out.size();
        out.resize(at + run);
        std::memcpy(out.data() + at, literals, run);
        literals += run;
        len -= run;
    }
}

void
emitMatch(std::vector<std::byte> &out, std::size_t offset,
          std::size_t len)
{
    const std::size_t stored = len - 2;
    const std::size_t off = offset - 1;
    if (stored < 7) {
        out.push_back(std::byte((stored << 5) | (off >> 8)));
    } else {
        out.push_back(std::byte((7u << 5) | (off >> 8)));
        out.push_back(std::byte(stored - 7));
    }
    out.push_back(std::byte(off & 0xff));
}

} // namespace

std::size_t
lzfCompress(std::span<const std::byte> src, std::vector<std::byte> &out)
{
    const std::size_t begin = out.size();
    const std::size_t n = src.size();
    if (n == 0)
        return 0;
    const auto *in = reinterpret_cast<const std::uint8_t *>(src.data());
    out.reserve(begin + n + n / maxLiteralRun + 4);

    std::size_t anchor = 0;
    if (n >= minMatch) {
        std::uint32_t *table = matchTable();
        const std::size_t searchEnd = n - minMatch;
        std::size_t i = 0;
        while (i <= searchEnd) {
            const std::uint32_t seq = read24(in + i);
            const std::uint32_t h = hash3(seq);
            const std::uint32_t cand = table[h];
            table[h] = static_cast<std::uint32_t>(i) + 1;
            if (cand == 0 || cand - 1 >= i ||
                i - (cand - 1) > maxOffset ||
                read24(in + (cand - 1)) != seq) {
                ++i;
                continue;
            }
            const std::size_t match = cand - 1;
            std::size_t len = minMatch;
            while (len < maxMatch && i + len < n &&
                   in[match + len] == in[i + len])
                ++len;
            flushLiterals(out, in + anchor, i - anchor);
            emitMatch(out, i - match, len);
            i += len;
            anchor = i;
        }
    }
    flushLiterals(out, in + anchor, n - anchor);
    return out.size() - begin;
}

bool
lzfDecompress(std::span<const std::byte> src, std::span<std::byte> dst)
{
    const auto *in = reinterpret_cast<const std::uint8_t *>(src.data());
    const auto *inEnd = in + src.size();
    auto *out = reinterpret_cast<std::uint8_t *>(dst.data());
    auto *const outBegin = out;
    auto *const outEnd = out + dst.size();

    while (in < inEnd) {
        const std::uint8_t ctrl = *in++;
        if (ctrl < 0x20) {
            const std::size_t run = std::size_t(ctrl) + 1;
            if (run > std::size_t(inEnd - in) ||
                run > std::size_t(outEnd - out))
                return false;
            std::memcpy(out, in, run);
            in += run;
            out += run;
            continue;
        }
        std::size_t len = ctrl >> 5;
        if (len == 7) {
            if (in >= inEnd)
                return false;
            len += *in++;
        }
        len += 2;
        if (in >= inEnd)
            return false;
        const std::size_t offset =
            ((std::size_t(ctrl) & 0x1f) << 8 | *in++) + 1;
        if (offset > std::size_t(out - outBegin) ||
            len > std::size_t(outEnd - out))
            return false;
        const std::uint8_t *from = out - offset;
        for (std::size_t k = 0; k < len; ++k)
            out[k] = from[k];
        out += len;
    }
    return out == outEnd;
}

} // namespace copernicus
