/**
 * @file
 * LZF-class block compressor (in-repo, zero external dependencies).
 *
 * Implements the classic LZF control-byte wire format — simpler and
 * cheaper than LZ4, with a shorter minimum match (3 vs 4) and a
 * smaller window (8 KiB vs 64 KiB), which makes it the better pick
 * for short, structured metadata streams where LZ4's framing
 * overhead dominates:
 *
 *   ctrl < 0x20           literal run of (ctrl + 1) bytes, 1..32
 *   ctrl >= 0x20          match: length = (ctrl >> 5) + 2, 3..8;
 *                         a length code of 7 adds one extension byte
 *                         (total 3..264). Offset is 13 bits: the low
 *                         5 control bits are the high bits, one more
 *                         byte the low bits, stored as offset - 1
 *                         (window 1..8192).
 *
 * decompress() validates every run and match against the declared
 * raw size and fails loudly on corrupt blocks.
 */

#ifndef COPERNICUS_COMPRESS_LZF_BLOCK_HH
#define COPERNICUS_COMPRESS_LZF_BLOCK_HH

#include <cstddef>
#include <span>
#include <vector>

namespace copernicus {

/**
 * Append the LZF block image of @p src to @p out.
 *
 * Never fails: incompressible input degrades to literal runs with
 * ~3% framing overhead. Returns the number of bytes appended.
 */
std::size_t lzfCompress(std::span<const std::byte> src,
                        std::vector<std::byte> &out);

/**
 * Decode an LZF block into exactly @p dst.size() bytes.
 *
 * @return true on success; false if the block is malformed or does
 * not decode to exactly the destination size.
 */
bool lzfDecompress(std::span<const std::byte> src,
                   std::span<std::byte> dst);

} // namespace copernicus

#endif // COPERNICUS_COMPRESS_LZF_BLOCK_HH
