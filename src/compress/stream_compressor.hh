/**
 * @file
 * StreamCompressor: the roundtrip-verified byte-compressor interface.
 *
 * Two in-repo block-compressor families implement it — an LZ4-class
 * fast match-finder (lz4_block.hh) and an LZF-class fallback
 * (lzf_block.hh) — both zero-external-dependency, both exact: for
 * every input, decompress(compress(x)) == x byte-for-byte, and the
 * test suite fuzzes that contract across random, banded,
 * catalog-derived and adversarial streams.
 *
 * The interface is deliberately block-oriented (one shot per stream,
 * no streaming state): encoded-tile streams are small and the
 * second-stage compressor runs once per stream per tile.
 */

#ifndef COPERNICUS_COMPRESS_STREAM_COMPRESSOR_HH
#define COPERNICUS_COMPRESS_STREAM_COMPRESSOR_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace copernicus {

/** Which byte-compressor produced a stored stream. */
enum class CompressionFamily : std::uint8_t
{
    Store = 0, ///< raw passthrough (compression lost or disabled)
    Lz4 = 1,
    Lzf = 2,
};

/** Human-readable family label ("store", "lz4", "lzf"). */
const char *compressionFamilyName(CompressionFamily family);

/** One block-compressor family. */
class StreamCompressor
{
  public:
    virtual ~StreamCompressor() = default;

    virtual CompressionFamily family() const = 0;

    /**
     * Append the compressed image of @p src to @p out.
     * @return the number of bytes appended. Never fails:
     * incompressible input degrades to a framed literal image.
     */
    virtual std::size_t compress(std::span<const std::byte> src,
                                 std::vector<std::byte> &out) const = 0;

    /**
     * Decode a compressed image into exactly @p dst.size() bytes.
     * @return true on success, false on a malformed block.
     */
    virtual bool decompress(std::span<const std::byte> src,
                            std::span<std::byte> dst) const = 0;
};

/** The process-wide LZ4-family compressor. */
const StreamCompressor &lz4Compressor();

/** The process-wide LZF-family compressor. */
const StreamCompressor &lzfCompressor();

/**
 * Compressor for @p family, or nullptr for Store (which has no codec:
 * stored bytes are the raw bytes).
 */
const StreamCompressor *compressorFor(CompressionFamily family);

} // namespace copernicus

#endif // COPERNICUS_COMPRESS_STREAM_COMPRESSOR_HH
