/**
 * @file
 * LZ4-class block compressor (in-repo, zero external dependencies).
 *
 * Implements the LZ4 block wire format: a sequence of tokens, each a
 * literal run followed by a match against the already-decoded window.
 *
 *   token byte   high nibble = literal length (15 = extension bytes
 *                follow, each 255 until a byte < 255 closes the sum)
 *                low nibble  = match length - 4, same 15/255 extension
 *   literals     raw bytes
 *   offset       2-byte little-endian distance back into the window,
 *                1..65535 (0 is invalid)
 *
 * The block ends with a final literal-only token (its match nibble is
 * unused). Matches are found with a single-probe hash table over
 * 4-byte windows — the "fast" LZ4 strategy: greedy, no lazy matching,
 * one attempt per position. That is the right trade for the encode
 * hot path, where compression runs once per tile stream.
 *
 * End-of-block constraints follow the LZ4 spec (the last 5 bytes are
 * always literals; a match never starts within the last 12 bytes), so
 * the decoder's copy loops need no per-byte bounds checks on
 * well-formed input. decompress() still validates against the
 * declared raw size and fails loudly on corrupt blocks — it is used
 * by the roundtrip-verification layer, not just by benchmarks.
 */

#ifndef COPERNICUS_COMPRESS_LZ4_BLOCK_HH
#define COPERNICUS_COMPRESS_LZ4_BLOCK_HH

#include <cstddef>
#include <span>
#include <vector>

namespace copernicus {

/**
 * Append the LZ4 block image of @p src to @p out.
 *
 * Never fails: incompressible input degrades to one literal run with
 * ~0.4% framing overhead. Returns the number of bytes appended.
 */
std::size_t lz4Compress(std::span<const std::byte> src,
                        std::vector<std::byte> &out);

/**
 * Decode an LZ4 block into exactly @p dst.size() bytes.
 *
 * @return true on success; false if the block is malformed or does
 * not decode to exactly the destination size (nothing is assumed
 * about @p dst contents on failure).
 */
bool lz4Decompress(std::span<const std::byte> src,
                   std::span<std::byte> dst);

} // namespace copernicus

#endif // COPERNICUS_COMPRESS_LZ4_BLOCK_HH
