#include "compress/second_stage.hh"

#include <atomic>
#include <chrono>
#include <cstring>

#include "common/arena.hh"
#include "trace/profile.hh"

namespace copernicus {

namespace {

struct Counters
{
    std::atomic<std::uint64_t> streams{0};
    std::atomic<std::uint64_t> rawBytes{0};
    std::atomic<std::uint64_t> storedBytes{0};
    std::atomic<std::uint64_t> nanos{0};
};

Counters &
counters()
{
    static Counters c;
    return c;
}

/**
 * Compress @p raw with @p compressor and verify the roundtrip into
 * arena scratch. Returns false (candidate discarded) if the image is
 * malformed or fails the byte comparison.
 */
bool
tryCandidate(const StreamCompressor &compressor,
             std::span<const std::byte> raw, std::vector<std::byte> &out)
{
    out.clear();
    compressor.compress(raw, out);
    Arena &arena = encodeArena();
    const ArenaScope scope(arena);
    std::byte *check = arena.alloc<std::byte>(raw.size());
    if (!compressor.decompress(out, {check, raw.size()}))
        return false;
    return raw.empty() ||
           std::memcmp(check, raw.data(), raw.size()) == 0;
}

} // namespace

SecondStageChoice
CompressionPolicy::forClass(StreamClass cls) const
{
    switch (cls) {
    case StreamClass::Value:
        return value;
    case StreamClass::Index:
        return index;
    case StreamClass::Offset:
        return offset;
    }
    return SecondStageChoice::Store;
}

Bytes
TileCompression::rawBytes() const
{
    Bytes total = 0;
    for (const CompressedStream &s : streams)
        total += s.rawBytes;
    return total;
}

Bytes
TileCompression::storedBytes() const
{
    Bytes total = 0;
    for (const CompressedStream &s : streams)
        total += s.storedBytes();
    return total;
}

std::vector<Bytes>
TileCompression::storedStreamBytes() const
{
    std::vector<Bytes> sizes;
    sizes.reserve(streams.size());
    for (const CompressedStream &s : streams)
        sizes.push_back(s.storedBytes());
    return sizes;
}

TileCompression
compressTile(const EncodedTile &tile, const CompressionPolicy &policy,
             bool keepPayloads)
{
    const auto start = std::chrono::steady_clock::now();
    const ScopedTimer timer("compress.tile");

    const std::vector<TypedStream> typed = tile.typedStreams();
    TileCompression result;
    result.streams.reserve(typed.size());

    std::vector<std::byte> candidate;
    std::vector<std::byte> best;
    for (const TypedStream &stream : typed) {
        CompressedStream out;
        out.cls = stream.cls;
        out.name = stream.name;
        out.rawBytes = stream.size();
        out.family = CompressionFamily::Store;
        out.payloadBytes = out.rawBytes;

        const SecondStageChoice choice = policy.forClass(stream.cls);
        const bool tryLz4 = choice == SecondStageChoice::Auto ||
                            choice == SecondStageChoice::Lz4;
        const bool tryLzf = choice == SecondStageChoice::Auto ||
                            choice == SecondStageChoice::Lzf;

        best.clear();
        // A candidate wins only if it beats the current stored size —
        // which starts at the STORE cost, so compression that loses
        // (after the container header) is rejected by construction.
        for (const StreamCompressor *compressor :
             {tryLz4 ? &lz4Compressor() : nullptr,
              tryLzf ? &lzfCompressor() : nullptr}) {
            if (compressor == nullptr)
                continue;
            if (!tryCandidate(*compressor, stream.bytes, candidate))
                continue;
            if (Bytes(candidate.size()) + streamHeaderBytes <
                out.storedBytes()) {
                out.family = compressor->family();
                out.payloadBytes = Bytes(candidate.size());
                best.swap(candidate);
            }
        }
        if (keepPayloads)
            out.payload = out.family == CompressionFamily::Store
                              ? stream.bytes
                              : best;
        result.streams.push_back(std::move(out));
    }

    const auto elapsed = std::chrono::steady_clock::now() - start;
    Counters &c = counters();
    c.streams.fetch_add(result.streams.size(),
                        std::memory_order_relaxed);
    c.rawBytes.fetch_add(result.rawBytes(), std::memory_order_relaxed);
    c.storedBytes.fetch_add(result.storedBytes(),
                            std::memory_order_relaxed);
    c.nanos.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count(),
        std::memory_order_relaxed);
    return result;
}

CompressTotals
compressTotals()
{
    const Counters &c = counters();
    CompressTotals t;
    t.streams = c.streams.load(std::memory_order_relaxed);
    t.rawBytes = c.rawBytes.load(std::memory_order_relaxed);
    t.storedBytes = c.storedBytes.load(std::memory_order_relaxed);
    t.nanos = c.nanos.load(std::memory_order_relaxed);
    return t;
}

} // namespace copernicus
