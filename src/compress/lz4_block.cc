#include "compress/lz4_block.hh"

#include <array>
#include <cstdint>
#include <cstring>

namespace copernicus {

namespace {

constexpr std::size_t minMatch = 4;
/** A match never starts within the last 12 bytes (LZ4 spec). */
constexpr std::size_t mfLimit = 12;
/** The last 5 bytes of a block are always literals (LZ4 spec). */
constexpr std::size_t lastLiterals = 5;
constexpr std::size_t maxOffset = 65535;

constexpr unsigned hashBits = 13;

std::uint32_t
read32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint32_t
hash4(std::uint32_t sequence)
{
    // Fibonacci hashing over the 4-byte window (Knuth multiplier).
    return (sequence * 2654435761u) >> (32 - hashBits);
}

void
writeLength(std::vector<std::byte> &out, std::size_t rest)
{
    // 15-nibble extension: 255-bytes until a closing byte < 255.
    while (rest >= 255) {
        out.push_back(std::byte{255});
        rest -= 255;
    }
    out.push_back(std::byte(rest));
}

void
emitSequence(std::vector<std::byte> &out, const std::uint8_t *literals,
             std::size_t literalLen, std::size_t offset,
             std::size_t matchLen)
{
    const std::size_t litNibble = literalLen < 15 ? literalLen : 15;
    std::size_t matchNibble = 0;
    if (matchLen != 0) {
        const std::size_t stored = matchLen - minMatch;
        matchNibble = stored < 15 ? stored : 15;
    }
    out.push_back(std::byte((litNibble << 4) | matchNibble));
    if (litNibble == 15)
        writeLength(out, literalLen - 15);
    const std::size_t at = out.size();
    out.resize(at + literalLen);
    if (literalLen != 0)
        std::memcpy(out.data() + at, literals, literalLen);
    if (matchLen == 0)
        return; // final literal-only token
    out.push_back(std::byte(offset & 0xff));
    out.push_back(std::byte(offset >> 8));
    if (matchNibble == 15)
        writeLength(out, matchLen - minMatch - 15);
}

/**
 * Single-probe match table, thread-confined and never cleared: every
 * candidate is validated against the current input (position below
 * the cursor, offset in range, 4 bytes equal) before use, so stale
 * entries from earlier blocks can only miss, not corrupt.
 */
std::uint32_t *
matchTable()
{
    thread_local std::array<std::uint32_t, 1u << hashBits> table{};
    return table.data();
}

} // namespace

std::size_t
lz4Compress(std::span<const std::byte> src, std::vector<std::byte> &out)
{
    const std::size_t begin = out.size();
    const std::size_t n = src.size();
    if (n == 0)
        return 0;
    const auto *in = reinterpret_cast<const std::uint8_t *>(src.data());
    out.reserve(begin + n + n / 255 + 16);

    std::size_t anchor = 0;
    if (n > mfLimit) {
        std::uint32_t *table = matchTable();
        const std::size_t matchLimit = n - lastLiterals;
        const std::size_t searchEnd = n - mfLimit;
        std::size_t i = 0;
        while (i <= searchEnd) {
            const std::uint32_t seq = read32(in + i);
            const std::uint32_t h = hash4(seq);
            const std::uint32_t cand = table[h];
            table[h] = static_cast<std::uint32_t>(i) + 1;
            if (cand == 0 || cand - 1 >= i || i - (cand - 1) > maxOffset ||
                read32(in + (cand - 1)) != seq) {
                ++i;
                continue;
            }
            std::size_t match = cand - 1;
            // Extend forward to the literal tail, backward into the
            // pending literals.
            std::size_t len = minMatch;
            while (i + len < matchLimit && in[match + len] == in[i + len])
                ++len;
            while (i > anchor && match > 0 && in[i - 1] == in[match - 1]) {
                --i;
                --match;
                ++len;
            }
            emitSequence(out, in + anchor, i - anchor, i - match, len);
            i += len;
            anchor = i;
        }
    }
    emitSequence(out, in + anchor, n - anchor, 0, 0);
    return out.size() - begin;
}

bool
lz4Decompress(std::span<const std::byte> src, std::span<std::byte> dst)
{
    const auto *in = reinterpret_cast<const std::uint8_t *>(src.data());
    const auto *inEnd = in + src.size();
    auto *out = reinterpret_cast<std::uint8_t *>(dst.data());
    auto *const outBegin = out;
    auto *const outEnd = out + dst.size();

    while (in < inEnd) {
        const std::uint8_t token = *in++;

        std::size_t literalLen = token >> 4;
        if (literalLen == 15) {
            std::uint8_t b;
            do {
                if (in >= inEnd)
                    return false;
                b = *in++;
                literalLen += b;
            } while (b == 255);
        }
        if (literalLen > std::size_t(inEnd - in) ||
            literalLen > std::size_t(outEnd - out))
            return false;
        std::memcpy(out, in, literalLen);
        in += literalLen;
        out += literalLen;
        if (in == inEnd)
            break; // final token carries no match

        if (inEnd - in < 2)
            return false;
        const std::size_t offset = in[0] | (std::size_t(in[1]) << 8);
        in += 2;
        if (offset == 0 || offset > std::size_t(out - outBegin))
            return false;

        std::size_t matchLen = (token & 15) + minMatch;
        if ((token & 15) == 15) {
            std::uint8_t b;
            do {
                if (in >= inEnd)
                    return false;
                b = *in++;
                matchLen += b;
            } while (b == 255);
        }
        if (matchLen > std::size_t(outEnd - out))
            return false;
        // Byte-wise copy: overlapping matches (offset < length)
        // replicate the window, which is the point.
        const std::uint8_t *from = out - offset;
        for (std::size_t k = 0; k < matchLen; ++k)
            out[k] = from[k];
        out += matchLen;
    }
    return out == outEnd;
}

} // namespace copernicus
