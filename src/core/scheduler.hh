/**
 * @file
 * Adaptive per-partition format selection.
 *
 * The paper characterizes one format for the whole matrix; its
 * insights (Section 8) immediately suggest the next step an architect
 * would take — pick the format per partition, since a matrix's tiles
 * differ wildly in density and structure (Figure 3). The scheduler
 * scores each candidate format on each non-zero tile with the same
 * models the characterization uses (AXI transfer cycles, decompressor
 * cycles) and picks the per-tile argmin of the selected objective; the
 * mixed pipeline then streams the result.
 */

#ifndef COPERNICUS_CORE_SCHEDULER_HH
#define COPERNICUS_CORE_SCHEDULER_HH

#include <map>
#include <vector>

#include "pipeline/stream_pipeline.hh"

namespace copernicus {

/** What the per-tile choice minimizes/maximizes. */
enum class SchedulerObjective
{
    /** Minimize the tile's pipeline bottleneck (max of stages). */
    Bottleneck,
    /** Minimize the tile's compute cycles. */
    Compute,
    /** Minimize bytes on the wire (maximize bandwidth utilization). */
    Bytes,
};

/** Outcome of a per-tile selection. */
struct FormatPlan
{
    /** Chosen format per non-zero tile, streaming order. */
    std::vector<FormatKind> perTile;

    /** How many tiles chose each format. */
    std::map<FormatKind, std::size_t> histogram;
};

/**
 * Choose the best format per tile.
 *
 * Tiles are scored independently (via the shared encode cache) and the
 * per-tile argmin is written to an indexed slot, so the plan is
 * bit-identical at any jobs setting.
 *
 * @param parts Partitioning of the operand matrix.
 * @param candidates Formats the hardware implements decoders for.
 * @param objective What to minimize.
 * @param config Platform parameters.
 * @param registry Codec source.
 * @param jobs Execution lanes: 0 = auto (COPERNICUS_JOBS / --jobs /
 *        hardware), 1 = serial; > 1 fans out over the process-wide
 *        ThreadPool::global() (whose size caps actual parallelism).
 */
FormatPlan planFormats(const Partitioning &parts,
                       const std::vector<FormatKind> &candidates,
                       SchedulerObjective objective =
                           SchedulerObjective::Bottleneck,
                       const HlsConfig &config = HlsConfig(),
                       const FormatRegistry &registry =
                           defaultRegistry(),
                       unsigned jobs = 0);

/**
 * Plan then stream: the adaptive counterpart of runPipeline.
 */
PipelineResult runAdaptive(const Partitioning &parts,
                           const std::vector<FormatKind> &candidates,
                           SchedulerObjective objective =
                               SchedulerObjective::Bottleneck,
                           const HlsConfig &config = HlsConfig(),
                           const FormatRegistry &registry =
                               defaultRegistry(),
                           unsigned jobs = 0);

} // namespace copernicus

#endif // COPERNICUS_CORE_SCHEDULER_HH
