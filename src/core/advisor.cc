#include "core/advisor.hh"

#include "common/status.hh"

namespace copernicus {

std::string_view
goalName(AdvisorGoal goal)
{
    switch (goal) {
      case AdvisorGoal::Latency: return "latency";
      case AdvisorGoal::Throughput: return "throughput";
      case AdvisorGoal::Power: return "power";
      case AdvisorGoal::Bandwidth: return "bandwidth utilization";
      case AdvisorGoal::Balanced: return "streaming balance";
    }
    panic("goalName: unknown goal");
}

Recommendation
advise(const MatrixStats &stats, AdvisorGoal goal, bool tailoredEngine)
{
    Recommendation rec;

    const bool banded =
        stats.nnz > 0 &&
        stats.bandwidth <= std::max<Index>(32, stats.rows / 100) &&
        stats.diagonalFraction > 0.05;
    const bool dense_ml = stats.density > 0.1;

    if (dense_ml) {
        // Section 8: for density > 0.1 (pruned NN inference), stay at
        // small partitions; block formats amortize the metadata.
        rec.partitionSize = stats.density > 0.3 ? 8 : 16;
        switch (goal) {
          case AdvisorGoal::Latency:
          case AdvisorGoal::Balanced:
            rec.format = FormatKind::BCSR;
            rec.alternatives = {FormatKind::LIL, FormatKind::ELL};
            rec.rationale =
                "density > 0.1: block CSR keeps the dot engine busy and "
                "its metadata per non-zero is lowest; the paper warns "
                "against partitioning finer than 8x8/16x16 here";
            break;
          case AdvisorGoal::Throughput:
            rec.format = FormatKind::BCSR;
            rec.alternatives = {FormatKind::LIL};
            rec.rationale =
                "BCSR and LIL reach the highest throughput for less "
                "sparse matrices (Fig. 9), BCSR at lower power";
            break;
          case AdvisorGoal::Power:
            rec.format = FormatKind::COO;
            rec.alternatives = {FormatKind::CSR};
            rec.rationale = "COO consumes the least dynamic power "
                            "(Table 2) at acceptable latency";
            break;
          case AdvisorGoal::Bandwidth:
            rec.format = FormatKind::LIL;
            rec.alternatives = {FormatKind::ELL};
            rec.rationale =
                "for dense-ish matrices LIL's padded lists carry little "
                "padding, so its useful-byte ratio leads (Fig. 10)";
            break;
        }
        return rec;
    }

    if (banded) {
        if (goal == AdvisorGoal::Bandwidth && tailoredEngine) {
            rec.format = FormatKind::DIA;
            rec.partitionSize = 32;
            rec.alternatives = {FormatKind::ELL, FormatKind::LIL};
            rec.requiresTailoredEngine = true;
            rec.rationale =
                "DIA near-perfectly utilizes memory bandwidth for "
                "diagonal/band structure, and better as the partition "
                "grows (Fig. 11) -- but only with a compute engine "
                "tailored to the format, otherwise decompression "
                "becomes the bottleneck (Section 8)";
            return rec;
        }
        switch (goal) {
          case AdvisorGoal::Latency:
          case AdvisorGoal::Throughput:
            rec.format = FormatKind::ELL;
            rec.partitionSize = 32;
            rec.alternatives = {FormatKind::LIL, FormatKind::COO};
            rec.rationale =
                "for structured matrices LIL and ELL are the fastest; "
                "ELL wins for wider bands and consumes less power "
                "(Section 6.4)";
            break;
          case AdvisorGoal::Power:
            rec.format = FormatKind::ELL;
            rec.partitionSize = 32;
            rec.alternatives = {FormatKind::COO};
            rec.rationale = "ELL at 32x32 is among the lowest dynamic "
                            "power while staying fast on bands";
            break;
          case AdvisorGoal::Bandwidth:
            rec.format = FormatKind::LIL;
            rec.partitionSize = 32;
            rec.alternatives = {FormatKind::ELL, FormatKind::COO};
            rec.rationale =
                "without a tailored engine, generic formats beat DIA "
                "even on band matrices (Section 8); LIL covers wide "
                "bands with the best useful-byte ratio";
            break;
          case AdvisorGoal::Balanced:
            rec.format = FormatKind::COO;
            rec.partitionSize = 16;
            rec.alternatives = {FormatKind::LIL};
            rec.rationale = "COO offers a reasonable balance across "
                            "band widths (Section 6.2)";
            break;
        }
        return rec;
    }

    // Extremely sparse, unstructured (scientific/graph).
    switch (goal) {
      case AdvisorGoal::Latency:
        rec.format = FormatKind::COO;
        rec.alternatives = {FormatKind::BCSR};
        rec.rationale =
            "for SuiteSparse-like matrices COO is the fastest in total "
            "latency and cheapest in dynamic power (Section 6.4); a "
            "generic format tolerates irregular non-zero distributions";
        break;
      case AdvisorGoal::Throughput:
        rec.format = FormatKind::BCSR;
        rec.alternatives = {FormatKind::LIL, FormatKind::DIA};
        rec.rationale = "BCSR, LIL and DIA reach the highest throughput "
                        "(Fig. 9); BCSR does it at lower power";
        break;
      case AdvisorGoal::Power:
        rec.format = FormatKind::COO;
        rec.alternatives = {FormatKind::CSR};
        rec.rationale = "COO consumes the least dynamic power for "
                        "SuiteSparse matrices (Section 6.4)";
        break;
      case AdvisorGoal::Bandwidth:
        rec.format = FormatKind::LIL;
        rec.alternatives = {FormatKind::COO, FormatKind::ELL};
        rec.rationale =
            "LIL covers extreme sparseness and diverse random matrices "
            "with the best bandwidth utilization while keeping balance "
            "at larger partitions (Section 6.3)";
        break;
      case AdvisorGoal::Balanced:
        rec.format = FormatKind::COO;
        rec.alternatives = {FormatKind::LIL, FormatKind::BCSR};
        rec.rationale = "COO offers a reasonable balance for various "
                        "densities (Section 6.2)";
        break;
    }
    return rec;
}

} // namespace copernicus
