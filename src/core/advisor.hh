/**
 * @file
 * FormatAdvisor: Section 8's insights as an executable recommendation.
 *
 * Given a matrix's structural statistics and an optimization goal, the
 * advisor applies the paper's conclusions: generic formats (COO) beat
 * pattern-specific ones (DIA) on generic hardware even for band
 * matrices; DIA only pays off when the compute engine is co-designed
 * with it; LIL/BCSR trade a little speed for power and resources; dense
 * matrices (density > 0.1, e.g. pruned neural networks) should stick to
 * small partitions and block formats.
 */

#ifndef COPERNICUS_CORE_ADVISOR_HH
#define COPERNICUS_CORE_ADVISOR_HH

#include <string>
#include <vector>

#include "formats/format_kind.hh"
#include "matrix/stats.hh"

namespace copernicus {

/** What the user wants to optimize for. */
enum class AdvisorGoal
{
    Latency,      ///< lowest end-to-end SpMV time
    Throughput,   ///< highest sustained bytes/s
    Power,        ///< lowest dynamic power
    Bandwidth,    ///< highest memory-bandwidth utilization
    Balanced,     ///< memory/compute balance closest to 1
};

/** A recommendation plus its paper-backed rationale. */
struct Recommendation
{
    FormatKind format = FormatKind::COO;
    Index partitionSize = 16;
    std::vector<FormatKind> alternatives;
    std::string rationale;

    /**
     * True when the pick only wins on hardware whose compute engine is
     * tailored to the format (the paper's DIA caveat).
     */
    bool requiresTailoredEngine = false;
};

/**
 * Recommend a format for @p stats under @p goal.
 *
 * @param stats Structural statistics of the workload matrix.
 * @param goal Optimization target.
 * @param tailoredEngine Whether the deployment can co-design the
 *        compute engine with the format (enables DIA for bands).
 */
Recommendation advise(const MatrixStats &stats, AdvisorGoal goal,
                      bool tailoredEngine = false);

/** Printable goal name. */
std::string_view goalName(AdvisorGoal goal);

} // namespace copernicus

#endif // COPERNICUS_CORE_ADVISOR_HH
