#include "core/study.hh"

#include <atomic>
#include <fstream>
#include <optional>

#include "analysis/table_writer.hh"
#include "common/status.hh"
#include "common/thread_pool.hh"
#include "common/trace_context.hh"
#include "compress/second_stage.hh"
#include "store/container.hh"
#include "store/sweep_journal.hh"
#include "trace/profile.hh"
#include "trace/span.hh"

namespace copernicus {

std::vector<StudyRow>
StudyResult::atPartition(Index p) const
{
    std::vector<StudyRow> selected;
    for (const auto &row : rows)
        if (row.partitionSize == p)
            selected.push_back(row);
    return selected;
}

void
StudyResult::writeCsv(std::ostream &out) const
{
    TableWriter table({"workload", "format", "p", "sigma",
                       "total_cycles", "seconds", "memory_cycles",
                       "compute_cycles", "balance_ratio",
                       "throughput_bps", "bw_util", "bytes",
                       "partitions", "bram18k", "ff_k", "lut_k",
                       "dyn_power_w", "static_power_w"});
    for (const auto &row : rows) {
        table.addRow({row.workload, std::string(formatName(row.format)),
                      std::to_string(row.partitionSize),
                      TableWriter::num(row.meanSigma, 8),
                      std::to_string(row.totalCycles),
                      TableWriter::num(row.seconds, 8),
                      std::to_string(row.memoryCycles),
                      std::to_string(row.computeCycles),
                      TableWriter::num(row.balanceRatio, 8),
                      TableWriter::num(row.throughput, 8),
                      TableWriter::num(row.bandwidthUtilization, 8),
                      std::to_string(row.totalBytes),
                      std::to_string(row.partitions),
                      TableWriter::num(row.resources.bram18k, 6),
                      TableWriter::num(row.resources.ffK, 6),
                      TableWriter::num(row.resources.lutK, 6),
                      TableWriter::num(row.power.dynamicW(), 6),
                      TableWriter::num(row.power.staticW, 6)});
    }
    table.writeCsv(out);
}

void
StudyResult::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    fatalIf(!out, "StudyResult: cannot open '" + path + "'");
    writeCsv(out);
}

std::vector<FormatMetrics>
StudyResult::aggregateByFormat() const
{
    std::vector<FormatMetrics> metrics;
    std::vector<std::size_t> counts;
    std::vector<Bytes> bytes;
    for (const auto &row : rows) {
        FormatMetrics *slot = nullptr;
        std::size_t i = 0;
        for (; i < metrics.size(); ++i) {
            if (metrics[i].format == row.format) {
                slot = &metrics[i];
                break;
            }
        }
        if (slot == nullptr) {
            metrics.push_back({});
            metrics.back().format = row.format;
            counts.push_back(0);
            bytes.push_back(0);
            slot = &metrics.back();
            i = metrics.size() - 1;
        }
        slot->meanSigma += row.meanSigma;
        slot->totalSeconds += row.seconds;
        slot->balanceRatio += row.balanceRatio;
        slot->bandwidthUtilization += row.bandwidthUtilization;
        slot->dynamicPowerW += row.power.dynamicW();
        bytes[i] += row.totalBytes;
        ++counts[i];
    }
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        const auto n = static_cast<double>(counts[i]);
        metrics[i].meanSigma /= n;
        metrics[i].balanceRatio /= n;
        metrics[i].bandwidthUtilization /= n;
        metrics[i].dynamicPowerW /= n;
        metrics[i].throughput =
            metrics[i].totalSeconds > 0
                ? static_cast<double>(bytes[i]) / metrics[i].totalSeconds
                : 0.0;
    }
    return metrics;
}

Study::Study(StudyConfig config)
    : cfg(std::move(config)), registry(cfg.formatParams)
{
    fatalIf(cfg.partitionSizes.empty(),
            "Study needs at least one partition size");
    fatalIf(cfg.formats.empty(), "Study needs at least one format");
}

void
Study::addWorkload(const std::string &name, TripletMatrix matrix)
{
    for (const auto &[existing, unused] : matrices)
        fatalIf(existing == name,
                "Study workload '" + name + "' already registered");
    panicIf(!matrix.finalized(),
            "Study workloads must be finalized matrices");
    matrices.emplace_back(name, std::move(matrix));
}

std::uint64_t
Study::workloadSetIdentity() const
{
    std::vector<std::pair<std::string, std::uint64_t>> hashes;
    hashes.reserve(matrices.size());
    for (const auto &[name, matrix] : matrices)
        hashes.emplace_back(name, contentHashOf(matrix));
    return workloadSetHash(hashes);
}

StudyRow
Study::makeRow(const std::string &workload, const Partitioning &parts,
               FormatKind kind, TraceSink *sink) const
{
    const ScopedTimer timer("study.run.pipeline");
    // One span per design point: at jobs > 1 the pool's context
    // propagation parents it under the span that issued the
    // parallelFor, so encodes attach to their request's study.run.
    const ScopedSpan span("study.encode", "study");
    const PipelineResult pipe = runPipeline(parts, kind, cfg.hls,
                                            registry, sink);
    StudyRow row;
    row.workload = workload;
    row.format = kind;
    row.partitionSize = parts.partitionSize;
    row.meanSigma = pipe.meanSigma;
    row.totalCycles = pipe.totalCycles;
    row.seconds = pipe.seconds;
    row.memoryCycles = pipe.totalMemoryCycles;
    row.computeCycles = pipe.totalComputeCycles;
    row.balanceRatio = pipe.balanceRatio;
    row.throughput = pipe.throughputBytesPerSec;
    row.bandwidthUtilization = pipe.bandwidthUtilization;
    row.totalBytes = pipe.totalBytes;
    row.partitions = pipe.partitions.size();
    row.resources = estimateResources(kind, parts.partitionSize);
    row.power = estimatePower(kind, parts.partitionSize);
    return row;
}

const Partitioning &
Study::partitionsFor(std::size_t w, Index p) const
{
    PartitionSlot *slot;
    {
        const MutexLock lock(*cacheMutex);
        slot = &cache[std::make_pair(w, p)];
    }
    // The slot is built outside the map lock so distinct keys
    // partition concurrently (run() fans the combinations out on the
    // pool); call_once serialises only same-key racers. std::map
    // nodes are stable and entries are never erased, so the reference
    // outlives both locks.
    std::call_once(slot->once, [&] {
        const ScopedTimer part_timer("study.run.partition");
        const ScopedSpan part_span("study.partition", "study");
        slot->parts = partition(matrices[w].second, p);
    });
    return slot->parts;
}

StudyResult
Study::run() const
{
    const ScopedTimer timer("study.run");
    const ScopedSpan span("study.run", "study");
    const CompressTotals compressBefore = compressTotals();

    const unsigned jobs = effectiveJobs(cfg.jobs);
    std::optional<ThreadPool> pool;
    if (jobs > 1)
        pool.emplace(jobs);

    // Build every (workload, partition size) combination first. At
    // jobs > 1 the combinations fan out on the pool — partitionsFor()
    // constructs per slot, so distinct keys partition concurrently —
    // and the design-point enumeration below then only reads cached
    // references.
    std::vector<std::pair<std::size_t, Index>> combos;
    combos.reserve(matrices.size() * cfg.partitionSizes.size());
    for (std::size_t w = 0; w < matrices.size(); ++w)
        for (Index p : cfg.partitionSizes)
            combos.emplace_back(w, p);
    if (pool && combos.size() > 1) {
        pool->parallelFor(combos.size(), [&](std::size_t i) {
            partitionsFor(combos[i].first, combos[i].second);
        });
    }

    struct Point
    {
        std::size_t w;
        const Partitioning *parts;
        FormatKind kind;
    };
    std::vector<Point> points;
    points.reserve(combos.size() * cfg.formats.size());
    for (const auto &[w, p] : combos) {
        const Partitioning &parts = partitionsFor(w, p);
        for (FormatKind kind : cfg.formats)
            points.push_back({w, &parts, kind});
    }

    StudyResult result;
    result.rows.resize(points.size());
    if (pool && points.size() > 1) {
        // Each design point is pure and writes only its own row, so
        // completion order cannot change the result; tracing is forced
        // off because interleaved per-partition timelines would be
        // meaningless (worker lanes cover the parallel case).
        // Cancellation is polled at the same boundary as the serial
        // path: a worker about to start a design point sees the flag
        // and skips, and the caller rethrows once the loop drains.
        std::atomic<bool> cancelled{false};
        pool->parallelFor(points.size(), [&](std::size_t i) {
            if (cancelled.load(std::memory_order_relaxed))
                return;
            if (cfg.cancelCheck && cfg.cancelCheck()) {
                cancelled.store(true, std::memory_order_relaxed);
                return;
            }
            const Point &pt = points[i];
            const std::string &workload = matrices[pt.w].first;
            if (cfg.journal) {
                const StudyRow *done = cfg.journal->completed(
                    workload, pt.kind, pt.parts->partitionSize);
                if (done != nullptr) {
                    result.rows[i] = *done;
                    return;
                }
            }
            result.rows[i] = makeRow(workload, *pt.parts, pt.kind,
                                     &noTraceSink());
            if (cfg.journal)
                cfg.journal->record(result.rows[i]);
        });
        if (cancelled.load(std::memory_order_relaxed))
            throw CancelledError("Study::run cancelled between design "
                                 "points");
    } else {
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (cfg.cancelCheck && cfg.cancelCheck()) {
                throw CancelledError(
                    "Study::run cancelled between design points");
            }
            const Point &pt = points[i];
            const std::string &workload = matrices[pt.w].first;
            if (cfg.journal) {
                const StudyRow *done = cfg.journal->completed(
                    workload, pt.kind, pt.parts->partitionSize);
                if (done != nullptr) {
                    result.rows[i] = *done;
                    continue;
                }
            }
            result.rows[i] = makeRow(workload, *pt.parts, pt.kind,
                                     nullptr);
            if (cfg.journal)
                cfg.journal->record(result.rows[i]);
        }
    }

    if (cfg.hls.secondStageCompression &&
        SpanCollector::global().enabled()) {
        // Per-tile compress timings are far too fine-grained for the
        // span ring; report one synthetic span whose duration is the
        // summed second-stage time across every design point, parented
        // under study.run so traces show where the compression cost
        // sits.
        const std::uint64_t nanos =
            compressTotals().nanos - compressBefore.nanos;
        const TraceContext ctx = currentTraceContext();
        SpanRecord rec;
        rec.traceId = ctx.valid() ? ctx.traceId : newTraceId();
        rec.spanId = newSpanId();
        rec.parentSpanId = ctx.valid() ? ctx.spanId : 0;
        rec.name = "study.compress";
        rec.track = "study";
        rec.endUs = observeNowUs();
        const std::uint64_t micros = nanos / 1000;
        rec.startUs = rec.endUs > micros ? rec.endUs - micros : 0;
        SpanCollector::global().record(std::move(rec));
    }
    return result;
}

StudyRow
Study::evaluate(const std::string &workload, FormatKind kind,
                Index partitionSize) const
{
    for (std::size_t w = 0; w < matrices.size(); ++w) {
        if (matrices[w].first != workload)
            continue;
        return makeRow(workload, partitionsFor(w, partitionSize), kind,
                       nullptr);
    }
    fatal("Study: unknown workload '" + workload + "'");
}

} // namespace copernicus
