/**
 * @file
 * Study: the top-level characterization driver.
 *
 * A Study owns a set of named workloads and evaluates every requested
 * (format, partition size) pair over each of them, producing the rows
 * behind the paper's figures: per-design-point sigma, latency split,
 * balance ratio, throughput, bandwidth utilization, resources and
 * power. The bench binaries are thin wrappers that configure a Study
 * and print one table each.
 */

#ifndef COPERNICUS_CORE_STUDY_HH
#define COPERNICUS_CORE_STUDY_HH

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/summary.hh"
#include "common/lock_order.hh"
#include "common/mutex.hh"
#include "fpga/power_model.hh"
#include "fpga/resource_model.hh"
#include "hls/hls_config.hh"
#include "matrix/triplet_matrix.hh"
#include "pipeline/stream_pipeline.hh"

namespace copernicus {

class SweepJournal;

/** What a Study evaluates. */
struct StudyConfig
{
    /** Partition sizes to sweep (paper: 8, 16, 32). */
    std::vector<Index> partitionSizes = {8, 16, 32};

    /** Formats to sweep (paper's eight by default). */
    std::vector<FormatKind> formats = paperFormats();

    /** Platform parameters. */
    HlsConfig hls;

    /** Codec hyperparameters. */
    FormatParams formatParams;

    /**
     * Execution lanes for run(): 0 = auto (COPERNICUS_JOBS / --jobs
     * override / hardware concurrency), 1 = serial, N = a pool of N
     * lanes for this sweep. Design points are pure and land in indexed
     * row slots, so the rows are bit-identical at any setting
     * (asserted by tests/test_parallel_study.cc). Per-partition
     * pipeline *traces* are only emitted on serial runs; parallel runs
     * report worker lanes instead.
     */
    unsigned jobs = 0;

    /**
     * Cooperative cancellation hook for long sweeps. run() calls it at
     * partition boundaries — before each design point starts streaming
     * its partitioning, never mid-partition — and throws CancelledError
     * as soon as it returns true; rows already evaluated are discarded.
     * The serve daemon wires its per-request deadline through this.
     * Must be thread-safe at jobs > 1 (workers poll it concurrently);
     * empty (the default) means never cancelled.
     */
    std::function<bool()> cancelCheck;

    /**
     * Optional checkpoint journal (store/sweep_journal.hh). When set,
     * run() skips design points the journal already holds — restoring
     * their rows verbatim — and records each freshly evaluated row as
     * soon as it finishes, so a killed sweep resumes mid-flight with
     * byte-identical output. The caller binds the journal to the
     * workload set and config (JournalIdentity) before handing it
     * over; Study trusts that binding.
     */
    std::shared_ptr<SweepJournal> journal;
};

/** One evaluated design point over one workload. */
struct StudyRow
{
    std::string workload;
    FormatKind format = FormatKind::Dense;
    Index partitionSize = 0;

    /** Mean per-partition sigma (Eq. 1). */
    double meanSigma = 0;

    /** End-to-end cycles / seconds for the whole matrix. */
    Cycles totalCycles = 0;
    double seconds = 0;

    /** Stage totals. */
    Cycles memoryCycles = 0;
    Cycles computeCycles = 0;

    /** Mean per-partition memory/compute ratio. */
    double balanceRatio = 0;

    /** Bytes per second. */
    double throughput = 0;

    /** Useful/total transferred bytes. */
    double bandwidthUtilization = 0;

    /** Bytes transferred (data + metadata). */
    Bytes totalBytes = 0;

    /** Non-zero partitions processed. */
    std::size_t partitions = 0;

    /** Resource and power estimates for this design point. */
    ResourceEstimate resources;
    PowerEstimate power;
};

/** All rows of a finished study. */
struct StudyResult
{
    std::vector<StudyRow> rows;

    /** Rows restricted to one partition size. */
    std::vector<StudyRow> atPartition(Index p) const;

    /**
     * Write every row as CSV (workload, format, p, sigma, cycles,
     * seconds, memory/compute cycles, balance, throughput, bw-util,
     * bytes, partitions, resources, power).
     */
    void writeCsv(std::ostream &out) const;

    /** Write CSV to @p path. */
    void writeCsvFile(const std::string &path) const;

    /**
     * Aggregate to one FormatMetrics per format (used by Fig. 14):
     * sigma/balance/bandwidth are averaged across rows, seconds and
     * bytes summed, throughput recomputed from the sums, power
     * averaged.
     */
    std::vector<FormatMetrics> aggregateByFormat() const;
};

/** Named-workload characterization driver. */
class Study
{
  public:
    explicit Study(StudyConfig config = StudyConfig());

    /** Register a workload; names must be unique. */
    void addWorkload(const std::string &name, TripletMatrix matrix);

    /** Number of registered workloads. */
    std::size_t workloads() const { return matrices.size(); }

    /**
     * Combined identity hash of the registered workload set — each
     * workload's name folded with its triplet content hash, in
     * registration order. This is the matrixHash a SweepJournal's
     * JournalIdentity binds to.
     */
    std::uint64_t workloadSetIdentity() const;

    /** Evaluate every (workload, format, partition size) triple. */
    StudyResult run() const;

    /** Evaluate one triple (workload must be registered). */
    StudyRow evaluate(const std::string &workload, FormatKind kind,
                      Index partitionSize) const;

    const StudyConfig &config() const { return cfg; }

  private:
    StudyRow makeRow(const std::string &workload,
                     const Partitioning &parts, FormatKind kind,
                     TraceSink *sink) const;

    /**
     * The partitioning of workload @p w at size @p p, built on first
     * use. Thread-safe, and callers with *different* keys build
     * concurrently: the map mutex only guards slot creation, while a
     * per-slot once_flag serialises same-key racers. The returned
     * reference stays valid for the Study's lifetime (entries are
     * never dropped; std::map nodes do not move).
     */
    const Partitioning &partitionsFor(std::size_t w, Index p) const;

    /** One partitioning-cache slot: built at most once. */
    struct PartitionSlot
    {
        std::once_flag once;
        Partitioning parts;
    };

    StudyConfig cfg;
    FormatRegistry registry;
    std::vector<std::pair<std::string, TripletMatrix>> matrices;
    /** Partitioning cache keyed by (workload index, partition size). */
    mutable std::map<std::pair<std::size_t, Index>, PartitionSlot> cache;
    /** Behind a pointer so Study stays movable (benches move Studies). */
    mutable std::unique_ptr<Mutex> cacheMutex =
        std::make_unique<Mutex>(lock_rank::studyCache);
};

} // namespace copernicus

#endif // COPERNICUS_CORE_STUDY_HH
