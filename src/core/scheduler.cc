#include "core/scheduler.hh"

#include <limits>

#include "common/status.hh"
#include "hls/axi.hh"
#include "hls/decompressor.hh"
#include "trace/profile.hh"

namespace copernicus {

FormatPlan
planFormats(const Partitioning &parts,
            const std::vector<FormatKind> &candidates,
            SchedulerObjective objective, const HlsConfig &config,
            const FormatRegistry &registry)
{
    fatalIf(candidates.empty(),
            "planFormats needs at least one candidate format");

    const ScopedTimer timer("scheduler.plan");
    FormatPlan plan;
    plan.perTile.reserve(parts.tiles.size());
    const Bytes out_bytes = Bytes(parts.partitionSize) * valueBytes;

    for (const Tile &tile : parts.tiles) {
        FormatKind best = candidates.front();
        auto best_score = std::numeric_limits<double>::infinity();
        for (FormatKind kind : candidates) {
            const auto encoded = registry.codec(kind).encode(tile);
            double score = 0;
            switch (objective) {
              case SchedulerObjective::Bottleneck: {
                const auto decomp = simulateDecompression(*encoded,
                                                          config);
                const Cycles memory =
                    transferCycles(encoded->streams(), config);
                const Cycles compute = computeCycles(decomp, config);
                const Cycles write = writebackCycles(out_bytes, config);
                score = static_cast<double>(
                    std::max(memory, std::max(compute, write)));
                break;
              }
              case SchedulerObjective::Compute: {
                const auto decomp = simulateDecompression(*encoded,
                                                          config);
                score = static_cast<double>(
                    computeCycles(decomp, config));
                break;
              }
              case SchedulerObjective::Bytes:
                score = static_cast<double>(encoded->totalBytes());
                break;
            }
            if (score < best_score) {
                best_score = score;
                best = kind;
            }
        }
        plan.perTile.push_back(best);
        ++plan.histogram[best];
    }
    return plan;
}

PipelineResult
runAdaptive(const Partitioning &parts,
            const std::vector<FormatKind> &candidates,
            SchedulerObjective objective, const HlsConfig &config,
            const FormatRegistry &registry)
{
    const FormatPlan plan = planFormats(parts, candidates, objective,
                                        config, registry);
    return runPipelineMixed(parts, plan.perTile, config, registry);
}

} // namespace copernicus
