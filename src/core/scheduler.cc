#include "core/scheduler.hh"

#include <limits>

#include "common/status.hh"
#include "common/thread_pool.hh"
#include "formats/encode_cache.hh"
#include "formats/validate.hh"
#include "hls/axi.hh"
#include "hls/decompressor.hh"
#include "trace/profile.hh"

namespace copernicus {

namespace {

/** Argmin of the objective over the candidates, for one tile. */
FormatKind
chooseFormat(const Tile &tile, const std::vector<FormatKind> &candidates,
             SchedulerObjective objective, const HlsConfig &config,
             const FormatRegistry &registry, Bytes outBytes)
{
    FormatKind best = candidates.front();
    auto best_score = std::numeric_limits<double>::infinity();
    for (FormatKind kind : candidates) {
        const auto encoded = encodeCached(registry, kind, tile);
        if (grammarValidationEnabled()) {
            const GrammarReport report = validateEncodedTile(*encoded);
            panicIf(!report.ok(),
                    "scheduler: encoded tile violates its format "
                    "grammar:\n" +
                        report.toString());
        }
        double score = 0;
        switch (objective) {
          case SchedulerObjective::Bottleneck: {
            const auto decomp = simulateDecompression(*encoded, config);
            const Cycles memory =
                transferCycles(encoded->streams(), config);
            const Cycles compute = computeCycles(decomp, config);
            const Cycles write = writebackCycles(outBytes, config);
            score = static_cast<double>(
                std::max(memory, std::max(compute, write)));
            break;
          }
          case SchedulerObjective::Compute: {
            const auto decomp = simulateDecompression(*encoded, config);
            score = static_cast<double>(computeCycles(decomp, config));
            break;
          }
          case SchedulerObjective::Bytes:
            score = static_cast<double>(encoded->totalBytes());
            break;
        }
        if (score < best_score) {
            best_score = score;
            best = kind;
        }
    }
    return best;
}

} // namespace

FormatPlan
planFormats(const Partitioning &parts,
            const std::vector<FormatKind> &candidates,
            SchedulerObjective objective, const HlsConfig &config,
            const FormatRegistry &registry, unsigned jobs)
{
    fatalIf(candidates.empty(),
            "planFormats needs at least one candidate format");

    const ScopedTimer timer("scheduler.plan");
    FormatPlan plan;
    const std::size_t n = parts.tiles.size();
    plan.perTile.resize(n, candidates.front());
    const Bytes out_bytes = Bytes(parts.partitionSize) * valueBytes;

    // Every tile's choice is independent and lands in its own indexed
    // slot, so the fan-out is deterministic; nested calls (e.g. from a
    // parallel Study) fall back to a serial loop inside the pool.
    const auto choose = [&](std::size_t i) {
        plan.perTile[i] = chooseFormat(parts.tiles[i], candidates,
                                       objective, config, registry,
                                       out_bytes);
    };
    if (effectiveJobs(jobs) > 1 && n > 1) {
        ThreadPool::global().parallelFor(n, choose);
    } else {
        for (std::size_t i = 0; i < n; ++i)
            choose(i);
    }

    for (FormatKind kind : plan.perTile)
        ++plan.histogram[kind];
    return plan;
}

PipelineResult
runAdaptive(const Partitioning &parts,
            const std::vector<FormatKind> &candidates,
            SchedulerObjective objective, const HlsConfig &config,
            const FormatRegistry &registry, unsigned jobs)
{
    const FormatPlan plan = planFormats(parts, candidates, objective,
                                        config, registry, jobs);
    return runPipelineMixed(parts, plan.perTile, config, registry);
}

} // namespace copernicus
