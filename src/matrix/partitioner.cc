#include "matrix/partitioner.hh"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "common/math.hh"
#include "common/status.hh"

namespace copernicus {

namespace {

/** Tile id of one triplet: row-major position in the partition grid. */
inline std::uint64_t
tileIdOf(const Triplet &t, Index partitionSize, Index gridCols)
{
    return static_cast<std::uint64_t>(t.row / partitionSize) * gridCols +
           t.col / partitionSize;
}

/**
 * Occupied tile ids in row-major order plus the entry count of each.
 *
 * Counting over a dense per-tile array is the O(nnz + grid) fast path;
 * a hash map plus one sort of the *occupied* ids (O(nnz + t log t))
 * covers grids too large to allocate densely (huge hypersparse
 * matrices at small p).
 */
std::vector<std::pair<std::uint64_t, Index>>
countTileEntries(const TripletMatrix &matrix, Index partitionSize,
                 Index gridCols, std::uint64_t grid)
{
    std::vector<std::pair<std::uint64_t, Index>> occupied;
    constexpr std::uint64_t denseGridLimit = 1ULL << 24;
    if (grid <= denseGridLimit) {
        std::vector<Index> counts(grid, 0);
        for (const Triplet &t : matrix.triplets())
            ++counts[tileIdOf(t, partitionSize, gridCols)];
        for (std::uint64_t id = 0; id < grid; ++id)
            if (counts[id] != 0)
                occupied.emplace_back(id, counts[id]);
    } else {
        std::unordered_map<std::uint64_t, Index> counts;
        counts.reserve(matrix.nnz());
        for (const Triplet &t : matrix.triplets())
            ++counts[tileIdOf(t, partitionSize, gridCols)];
        occupied.assign(counts.begin(), counts.end());
        std::sort(occupied.begin(), occupied.end());
    }
    return occupied;
}

} // namespace

Partitioning
partition(const TripletMatrix &matrix, Index partitionSize)
{
    fatalIf(partitionSize == 0, "partition size must be positive");
    panicIf(!matrix.finalized(), "partition() requires a finalized matrix");

    Partitioning result;
    result.partitionSize = partitionSize;
    result.gridRows =
        static_cast<Index>(ceilDiv(matrix.rows(), partitionSize));
    result.gridCols =
        static_cast<Index>(ceilDiv(matrix.cols(), partitionSize));
    const std::uint64_t grid =
        static_cast<std::uint64_t>(result.gridRows) * result.gridCols;

    // Single-pass bucket sort by tile id. finalize() ordered the
    // triplets row-major, so a stable scatter leaves every bucket
    // sorted row-major in tile-local coordinates — exactly the
    // canonical nonzero stream the Tile constructor wants. Entries
    // that summed to zero during finalize() never reach here, so
    // every bucketed tile is genuinely non-zero.
    const auto occupied =
        countTileEntries(matrix, partitionSize, result.gridCols, grid);

    std::unordered_map<std::uint64_t, std::size_t> slotOf;
    slotOf.reserve(occupied.size());
    std::vector<std::vector<TileNonzero>> buckets(occupied.size());
    for (std::size_t i = 0; i < occupied.size(); ++i) {
        slotOf.emplace(occupied[i].first, i);
        buckets[i].reserve(occupied[i].second);
    }
    for (const Triplet &t : matrix.triplets()) {
        const std::uint64_t id =
            tileIdOf(t, partitionSize, result.gridCols);
        buckets[slotOf.find(id)->second].push_back(
            {t.row % partitionSize, t.col % partitionSize, t.value});
    }

    result.tiles.reserve(occupied.size());
    for (std::size_t i = 0; i < occupied.size(); ++i) {
        const std::uint64_t id = occupied[i].first;
        result.tiles.emplace_back(
            partitionSize, static_cast<Index>(id / result.gridCols),
            static_cast<Index>(id % result.gridCols),
            std::move(buckets[i]));
    }
    result.zeroTiles = grid - result.tiles.size();
    return result;
}

} // namespace copernicus
