#include "matrix/partitioner.hh"

#include <algorithm>
#include <map>

#include "common/math.hh"
#include "common/status.hh"

namespace copernicus {

Partitioning
partition(const TripletMatrix &matrix, Index partitionSize)
{
    fatalIf(partitionSize == 0, "partition size must be positive");
    panicIf(!matrix.finalized(), "partition() requires a finalized matrix");

    Partitioning result;
    result.partitionSize = partitionSize;
    result.gridRows =
        static_cast<Index>(ceilDiv(matrix.rows(), partitionSize));
    result.gridCols =
        static_cast<Index>(ceilDiv(matrix.cols(), partitionSize));

    // Bucket entries by tile coordinate. The map keeps tiles ordered by
    // (tileRow, tileCol), which is the streaming order of the platform.
    std::map<std::pair<Index, Index>, Tile> buckets;
    for (const auto &t : matrix.triplets()) {
        const Index tr = t.row / partitionSize;
        const Index tc = t.col / partitionSize;
        auto it = buckets.find({tr, tc});
        if (it == buckets.end()) {
            it = buckets.emplace(std::make_pair(tr, tc),
                                 Tile(partitionSize, tr, tc)).first;
        }
        it->second(t.row % partitionSize, t.col % partitionSize) = t.value;
    }

    result.tiles.reserve(buckets.size());
    for (auto &kv : buckets) {
        // Entries that summed to zero during finalize() never reach here,
        // so every bucketed tile is genuinely non-zero.
        result.tiles.push_back(std::move(kv.second));
    }

    const std::size_t grid = static_cast<std::size_t>(result.gridRows) *
                             result.gridCols;
    result.zeroTiles = grid - result.tiles.size();
    return result;
}

} // namespace copernicus
