/**
 * @file
 * CscMatrix: full-matrix compressed-sparse-column storage, the
 * column-oriented sibling of CsrMatrix, with direct (no densification)
 * conversions between the two.
 */

#ifndef COPERNICUS_MATRIX_CSC_MATRIX_HH
#define COPERNICUS_MATRIX_CSC_MATRIX_HH

#include <cstddef>
#include <vector>

#include "matrix/csr_matrix.hh"
#include "matrix/triplet_matrix.hh"

namespace copernicus {

/** Full-matrix CSC representation. */
class CscMatrix
{
  public:
    /** Build from a finalized triplet matrix. */
    explicit CscMatrix(const TripletMatrix &matrix);

    /** Direct conversion from CSR (counting sort by column). */
    explicit CscMatrix(const CsrMatrix &csr);

    Index rows() const { return _rows; }
    Index cols() const { return _cols; }
    std::size_t nnz() const { return vals.size(); }

    /** Column pointer array of length cols()+1. */
    const std::vector<std::size_t> &colPtr() const { return ptr; }

    /** Row indices, column-major. */
    const std::vector<Index> &rowIndices() const { return inds; }

    /** Non-zero values, column-major. */
    const std::vector<Value> &values() const { return vals; }

    /** y = A * x (column-major accumulation). */
    std::vector<Value> multiply(const std::vector<Value> &x) const;

    /** Back to a finalized triplet matrix. */
    TripletMatrix toTriplets() const;

  private:
    void buildFromSortedColumns(Index rows, Index cols,
                                const std::vector<Index> &row_inds,
                                const std::vector<Index> &col_inds,
                                const std::vector<Value> &values);

    Index _rows;
    Index _cols;
    std::vector<std::size_t> ptr;
    std::vector<Index> inds;
    std::vector<Value> vals;
};

/** Direct CSC -> CSR conversion (counting sort by row). */
CsrMatrix toCsr(const CscMatrix &csc);

} // namespace copernicus

#endif // COPERNICUS_MATRIX_CSC_MATRIX_HH
