#include "matrix/reorder.hh"

#include <algorithm>
#include <queue>

#include "common/status.hh"

namespace copernicus {

std::vector<Index>
reverseCuthillMcKee(const TripletMatrix &matrix)
{
    panicIf(!matrix.finalized(),
            "reverseCuthillMcKee requires a finalized matrix");
    fatalIf(matrix.rows() != matrix.cols(),
            "reverseCuthillMcKee requires a square matrix");
    const Index n = matrix.rows();

    // Symmetrized adjacency (self-loops dropped).
    std::vector<std::vector<Index>> adj(n);
    for (const auto &t : matrix.triplets()) {
        if (t.row == t.col)
            continue;
        adj[t.row].push_back(t.col);
        adj[t.col].push_back(t.row);
    }
    for (auto &list : adj) {
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
    }

    std::vector<bool> visited(n, false);
    std::vector<Index> order;
    order.reserve(n);

    // Start order: ascending degree so each component begins at a
    // peripheral-ish vertex.
    std::vector<Index> starts(n);
    for (Index v = 0; v < n; ++v)
        starts[v] = v;
    std::sort(starts.begin(), starts.end(), [&](Index a, Index b) {
        return adj[a].size() != adj[b].size()
                   ? adj[a].size() < adj[b].size()
                   : a < b;
    });

    for (Index start : starts) {
        if (visited[start])
            continue;
        std::queue<Index> frontier;
        frontier.push(start);
        visited[start] = true;
        while (!frontier.empty()) {
            const Index v = frontier.front();
            frontier.pop();
            order.push_back(v);
            // Enqueue unvisited neighbours in ascending degree.
            std::vector<Index> next;
            for (Index u : adj[v])
                if (!visited[u])
                    next.push_back(u);
            std::sort(next.begin(), next.end(), [&](Index a, Index b) {
                return adj[a].size() != adj[b].size()
                           ? adj[a].size() < adj[b].size()
                           : a < b;
            });
            for (Index u : next) {
                visited[u] = true;
                frontier.push(u);
            }
        }
    }

    std::reverse(order.begin(), order.end());
    return order;
}

TripletMatrix
permuteSymmetric(const TripletMatrix &matrix,
                 const std::vector<Index> &perm)
{
    panicIf(!matrix.finalized(),
            "permuteSymmetric requires a finalized matrix");
    fatalIf(matrix.rows() != matrix.cols(),
            "permuteSymmetric requires a square matrix");
    fatalIf(perm.size() != matrix.rows(),
            "permutation length must match the matrix dimension");

    // Invert: old index -> new index.
    std::vector<Index> inverse(perm.size());
    std::vector<bool> seen(perm.size(), false);
    for (Index new_index = 0; new_index < perm.size(); ++new_index) {
        const Index old_index = perm[new_index];
        fatalIf(old_index >= perm.size() || seen[old_index],
                "permuteSymmetric: perm is not a permutation");
        seen[old_index] = true;
        inverse[old_index] = new_index;
    }

    TripletMatrix result(matrix.rows(), matrix.cols());
    for (const auto &t : matrix.triplets())
        result.add(inverse[t.row], inverse[t.col], t.value);
    result.finalize();
    return result;
}

TripletMatrix
rcmReorder(const TripletMatrix &matrix)
{
    return permuteSymmetric(matrix, reverseCuthillMcKee(matrix));
}

} // namespace copernicus
