/**
 * @file
 * MatrixMarket coordinate-format reader/writer.
 *
 * SuiteSparse distributes its collection as MatrixMarket (.mtx) files;
 * Copernicus ships surrogate generators for the Table-1 matrices but this
 * reader lets users drop in the real files. Supported: `matrix coordinate`
 * with field real/integer/pattern and symmetry general/symmetric/
 * skew-symmetric. Array (dense) and complex files are rejected with a
 * FatalError naming the unsupported feature, as are pattern
 * skew-symmetric banners (a skew mirror needs a negated value) and
 * headers whose dimensions exceed the 32-bit index space.
 *
 * The file path ingests through an mmap with drop-behind: parsed text
 * pages are released every few MB, so reading a multi-GB .mtx holds a
 * bounded window of the file (the triplets themselves still
 * materialize in memory — convert to a .cbm container via mtx2cbm for
 * out-of-core sweeps). Comment lines, blank/whitespace-only lines and
 * CRLF endings are tolerated anywhere after the banner.
 */

#ifndef COPERNICUS_MATRIX_MM_IO_HH
#define COPERNICUS_MATRIX_MM_IO_HH

#include <iosfwd>
#include <string>

#include "matrix/triplet_matrix.hh"

namespace copernicus {

/**
 * Parse a MatrixMarket coordinate stream into a finalized TripletMatrix.
 *
 * Symmetric and skew-symmetric files are expanded to general form.
 * Pattern files get value 1 for every listed entry.
 *
 * @param in Stream positioned at the `%%MatrixMarket` banner.
 * @return Finalized matrix.
 */
TripletMatrix readMatrixMarket(std::istream &in);

/** Read a MatrixMarket file from @p path. */
TripletMatrix readMatrixMarketFile(const std::string &path);

/**
 * Write @p matrix as `matrix coordinate real general`.
 *
 * @param out Destination stream.
 * @param matrix Finalized matrix to serialize.
 */
void writeMatrixMarket(std::ostream &out, const TripletMatrix &matrix);

/** Write a MatrixMarket file to @p path. */
void writeMatrixMarketFile(const std::string &path,
                           const TripletMatrix &matrix);

} // namespace copernicus

#endif // COPERNICUS_MATRIX_MM_IO_HH
