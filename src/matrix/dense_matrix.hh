/**
 * @file
 * Row-major dense matrix, the reference representation for tests and the
 * baseline "format" of the characterization.
 */

#ifndef COPERNICUS_MATRIX_DENSE_MATRIX_HH
#define COPERNICUS_MATRIX_DENSE_MATRIX_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace copernicus {

/** Row-major dense matrix of Value. */
class DenseMatrix
{
  public:
    /** Construct a zero-filled rows x cols matrix. */
    DenseMatrix(Index rows, Index cols);

    Index rows() const { return _rows; }
    Index cols() const { return _cols; }

    /** Mutable element access (row, col), bounds-checked. */
    Value &operator()(Index row, Index col);

    /** Const element access (row, col), bounds-checked. */
    Value operator()(Index row, Index col) const;

    /** Number of non-zero elements. */
    std::size_t nnz() const;

    /** True iff every element of @p row is zero. */
    bool rowIsZero(Index row) const;

    /** Number of non-zero elements in @p row. */
    Index rowNnz(Index row) const;

    /** Raw row-major storage. */
    const std::vector<Value> &data() const { return store; }

    friend bool operator==(const DenseMatrix &a, const DenseMatrix &b);

  private:
    Index _rows;
    Index _cols;
    std::vector<Value> store;
};

} // namespace copernicus

#endif // COPERNICUS_MATRIX_DENSE_MATRIX_HH
