#include "matrix/triplet_matrix.hh"

#include <algorithm>
#include <string>

#include "common/status.hh"
#include "matrix/dense_matrix.hh"

namespace copernicus {

TripletMatrix::TripletMatrix(Index rows, Index cols)
    : _rows(rows), _cols(cols)
{
    fatalIf(rows == 0 || cols == 0,
            "TripletMatrix dimensions must be positive");
    _finalized = true; // an empty matrix is trivially sorted
}

void
TripletMatrix::add(Index row, Index col, Value value)
{
    panicIf(row >= _rows || col >= _cols,
            "TripletMatrix::add out-of-range entry (" +
            std::to_string(row) + ", " + std::to_string(col) + ")");
    entries.push_back({row, col, value});
    _finalized = false;
}

void
TripletMatrix::finalize()
{
    if (_finalized)
        return;
    std::sort(entries.begin(), entries.end(),
              [](const Triplet &a, const Triplet &b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
    // Sum duplicates in place, then drop entries that cancelled to zero.
    std::size_t out = 0;
    for (std::size_t i = 0; i < entries.size();) {
        Triplet acc = entries[i];
        std::size_t j = i + 1;
        while (j < entries.size() && entries[j].row == acc.row &&
               entries[j].col == acc.col) {
            acc.value += entries[j].value;
            ++j;
        }
        if (acc.value != Value(0))
            entries[out++] = acc;
        i = j;
    }
    entries.resize(out);
    _finalized = true;
}

double
TripletMatrix::density() const
{
    return static_cast<double>(entries.size()) /
           (static_cast<double>(_rows) * static_cast<double>(_cols));
}

void
TripletMatrix::requireFinalized(const char *op) const
{
    panicIf(!_finalized,
            std::string(op) + " requires a finalized TripletMatrix");
}

Value
TripletMatrix::at(Index row, Index col) const
{
    requireFinalized("at()");
    const Triplet probe{row, col, 0};
    auto it = std::lower_bound(
        entries.begin(), entries.end(), probe,
        [](const Triplet &a, const Triplet &b) {
            return a.row != b.row ? a.row < b.row : a.col < b.col;
        });
    if (it != entries.end() && it->row == row && it->col == col)
        return it->value;
    return 0;
}

std::pair<std::size_t, std::size_t>
TripletMatrix::rowRange(Index row) const
{
    requireFinalized("rowRange()");
    auto lessRow = [](const Triplet &a, Index r) { return a.row < r; };
    auto first = std::lower_bound(entries.begin(), entries.end(), row,
                                  lessRow);
    auto last = std::lower_bound(first, entries.end(), row + 1, lessRow);
    return {static_cast<std::size_t>(first - entries.begin()),
            static_cast<std::size_t>(last - entries.begin())};
}

DenseMatrix
TripletMatrix::toDense() const
{
    DenseMatrix dense(_rows, _cols);
    for (const auto &t : entries)
        dense(t.row, t.col) += t.value;
    return dense;
}

TripletMatrix
TripletMatrix::transposed() const
{
    TripletMatrix result(_cols, _rows);
    for (const auto &t : entries)
        result.add(t.col, t.row, t.value);
    result.finalize();
    return result;
}

bool
operator==(const TripletMatrix &a, const TripletMatrix &b)
{
    panicIf(!a._finalized || !b._finalized,
            "operator== requires finalized TripletMatrix operands");
    return a._rows == b._rows && a._cols == b._cols &&
           a.entries == b.entries;
}

} // namespace copernicus
