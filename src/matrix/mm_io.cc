#include "matrix/mm_io.hh"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <string_view>

#include "common/mmap_file.hh"
#include "common/status.hh"

namespace copernicus {

namespace {

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

/** Drop a trailing '\r' so CRLF files parse like LF files. */
std::string_view
stripCr(std::string_view line)
{
    if (!line.empty() && line.back() == '\r')
        line.remove_suffix(1);
    return line;
}

/** True for lines holding nothing but whitespace. */
bool
isBlank(std::string_view line)
{
    return line.find_first_not_of(" \t\v\f\r") == std::string_view::npos;
}

/** Pop the next whitespace-separated token off @p rest. */
std::string_view
nextToken(std::string_view &rest)
{
    const std::size_t begin = rest.find_first_not_of(" \t\v\f");
    if (begin == std::string_view::npos) {
        rest = {};
        return {};
    }
    std::size_t end = rest.find_first_of(" \t\v\f", begin);
    if (end == std::string_view::npos)
        end = rest.size();
    const std::string_view token = rest.substr(begin, end - begin);
    rest.remove_prefix(end);
    return token;
}

enum class NumParse { Ok, Bad, Overflow };

NumParse
parseU64(std::string_view token, std::uint64_t &value)
{
    if (token.empty())
        return NumParse::Bad;
    const auto [ptr, ec] = std::from_chars(
        token.data(), token.data() + token.size(), value);
    if (ec == std::errc::result_out_of_range)
        return NumParse::Overflow;
    if (ec != std::errc() || ptr != token.data() + token.size())
        return NumParse::Bad;
    return NumParse::Ok;
}

bool
parseDouble(std::string_view token, double &value)
{
    if (token.empty())
        return false;
    // strtod needs a terminator; tokens are tiny, so a stack copy is
    // cheaper than materializing each line into a std::string.
    char buf[64];
    std::string overflow;
    const char *begin;
    if (token.size() < sizeof(buf)) {
        std::memcpy(buf, token.data(), token.size());
        buf[token.size()] = '\0';
        begin = buf;
    } else {
        overflow.assign(token);
        begin = overflow.c_str();
    }
    char *end = nullptr;
    value = std::strtod(begin, &end);
    return end == begin + token.size();
}

/** What the banner declared. */
struct MmFormat
{
    bool pattern = false;
    bool symmetric = false;
    bool skew = false;
};

MmFormat
parseBanner(std::string_view banner)
{
    std::string_view rest = banner;
    const std::string magic(nextToken(rest));
    const std::string object(nextToken(rest));
    const std::string layout(nextToken(rest));
    std::string field(nextToken(rest));
    std::string symmetry(nextToken(rest));

    fatalIf(magic != "%%MatrixMarket",
            "MatrixMarket: missing %%MatrixMarket banner");
    fatalIf(toLower(object) != "matrix",
            "MatrixMarket: unsupported object '" + object + "'");
    fatalIf(toLower(layout) != "coordinate",
            "MatrixMarket: unsupported layout '" + layout +
                "' (only coordinate is supported)");

    field = toLower(field);
    symmetry = toLower(symmetry);
    MmFormat fmt;
    fmt.pattern = field == "pattern";
    fatalIf(field != "real" && field != "integer" && !fmt.pattern,
            "MatrixMarket: unsupported field '" + field + "'");
    fmt.symmetric = symmetry == "symmetric";
    fmt.skew = symmetry == "skew-symmetric";
    fatalIf(symmetry != "general" && !fmt.symmetric && !fmt.skew,
            "MatrixMarket: unsupported symmetry '" + symmetry + "'");
    fatalIf(fmt.pattern && fmt.skew,
            "MatrixMarket: pattern matrices cannot be "
            "skew-symmetric (a skew mirror needs a negated value)");
    return fmt;
}

/**
 * Core coordinate parser, shared by the stream and mmap paths.
 *
 * @p LineSource provides `bool next(std::string_view &line)`,
 * returning raw lines (no newline) until EOF; the view only has to
 * stay valid until the following call.
 */
template <typename LineSource>
TripletMatrix
parseMatrixMarket(LineSource &&source)
{
    std::string_view line;
    fatalIf(!source.next(line), "MatrixMarket: empty input stream");
    const MmFormat fmt = parseBanner(stripCr(line));

    const auto nextDataLine = [&source](std::string_view &out) {
        while (source.next(out)) {
            out = stripCr(out);
            if (isBlank(out) || out.front() == '%')
                continue;
            return true;
        }
        return false;
    };

    fatalIf(!nextDataLine(line), "MatrixMarket: missing size line");
    std::uint64_t rows = 0, cols = 0, count = 0;
    {
        std::string_view rest = line;
        const NumParse rowsParse = parseU64(nextToken(rest), rows);
        const NumParse colsParse = parseU64(nextToken(rest), cols);
        const NumParse countParse = parseU64(nextToken(rest), count);
        fatalIf(rowsParse == NumParse::Bad ||
                    colsParse == NumParse::Bad ||
                    countParse == NumParse::Bad || !isBlank(rest) ||
                    countParse == NumParse::Overflow,
                "MatrixMarket: malformed size line '" +
                    std::string(line) + "'");
        // Dimensions are stored as 32-bit Index; a header beyond that
        // (or a u64-overflowing digit string) cannot be represented
        // and must fail loudly instead of truncating.
        constexpr std::uint64_t maxDim =
            std::numeric_limits<Index>::max();
        fatalIf(rowsParse == NumParse::Overflow ||
                    colsParse == NumParse::Overflow || rows > maxDim ||
                    cols > maxDim,
                "MatrixMarket: size line '" + std::string(line) +
                    "' exceeds the 32-bit index space (max " +
                    std::to_string(maxDim) + " rows/cols)");
        fatalIf(rows == 0 || cols == 0,
                "MatrixMarket: malformed size line '" +
                    std::string(line) + "'");
    }

    TripletMatrix matrix(static_cast<Index>(rows),
                         static_cast<Index>(cols));
    matrix.reserve((fmt.symmetric || fmt.skew) ? 2 * count : count);
    for (std::uint64_t i = 0; i < count; ++i) {
        fatalIf(!nextDataLine(line),
                "MatrixMarket: fewer entries than declared");
        std::string_view rest = line;
        std::uint64_t r = 0, c = 0;
        double v = 1.0;
        bool ok = parseU64(nextToken(rest), r) == NumParse::Ok &&
                  parseU64(nextToken(rest), c) == NumParse::Ok;
        if (ok && !fmt.pattern)
            ok = parseDouble(nextToken(rest), v);
        fatalIf(!ok || !isBlank(rest) || r == 0 || c == 0 ||
                    r > rows || c > cols,
                "MatrixMarket: malformed entry '" + std::string(line) +
                    "'");
        fatalIf(fmt.skew && r == c,
                "MatrixMarket: skew-symmetric entry on the diagonal "
                "'" +
                    std::string(line) + "'");
        const Index row = static_cast<Index>(r - 1);
        const Index col = static_cast<Index>(c - 1);
        matrix.add(row, col, static_cast<Value>(v));
        if ((fmt.symmetric || fmt.skew) && row != col)
            matrix.add(col, row,
                       static_cast<Value>(fmt.skew ? -v : v));
    }
    matrix.finalize();
    return matrix;
}

/** Lines from a std::istream (buffered getline). */
struct IstreamLineSource
{
    std::istream &in;
    std::string buffer;

    bool
    next(std::string_view &line)
    {
        if (!std::getline(in, buffer))
            return false;
        line = buffer;
        return true;
    }
};

/**
 * Lines straight out of an mmap'd file, zero-copy. Consumed pages are
 * released every window, so parsing a multi-GB .mtx keeps a bounded
 * resident set no matter the file size.
 */
struct MappedLineSource
{
    MmapFile &file;
    std::size_t cursor = 0;
    std::size_t lastDrop = 0;

    /** Drop-behind granularity: 8 MB of parsed text per madvise. */
    static constexpr std::size_t window = 8u << 20;

    bool
    next(std::string_view &line)
    {
        if (cursor >= file.size())
            return false;
        const char *base = reinterpret_cast<const char *>(file.data());
        const void *nl = std::memchr(base + cursor, '\n',
                                     file.size() - cursor);
        const std::size_t end =
            nl == nullptr
                ? file.size()
                : static_cast<std::size_t>(
                      static_cast<const char *>(nl) - base);
        line = std::string_view(base + cursor, end - cursor);
        cursor = end + 1;
        if (cursor - lastDrop >= window) {
            file.dropPagesBefore(cursor);
            lastDrop = cursor;
        }
        return true;
    }
};

} // namespace

TripletMatrix
readMatrixMarket(std::istream &in)
{
    return parseMatrixMarket(IstreamLineSource{in, {}});
}

TripletMatrix
readMatrixMarketFile(const std::string &path)
{
    MmapFile file(path);
    return parseMatrixMarket(MappedLineSource{file});
}

void
writeMatrixMarket(std::ostream &out, const TripletMatrix &matrix)
{
    panicIf(!matrix.finalized(),
            "writeMatrixMarket requires a finalized matrix");
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << "% written by Copernicus\n";
    out << matrix.rows() << ' ' << matrix.cols() << ' ' << matrix.nnz()
        << '\n';
    for (const auto &t : matrix.triplets())
        out << (t.row + 1) << ' ' << (t.col + 1) << ' ' << t.value << '\n';
}

void
writeMatrixMarketFile(const std::string &path, const TripletMatrix &matrix)
{
    std::ofstream out(path);
    fatalIf(!out, "MatrixMarket: cannot open '" + path + "' for writing");
    writeMatrixMarket(out, matrix);
}

} // namespace copernicus
