#include "matrix/mm_io.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/status.hh"

namespace copernicus {

namespace {

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

/** Skip comment lines (starting with '%') and blank lines. */
bool
nextDataLine(std::istream &in, std::string &line)
{
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line[0] == '%')
            continue;
        return true;
    }
    return false;
}

} // namespace

TripletMatrix
readMatrixMarket(std::istream &in)
{
    std::string banner;
    fatalIf(!std::getline(in, banner),
            "MatrixMarket: empty input stream");
    std::istringstream head(banner);
    std::string magic, object, layout, field, symmetry;
    head >> magic >> object >> layout >> field >> symmetry;
    fatalIf(magic != "%%MatrixMarket",
            "MatrixMarket: missing %%MatrixMarket banner");
    fatalIf(toLower(object) != "matrix",
            "MatrixMarket: unsupported object '" + object + "'");
    fatalIf(toLower(layout) != "coordinate",
            "MatrixMarket: unsupported layout '" + layout +
            "' (only coordinate is supported)");

    field = toLower(field);
    symmetry = toLower(symmetry);
    const bool pattern = field == "pattern";
    fatalIf(field != "real" && field != "integer" && !pattern,
            "MatrixMarket: unsupported field '" + field + "'");
    const bool symmetric = symmetry == "symmetric";
    const bool skew = symmetry == "skew-symmetric";
    fatalIf(symmetry != "general" && !symmetric && !skew,
            "MatrixMarket: unsupported symmetry '" + symmetry + "'");

    std::string line;
    fatalIf(!nextDataLine(in, line),
            "MatrixMarket: missing size line");
    std::istringstream size_line(line);
    std::uint64_t rows = 0, cols = 0, count = 0;
    size_line >> rows >> cols >> count;
    fatalIf(size_line.fail() || rows == 0 || cols == 0,
            "MatrixMarket: malformed size line '" + line + "'");

    TripletMatrix matrix(static_cast<Index>(rows),
                         static_cast<Index>(cols));
    for (std::uint64_t i = 0; i < count; ++i) {
        fatalIf(!nextDataLine(in, line),
                "MatrixMarket: fewer entries than declared");
        std::istringstream entry(line);
        std::uint64_t r = 0, c = 0;
        double v = 1.0;
        entry >> r >> c;
        if (!pattern)
            entry >> v;
        fatalIf(entry.fail() || r == 0 || c == 0 || r > rows || c > cols,
                "MatrixMarket: malformed entry '" + line + "'");
        const Index row = static_cast<Index>(r - 1);
        const Index col = static_cast<Index>(c - 1);
        matrix.add(row, col, static_cast<Value>(v));
        if ((symmetric || skew) && row != col)
            matrix.add(col, row, static_cast<Value>(skew ? -v : v));
    }
    matrix.finalize();
    return matrix;
}

TripletMatrix
readMatrixMarketFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "MatrixMarket: cannot open '" + path + "'");
    return readMatrixMarket(in);
}

void
writeMatrixMarket(std::ostream &out, const TripletMatrix &matrix)
{
    panicIf(!matrix.finalized(),
            "writeMatrixMarket requires a finalized matrix");
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << "% written by Copernicus\n";
    out << matrix.rows() << ' ' << matrix.cols() << ' ' << matrix.nnz()
        << '\n';
    for (const auto &t : matrix.triplets())
        out << (t.row + 1) << ' ' << (t.col + 1) << ' ' << t.value << '\n';
}

void
writeMatrixMarketFile(const std::string &path, const TripletMatrix &matrix)
{
    std::ofstream out(path);
    fatalIf(!out, "MatrixMarket: cannot open '" + path + "' for writing");
    writeMatrixMarket(out, matrix);
}

} // namespace copernicus
