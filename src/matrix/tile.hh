/**
 * @file
 * Tile: one p x p partition of a sparse matrix in dense form.
 *
 * The paper applies every compression format to fixed-size partitions of
 * the original matrix (Section 4.1), never to the full matrix, so the
 * format codecs and decompressor models all operate on Tiles. Partition
 * sizes are small (8, 16 or 32), which makes the dense representation the
 * natural exchange format between the partitioner and the codecs.
 */

#ifndef COPERNICUS_MATRIX_TILE_HH
#define COPERNICUS_MATRIX_TILE_HH

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"

namespace copernicus {

/** Square dense tile of a partitioned sparse matrix. */
class Tile
{
  public:
    /**
     * Construct a zero tile.
     *
     * @param size Partition edge length p (8, 16 or 32 in the paper).
     * @param tileRow Partition-grid row coordinate.
     * @param tileCol Partition-grid column coordinate.
     */
    explicit Tile(Index size, Index tileRow = 0, Index tileCol = 0)
        : p(size), tRow(tileRow), tCol(tileCol),
          store(static_cast<std::size_t>(size) * size, Value(0))
    {
        fatalIf(size == 0, "Tile size must be positive");
    }

    /** Partition edge length p. */
    Index size() const { return p; }

    /** Partition-grid row coordinate of this tile. */
    Index tileRow() const { return tRow; }

    /** Partition-grid column coordinate of this tile. */
    Index tileCol() const { return tCol; }

    /** Mutable element access, bounds-checked. */
    Value &
    operator()(Index row, Index col)
    {
        panicIf(row >= p || col >= p, "Tile access out of range");
        return store[static_cast<std::size_t>(row) * p + col];
    }

    /** Const element access, bounds-checked. */
    Value
    operator()(Index row, Index col) const
    {
        panicIf(row >= p || col >= p, "Tile access out of range");
        return store[static_cast<std::size_t>(row) * p + col];
    }

    /** Number of non-zero elements. */
    Index
    nnz() const
    {
        Index count = 0;
        for (Value v : store)
            count += v != Value(0);
        return count;
    }

    /** Number of non-zero elements in @p row. */
    Index
    rowNnz(Index row) const
    {
        Index count = 0;
        for (Index c = 0; c < p; ++c)
            count += (*this)(row, c) != Value(0);
        return count;
    }

    /** Number of non-zero elements in @p col. */
    Index
    colNnz(Index col) const
    {
        Index count = 0;
        for (Index r = 0; r < p; ++r)
            count += (*this)(r, col) != Value(0);
        return count;
    }

    /** Number of rows with at least one non-zero. */
    Index
    nnzRows() const
    {
        Index count = 0;
        for (Index r = 0; r < p; ++r)
            count += rowNnz(r) != 0;
        return count;
    }

    /** Length of the longest row, in non-zeros. */
    Index
    maxRowNnz() const
    {
        Index best = 0;
        for (Index r = 0; r < p; ++r)
            best = std::max(best, rowNnz(r));
        return best;
    }

    /** Length of the longest column, in non-zeros. */
    Index
    maxColNnz() const
    {
        Index best = 0;
        for (Index c = 0; c < p; ++c)
            best = std::max(best, colNnz(c));
        return best;
    }

    /** True iff the tile holds no non-zero element. */
    bool empty() const { return nnz() == 0; }

    /** Raw row-major storage. */
    const std::vector<Value> &data() const { return store; }

    /** Equality compares contents only, not grid coordinates. */
    friend bool
    operator==(const Tile &a, const Tile &b)
    {
        return a.p == b.p && a.store == b.store;
    }

  private:
    Index p;
    Index tRow;
    Index tCol;
    std::vector<Value> store;
};

} // namespace copernicus

#endif // COPERNICUS_MATRIX_TILE_HH
