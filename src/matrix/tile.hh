/**
 * @file
 * Tile: one p x p partition of a sparse matrix.
 *
 * The paper applies every compression format to fixed-size partitions of
 * the original matrix (Section 4.1), never to the full matrix, so the
 * format codecs and decompressor models all operate on Tiles. Partition
 * sizes are small (8, 16 or 32), which keeps a dense p x p store cheap as
 * the exchange representation for decode and equality — but the *encode*
 * hot path is density-proportional: every tile carries a canonical
 * sorted-nonzero view (row-major (row, col, value) triplets) plus a
 * one-shot TileStats bundle (per-row/column histograms, maxima,
 * diagonal population) that the codecs, the size model and the schedule
 * feature extraction all share, so no consumer rescans the p^2 cells.
 *
 * The view is built once — eagerly by the partitioner (from the already
 * sorted triplet stream, O(nnz)) or lazily on first use (one dense scan)
 * — and cached. Concurrent const access is safe: the lazy build installs
 * the view with a compare-exchange, so racing readers agree on one
 * instance. Mutation through a non-const accessor invalidates the cache;
 * mutating a tile while other threads read it is a data race, exactly as
 * for any standard container.
 */

#ifndef COPERNICUS_MATRIX_TILE_HH
#define COPERNICUS_MATRIX_TILE_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"

namespace copernicus {

/** One non-zero of a tile, in tile-local coordinates. */
struct TileNonzero
{
    Index row = 0;
    Index col = 0;
    Value value = 0;

    friend bool
    operator==(const TileNonzero &a, const TileNonzero &b)
    {
        return a.row == b.row && a.col == b.col && a.value == b.value;
    }
};

/**
 * Sparsity features of one tile, computed in one O(nnz + p) pass and
 * shared by every consumer (codecs, size model, schedule IR).
 */
struct TileStats
{
    /** Non-zero count. */
    Index nnz = 0;

    /** Non-zeros per row / per column; length p each. */
    std::vector<Index> rowNnz;
    std::vector<Index> colNnz;

    /**
     * Prefix sums of rowNnz into the canonical nonzero list: row r
     * occupies [rowStart[r], rowStart[r + 1]). Length p + 1.
     */
    std::vector<Index> rowStart;

    /** Longest row / column, in non-zeros. */
    Index maxRowNnz = 0;
    Index maxColNnz = 0;

    /** Rows / columns with at least one non-zero. */
    Index nnzRows = 0;
    Index nnzCols = 0;

    /** Populated diagonals (distinct col - row values). */
    Index nnzDiagonals = 0;
};

/** Square tile of a partitioned sparse matrix. */
class Tile
{
  public:
    /**
     * Construct a zero tile.
     *
     * @param size Partition edge length p (8, 16 or 32 in the paper).
     * @param tileRow Partition-grid row coordinate.
     * @param tileCol Partition-grid column coordinate.
     */
    explicit Tile(Index size, Index tileRow = 0, Index tileCol = 0)
        : p(size), tRow(tileRow), tCol(tileCol),
          store(static_cast<std::size_t>(size) * size, Value(0))
    {
        fatalIf(size == 0, "Tile size must be positive");
    }

    /**
     * Construct directly from the canonical nonzero stream (the
     * partitioner's O(nnz) path): @p nz must be sorted row-major with
     * in-range coordinates and non-zero values. The sparse view and
     * features are installed immediately — no dense rescan ever runs
     * for a tile built this way.
     */
    Tile(Index size, Index tileRow, Index tileCol,
         std::vector<TileNonzero> nz)
        : Tile(size, tileRow, tileCol)
    {
        for (const TileNonzero &e : nz) {
            COPERNICUS_DCHECK(e.row < p && e.col < p,
                              "Tile nonzero out of range");
            COPERNICUS_DCHECK(e.value != Value(0),
                              "Tile nonzero stream holds a zero");
            store[static_cast<std::size_t>(e.row) * p + e.col] = e.value;
        }
        cachedView.store(new SparseView(buildFeatures(p, std::move(nz))),
                         std::memory_order_release);
    }

    ~Tile() { delete cachedView.load(std::memory_order_relaxed); }

    Tile(const Tile &other)
        : p(other.p), tRow(other.tRow), tCol(other.tCol),
          store(other.store)
    {
        const SparseView *v =
            other.cachedView.load(std::memory_order_acquire);
        if (v != nullptr)
            cachedView.store(new SparseView(*v),
                             std::memory_order_release);
    }

    Tile(Tile &&other) noexcept
        : p(other.p), tRow(other.tRow), tCol(other.tCol),
          store(std::move(other.store))
    {
        cachedView.store(
            other.cachedView.exchange(nullptr,
                                      std::memory_order_acq_rel),
            std::memory_order_release);
    }

    Tile &
    operator=(const Tile &other)
    {
        if (this != &other) {
            Tile copy(other);
            *this = std::move(copy);
        }
        return *this;
    }

    Tile &
    operator=(Tile &&other) noexcept
    {
        if (this != &other) {
            p = other.p;
            tRow = other.tRow;
            tCol = other.tCol;
            store = std::move(other.store);
            delete cachedView.exchange(
                other.cachedView.exchange(nullptr,
                                          std::memory_order_acq_rel),
                std::memory_order_acq_rel);
        }
        return *this;
    }

    /** Partition edge length p. */
    Index size() const { return p; }

    /** Partition-grid row coordinate of this tile. */
    Index tileRow() const { return tRow; }

    /** Partition-grid column coordinate of this tile. */
    Index tileCol() const { return tCol; }

    /** Mutable element access, bounds-checked. */
    Value &
    operator()(Index row, Index col)
    {
        panicIf(row >= p || col >= p, "Tile access out of range");
        invalidateView();
        return store[static_cast<std::size_t>(row) * p + col];
    }

    /** Const element access, bounds-checked. */
    Value
    operator()(Index row, Index col) const
    {
        panicIf(row >= p || col >= p, "Tile access out of range");
        return store[static_cast<std::size_t>(row) * p + col];
    }

    /**
     * Mutable element access for decode inner loops: bounds are
     * checked in debug builds only (COPERNICUS_DCHECK).
     */
    Value &
    cell(Index row, Index col)
    {
        COPERNICUS_DCHECK(row < p && col < p,
                          "Tile access out of range");
        invalidateView();
        return store[static_cast<std::size_t>(row) * p + col];
    }

    /** Const element access, debug-checked only. */
    Value
    cell(Index row, Index col) const
    {
        COPERNICUS_DCHECK(row < p && col < p,
                          "Tile access out of range");
        return store[static_cast<std::size_t>(row) * p + col];
    }

    /**
     * The canonical nonzero stream: tile-local (row, col, value)
     * triplets sorted row-major. Built once and cached; the reference
     * stays valid until the tile is mutated.
     */
    const std::vector<TileNonzero> &nonzeros() const { return view().nz; }

    /** One-shot sparsity features, computed with the nonzero view. */
    const TileStats &features() const { return view().feat; }

    /** Number of non-zero elements. */
    Index nnz() const { return features().nnz; }

    /** Number of non-zero elements in @p row. */
    Index
    rowNnz(Index row) const
    {
        panicIf(row >= p, "Tile rowNnz out of range");
        return features().rowNnz[row];
    }

    /** Number of non-zero elements in @p col. */
    Index
    colNnz(Index col) const
    {
        panicIf(col >= p, "Tile colNnz out of range");
        return features().colNnz[col];
    }

    /** Number of rows with at least one non-zero. */
    Index nnzRows() const { return features().nnzRows; }

    /** Length of the longest row, in non-zeros. */
    Index maxRowNnz() const { return features().maxRowNnz; }

    /** Length of the longest column, in non-zeros. */
    Index maxColNnz() const { return features().maxColNnz; }

    /** True iff the tile holds no non-zero element. */
    bool empty() const { return nnz() == 0; }

    /** Raw row-major storage. */
    const std::vector<Value> &data() const { return store; }

    /** Equality compares contents only, not grid coordinates. */
    friend bool
    operator==(const Tile &a, const Tile &b)
    {
        return a.p == b.p && a.store == b.store;
    }

  private:
    /** The cached sparse representation: nonzeros + features. */
    struct SparseView
    {
        explicit SparseView(
            std::pair<std::vector<TileNonzero>, TileStats> built)
            : nz(std::move(built.first)), feat(std::move(built.second))
        {}

        std::vector<TileNonzero> nz;
        TileStats feat;
    };

    /** Feature pass shared by the dense and triplet build paths. */
    static std::pair<std::vector<TileNonzero>, TileStats>
    buildFeatures(Index p, std::vector<TileNonzero> nz)
    {
        TileStats feat;
        feat.nnz = static_cast<Index>(nz.size());
        feat.rowNnz.assign(p, 0);
        feat.colNnz.assign(p, 0);
        feat.rowStart.assign(static_cast<std::size_t>(p) + 1, 0);
        std::vector<char> diag(2 * static_cast<std::size_t>(p) - 1, 0);
        for (const TileNonzero &e : nz) {
            ++feat.rowNnz[e.row];
            ++feat.colNnz[e.col];
            diag[static_cast<std::size_t>(p) - 1 - e.row + e.col] = 1;
        }
        for (Index r = 0; r < p; ++r) {
            feat.rowStart[r + 1] = feat.rowStart[r] + feat.rowNnz[r];
            feat.maxRowNnz = std::max(feat.maxRowNnz, feat.rowNnz[r]);
            feat.nnzRows += feat.rowNnz[r] != 0;
        }
        for (Index c = 0; c < p; ++c) {
            feat.maxColNnz = std::max(feat.maxColNnz, feat.colNnz[c]);
            feat.nnzCols += feat.colNnz[c] != 0;
        }
        for (char present : diag)
            feat.nnzDiagonals += present != 0;
        return {std::move(nz), std::move(feat)};
    }

    /** Extract the sorted nonzero stream from the dense store. */
    std::vector<TileNonzero>
    scanStore() const
    {
        std::vector<TileNonzero> nz;
        for (Index r = 0; r < p; ++r) {
            const std::size_t base = static_cast<std::size_t>(r) * p;
            for (Index c = 0; c < p; ++c) {
                const Value v = store[base + c];
                if (v != Value(0))
                    nz.push_back({r, c, v});
            }
        }
        return nz;
    }

    /**
     * The cached view, built on first use. Concurrent builders race
     * benignly: both compute identical views and the compare-exchange
     * keeps exactly one.
     */
    const SparseView &
    view() const
    {
        const SparseView *v = cachedView.load(std::memory_order_acquire);
        if (v != nullptr)
            return *v;
        auto *built = new SparseView(buildFeatures(p, scanStore()));
        const SparseView *expected = nullptr;
        if (cachedView.compare_exchange_strong(
                expected, built, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
            return *built;
        }
        delete built;
        return *expected;
    }

    /**
     * Drop the cached view before a write. Plain exchange: mutation
     * implies exclusive ownership (concurrent readers would already
     * race on the store itself).
     */
    void
    invalidateView()
    {
        if (cachedView.load(std::memory_order_relaxed) != nullptr)
            delete cachedView.exchange(nullptr,
                                       std::memory_order_acq_rel);
    }

    Index p;
    Index tRow;
    Index tCol;
    std::vector<Value> store;
    mutable std::atomic<const SparseView *> cachedView{nullptr};
};

} // namespace copernicus

#endif // COPERNICUS_MATRIX_TILE_HH
