/**
 * @file
 * Partitioner: split a sparse matrix into p x p tiles, eliding all-zero
 * tiles (Section 4.1: only non-zero partitions are compressed, transferred
 * and processed).
 */

#ifndef COPERNICUS_MATRIX_PARTITIONER_HH
#define COPERNICUS_MATRIX_PARTITIONER_HH

#include <cstddef>
#include <vector>

#include "matrix/tile.hh"
#include "matrix/triplet_matrix.hh"

namespace copernicus {

/** Result of partitioning one matrix at one partition size. */
struct Partitioning
{
    /** Partition edge length p used. */
    Index partitionSize = 0;

    /** Tiles of the partition grid, row-major. */
    Index gridRows = 0;
    Index gridCols = 0;

    /** The non-zero tiles, sorted by (tileRow, tileCol). */
    std::vector<Tile> tiles;

    /** Number of all-zero tiles that were elided. */
    std::size_t zeroTiles = 0;

    /** Total tiles in the grid (non-zero + elided). */
    std::size_t totalTiles() const { return tiles.size() + zeroTiles; }

    /** Fraction of tiles that contain at least one non-zero. */
    double
    nonZeroTileFraction() const
    {
        const std::size_t total = totalTiles();
        return total == 0 ? 0.0
                          : static_cast<double>(tiles.size()) / total;
    }
};

/**
 * Partition @p matrix into @p partitionSize x @p partitionSize tiles.
 *
 * Edge tiles of matrices whose dimension is not a multiple of the
 * partition size are zero-padded, matching the fixed-width hardware
 * buffers of the platform.
 *
 * @param matrix Finalized source matrix.
 * @param partitionSize Edge length p of each tile; must be positive.
 * @return Non-zero tiles plus grid bookkeeping.
 */
Partitioning partition(const TripletMatrix &matrix, Index partitionSize);

} // namespace copernicus

#endif // COPERNICUS_MATRIX_PARTITIONER_HH
