#include "matrix/csc_matrix.hh"

#include "common/status.hh"

namespace copernicus {

void
CscMatrix::buildFromSortedColumns(Index rows, Index cols,
                                  const std::vector<Index> &row_inds,
                                  const std::vector<Index> &col_inds,
                                  const std::vector<Value> &values)
{
    _rows = rows;
    _cols = cols;
    ptr.assign(cols + 1, 0);
    for (Index c : col_inds)
        ++ptr[c + 1];
    for (Index c = 0; c < cols; ++c)
        ptr[c + 1] += ptr[c];

    inds.resize(values.size());
    vals.resize(values.size());
    std::vector<std::size_t> cursor(ptr.begin(), ptr.end() - 1);
    for (std::size_t i = 0; i < values.size(); ++i) {
        const std::size_t at = cursor[col_inds[i]]++;
        inds[at] = row_inds[i];
        vals[at] = values[i];
    }
}

CscMatrix::CscMatrix(const TripletMatrix &matrix)
{
    panicIf(!matrix.finalized(), "CscMatrix requires a finalized matrix");
    std::vector<Index> row_inds, col_inds;
    std::vector<Value> values;
    row_inds.reserve(matrix.nnz());
    col_inds.reserve(matrix.nnz());
    values.reserve(matrix.nnz());
    // Triplets come row-major; the counting sort below is stable, so
    // rows stay sorted inside each column.
    for (const auto &t : matrix.triplets()) {
        row_inds.push_back(t.row);
        col_inds.push_back(t.col);
        values.push_back(t.value);
    }
    buildFromSortedColumns(matrix.rows(), matrix.cols(), row_inds,
                           col_inds, values);
}

CscMatrix::CscMatrix(const CsrMatrix &csr)
{
    std::vector<Index> row_inds;
    row_inds.reserve(csr.nnz());
    for (Index r = 0; r < csr.rows(); ++r) {
        for (std::size_t i = csr.rowPtr()[r]; i < csr.rowPtr()[r + 1];
             ++i) {
            row_inds.push_back(r);
        }
    }
    buildFromSortedColumns(csr.rows(), csr.cols(), row_inds,
                           csr.colIndices(), csr.values());
}

std::vector<Value>
CscMatrix::multiply(const std::vector<Value> &x) const
{
    fatalIf(x.size() != _cols, "CscMatrix::multiply dimension mismatch");
    std::vector<Value> y(_rows, Value(0));
    for (Index c = 0; c < _cols; ++c)
        for (std::size_t i = ptr[c]; i < ptr[c + 1]; ++i)
            y[inds[i]] += vals[i] * x[c];
    return y;
}

TripletMatrix
CscMatrix::toTriplets() const
{
    TripletMatrix matrix(_rows, _cols);
    for (Index c = 0; c < _cols; ++c)
        for (std::size_t i = ptr[c]; i < ptr[c + 1]; ++i)
            matrix.add(inds[i], c, vals[i]);
    matrix.finalize();
    return matrix;
}

CsrMatrix
toCsr(const CscMatrix &csc)
{
    return CsrMatrix(csc.toTriplets());
}

} // namespace copernicus
