/**
 * @file
 * Matrix reordering: reverse Cuthill-McKee bandwidth reduction.
 *
 * Section 6.1 concludes that when a format and the hardware are
 * misaligned, "preprocessing the sparse data to a format compatible
 * with a hardware accelerator is highly suggested". RCM is the classic
 * such preprocessing step: it permutes a scattered symmetric pattern
 * into a band, after which DIA/band-friendly formats (and partition
 * elision) work far better. The reorder ablation bench quantifies the
 * effect.
 */

#ifndef COPERNICUS_MATRIX_REORDER_HH
#define COPERNICUS_MATRIX_REORDER_HH

#include <vector>

#include "matrix/triplet_matrix.hh"

namespace copernicus {

/**
 * Reverse Cuthill-McKee ordering of a square matrix's symmetrized
 * pattern.
 *
 * @param matrix Finalized square matrix.
 * @return perm with perm[new_index] = old_index; every component is
 *         visited from a minimum-degree start vertex.
 */
std::vector<Index> reverseCuthillMcKee(const TripletMatrix &matrix);

/**
 * Apply a symmetric permutation: result(i, j) = matrix(perm[i],
 * perm[j]).
 *
 * @param matrix Finalized square matrix.
 * @param perm Permutation with perm[new] = old, length rows().
 * @return Finalized permuted matrix.
 */
TripletMatrix permuteSymmetric(const TripletMatrix &matrix,
                               const std::vector<Index> &perm);

/** Convenience: permuteSymmetric(matrix, reverseCuthillMcKee(...)). */
TripletMatrix rcmReorder(const TripletMatrix &matrix);

} // namespace copernicus

#endif // COPERNICUS_MATRIX_REORDER_HH
