/**
 * @file
 * TripletMatrix: the canonical in-memory sparse matrix of Copernicus.
 *
 * Every workload generator produces a TripletMatrix, the partitioner
 * consumes one, and the MatrixMarket reader parses into one. It is a
 * coordinate-list container with an explicit finalize() step that sorts
 * entries row-major and combines duplicates, after which lookups and
 * per-row iteration are cheap.
 */

#ifndef COPERNICUS_MATRIX_TRIPLET_MATRIX_HH
#define COPERNICUS_MATRIX_TRIPLET_MATRIX_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace copernicus {

/** One non-zero entry: (row, column, value). */
struct Triplet
{
    Index row = 0;
    Index col = 0;
    Value value = 0;

    friend bool
    operator==(const Triplet &a, const Triplet &b)
    {
        return a.row == b.row && a.col == b.col && a.value == b.value;
    }
};

class DenseMatrix;

/**
 * Sparse matrix stored as a list of (row, col, value) triplets.
 *
 * Mutation model: add() appends entries in any order; finalize() sorts
 * them row-major and sums duplicates. Query methods that depend on order
 * (at(), rowRange()) require a finalized matrix and panic otherwise.
 */
class TripletMatrix
{
  public:
    /** Construct an empty rows x cols matrix. */
    TripletMatrix(Index rows, Index cols);

    /**
     * Append one non-zero entry.
     *
     * @param row Row index, must be < rows().
     * @param col Column index, must be < cols().
     * @param value Entry value; explicit zeros are kept until finalize().
     */
    void add(Index row, Index col, Value value);

    /** Pre-allocate room for @p count entries (bulk ingestion). */
    void reserve(std::size_t count) { entries.reserve(count); }

    /**
     * Sort entries row-major, sum duplicates and drop exact zeros.
     *
     * Idempotent; adding after finalize() clears the finalized flag.
     */
    void finalize();

    /** True once finalize() has run and no entry was added since. */
    bool finalized() const { return _finalized; }

    Index rows() const { return _rows; }
    Index cols() const { return _cols; }

    /** Number of stored entries (non-zeros once finalized). */
    std::size_t nnz() const { return entries.size(); }

    /** Fraction of entries that are non-zero. */
    double density() const;

    /** All entries, row-major once finalized. */
    const std::vector<Triplet> &triplets() const { return entries; }

    /**
     * Value at (row, col), 0 for entries not stored.
     *
     * Requires a finalized matrix (binary search over the sorted list).
     */
    Value at(Index row, Index col) const;

    /**
     * Half-open index range [first, last) of the entries in @p row.
     *
     * Requires a finalized matrix.
     */
    std::pair<std::size_t, std::size_t> rowRange(Index row) const;

    /** Materialize to a dense matrix (intended for small matrices). */
    DenseMatrix toDense() const;

    /** Transposed copy (finalized). */
    TripletMatrix transposed() const;

    friend bool operator==(const TripletMatrix &a, const TripletMatrix &b);

  private:
    void requireFinalized(const char *op) const;

    Index _rows;
    Index _cols;
    bool _finalized = false;
    std::vector<Triplet> entries;
};

} // namespace copernicus

#endif // COPERNICUS_MATRIX_TRIPLET_MATRIX_HH
