/**
 * @file
 * CsrMatrix: full-matrix compressed-sparse-row storage.
 *
 * This is the software-side workhorse used by the solver substrate
 * (conjugate gradient, PageRank) for whole-matrix SpMV. It is distinct
 * from the tile-level CSR codec in src/formats, which models the
 * hardware's per-partition compression.
 */

#ifndef COPERNICUS_MATRIX_CSR_MATRIX_HH
#define COPERNICUS_MATRIX_CSR_MATRIX_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"
#include "matrix/triplet_matrix.hh"

namespace copernicus {

/** Full-matrix CSR representation. */
class CsrMatrix
{
  public:
    /** Build from a finalized triplet matrix. */
    explicit CsrMatrix(const TripletMatrix &matrix);

    Index rows() const { return _rows; }
    Index cols() const { return _cols; }
    std::size_t nnz() const { return vals.size(); }

    /** Row pointer array of length rows()+1. */
    const std::vector<std::size_t> &rowPtr() const { return ptr; }

    /** Column indices, row-major. */
    const std::vector<Index> &colIndices() const { return inds; }

    /** Non-zero values, row-major. */
    const std::vector<Value> &values() const { return vals; }

    /**
     * y = A * x.
     *
     * @param x Input vector of length cols().
     * @return Output vector of length rows().
     */
    std::vector<Value> multiply(const std::vector<Value> &x) const;

    /** y = A^T * x without materializing the transpose. */
    std::vector<Value>
    multiplyTransposed(const std::vector<Value> &x) const;

  private:
    Index _rows;
    Index _cols;
    std::vector<std::size_t> ptr;
    std::vector<Index> inds;
    std::vector<Value> vals;
};

} // namespace copernicus

#endif // COPERNICUS_MATRIX_CSR_MATRIX_HH
