#include "matrix/csr_matrix.hh"

#include "common/status.hh"

namespace copernicus {

CsrMatrix::CsrMatrix(const TripletMatrix &matrix)
    : _rows(matrix.rows()), _cols(matrix.cols())
{
    panicIf(!matrix.finalized(), "CsrMatrix requires a finalized matrix");
    ptr.assign(_rows + 1, 0);
    inds.reserve(matrix.nnz());
    vals.reserve(matrix.nnz());
    for (const auto &t : matrix.triplets()) {
        ++ptr[t.row + 1];
        inds.push_back(t.col);
        vals.push_back(t.value);
    }
    for (Index r = 0; r < _rows; ++r)
        ptr[r + 1] += ptr[r];
}

std::vector<Value>
CsrMatrix::multiply(const std::vector<Value> &x) const
{
    fatalIf(x.size() != _cols, "CsrMatrix::multiply dimension mismatch");
    std::vector<Value> y(_rows, Value(0));
    for (Index r = 0; r < _rows; ++r) {
        Value acc = 0;
        for (std::size_t i = ptr[r]; i < ptr[r + 1]; ++i)
            acc += vals[i] * x[inds[i]];
        y[r] = acc;
    }
    return y;
}

std::vector<Value>
CsrMatrix::multiplyTransposed(const std::vector<Value> &x) const
{
    fatalIf(x.size() != _rows,
            "CsrMatrix::multiplyTransposed dimension mismatch");
    std::vector<Value> y(_cols, Value(0));
    for (Index r = 0; r < _rows; ++r)
        for (std::size_t i = ptr[r]; i < ptr[r + 1]; ++i)
            y[inds[i]] += vals[i] * x[r];
    return y;
}

} // namespace copernicus
