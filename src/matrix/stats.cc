#include "matrix/stats.hh"

#include <cstdlib>
#include <set>

#include "common/status.hh"

namespace copernicus {

MatrixStats
computeStats(const TripletMatrix &matrix)
{
    panicIf(!matrix.finalized(), "computeStats requires finalized matrix");

    MatrixStats stats;
    stats.rows = matrix.rows();
    stats.cols = matrix.cols();
    stats.nnz = matrix.nnz();
    stats.density = matrix.density();

    std::set<std::int64_t> diagonals;
    std::size_t diag_nnz = 0;
    std::vector<Index> row_nnz(matrix.rows(), 0);
    for (const auto &t : matrix.triplets()) {
        ++row_nnz[t.row];
        const std::int64_t d = static_cast<std::int64_t>(t.col) -
                               static_cast<std::int64_t>(t.row);
        diagonals.insert(d);
        diag_nnz += d == 0;
        const Index dist = static_cast<Index>(std::llabs(d));
        stats.bandwidth = std::max(stats.bandwidth, dist);
    }
    stats.nonZeroDiagonals = static_cast<Index>(diagonals.size());
    stats.diagonalFraction =
        stats.nnz == 0 ? 0.0
                       : static_cast<double>(diag_nnz) / stats.nnz;

    for (Index nnz : row_nnz) {
        stats.maxRowNnz = std::max(stats.maxRowNnz, nnz);
        stats.nonZeroRows += nnz != 0;
    }
    stats.meanRowNnz = stats.rows == 0
                           ? 0.0
                           : static_cast<double>(stats.nnz) / stats.rows;
    return stats;
}

std::map<Index, std::size_t>
rowNnzHistogram(const TripletMatrix &matrix)
{
    panicIf(!matrix.finalized(),
            "rowNnzHistogram requires a finalized matrix");
    std::vector<Index> row_nnz(matrix.rows(), 0);
    for (const auto &t : matrix.triplets())
        ++row_nnz[t.row];
    std::map<Index, std::size_t> histogram;
    for (Index nnz : row_nnz)
        ++histogram[nnz];
    return histogram;
}

std::array<std::size_t, 10>
tileDensityDeciles(const Partitioning &parts)
{
    std::array<std::size_t, 10> deciles{};
    const double cells = static_cast<double>(parts.partitionSize) *
                         parts.partitionSize;
    for (const Tile &tile : parts.tiles) {
        const double density = tile.nnz() / cells;
        auto bucket = static_cast<std::size_t>(density * 10.0);
        if (bucket >= deciles.size())
            bucket = deciles.size() - 1; // density exactly 1
        ++deciles[bucket];
    }
    return deciles;
}

PartitionStats
computePartitionStats(const Partitioning &parts)
{
    PartitionStats stats;
    stats.partitionSize = parts.partitionSize;
    stats.nonZeroTiles = parts.tiles.size();
    stats.zeroTiles = parts.zeroTiles;

    if (parts.tiles.empty())
        return stats;

    const double cells = static_cast<double>(parts.partitionSize) *
                         parts.partitionSize;
    double density_sum = 0;
    double row_density_sum = 0;
    double nnz_row_sum = 0;
    for (const Tile &tile : parts.tiles) {
        const Index nnz = tile.nnz();
        const Index nnz_rows = tile.nnzRows();
        density_sum += nnz / cells;
        // Density within the non-zero rows only (Fig. 3b).
        row_density_sum += static_cast<double>(nnz) /
                           (static_cast<double>(nnz_rows) *
                            parts.partitionSize);
        nnz_row_sum += static_cast<double>(nnz_rows) /
                       parts.partitionSize;
    }
    const double count = static_cast<double>(parts.tiles.size());
    stats.avgPartitionDensity = density_sum / count;
    stats.avgRowDensity = row_density_sum / count;
    stats.avgNonZeroRowFraction = nnz_row_sum / count;
    return stats;
}

PartitionStats
computePartitionStats(const TripletMatrix &matrix, Index partitionSize)
{
    return computePartitionStats(partition(matrix, partitionSize));
}

} // namespace copernicus
