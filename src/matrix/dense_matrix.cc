#include "matrix/dense_matrix.hh"

#include <string>

#include "common/status.hh"

namespace copernicus {

DenseMatrix::DenseMatrix(Index rows, Index cols)
    : _rows(rows), _cols(cols),
      store(static_cast<std::size_t>(rows) * cols, Value(0))
{
    fatalIf(rows == 0 || cols == 0,
            "DenseMatrix dimensions must be positive");
}

Value &
DenseMatrix::operator()(Index row, Index col)
{
    panicIf(row >= _rows || col >= _cols,
            "DenseMatrix access out of range (" + std::to_string(row) +
            ", " + std::to_string(col) + ")");
    return store[static_cast<std::size_t>(row) * _cols + col];
}

Value
DenseMatrix::operator()(Index row, Index col) const
{
    panicIf(row >= _rows || col >= _cols,
            "DenseMatrix access out of range (" + std::to_string(row) +
            ", " + std::to_string(col) + ")");
    return store[static_cast<std::size_t>(row) * _cols + col];
}

std::size_t
DenseMatrix::nnz() const
{
    std::size_t count = 0;
    for (Value v : store)
        count += v != Value(0);
    return count;
}

bool
DenseMatrix::rowIsZero(Index row) const
{
    return rowNnz(row) == 0;
}

Index
DenseMatrix::rowNnz(Index row) const
{
    panicIf(row >= _rows, "DenseMatrix::rowNnz row out of range");
    Index count = 0;
    for (Index c = 0; c < _cols; ++c)
        count += (*this)(row, c) != Value(0);
    return count;
}

bool
operator==(const DenseMatrix &a, const DenseMatrix &b)
{
    return a._rows == b._rows && a._cols == b._cols && a.store == b.store;
}

} // namespace copernicus
