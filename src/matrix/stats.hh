/**
 * @file
 * Matrix- and partition-level sparsity statistics.
 *
 * PartitionStats reproduces the three quantities of Figure 3: average
 * partition density, average density of non-zero rows, and the average
 * fraction of non-zero rows per partition. MatrixStats summarizes the
 * whole-matrix structure used by the workload catalog and the format
 * advisor (bandwidth, diagonal count, row-length distribution).
 */

#ifndef COPERNICUS_MATRIX_STATS_HH
#define COPERNICUS_MATRIX_STATS_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>

#include "matrix/partitioner.hh"
#include "matrix/triplet_matrix.hh"

namespace copernicus {

/** Whole-matrix structural statistics. */
struct MatrixStats
{
    Index rows = 0;
    Index cols = 0;
    std::size_t nnz = 0;

    /** nnz / (rows * cols). */
    double density = 0;

    /** Mean non-zeros per row. */
    double meanRowNnz = 0;

    /** Longest row, in non-zeros. */
    Index maxRowNnz = 0;

    /** Number of rows with at least one non-zero. */
    Index nonZeroRows = 0;

    /** Matrix bandwidth: max |i - j| over non-zeros (0 for diagonal). */
    Index bandwidth = 0;

    /** Number of distinct non-zero diagonals (i - j values). */
    Index nonZeroDiagonals = 0;

    /** Fraction of nnz that lie on the main diagonal. */
    double diagonalFraction = 0;

    /** True iff every non-zero sits on the main diagonal. */
    bool isDiagonal() const { return bandwidth == 0 && nnz > 0; }
};

/** Compute MatrixStats for a finalized matrix. */
MatrixStats computeStats(const TripletMatrix &matrix);

/** Per-partition sparsity averages (Figure 3). */
struct PartitionStats
{
    Index partitionSize = 0;
    std::size_t nonZeroTiles = 0;
    std::size_t zeroTiles = 0;

    /** Fig. 3a: mean % of non-zero values per non-zero partition. */
    double avgPartitionDensity = 0;

    /** Fig. 3b: mean % of non-zero values within non-zero rows. */
    double avgRowDensity = 0;

    /** Fig. 3c: mean % of non-zero rows per non-zero partition. */
    double avgNonZeroRowFraction = 0;
};

/**
 * Row-length distribution: histogram[k] = number of rows with exactly
 * k non-zeros (k = 0 counts the empty rows).
 */
std::map<Index, std::size_t> rowNnzHistogram(const TripletMatrix &matrix);

/**
 * Tile-density distribution over the non-zero tiles: ten equal-width
 * density buckets, deciles[d] counting tiles whose density falls in
 * [d/10, (d+1)/10) (the last bucket is closed above).
 */
std::array<std::size_t, 10> tileDensityDeciles(const Partitioning &parts);

/** Compute PartitionStats from an existing partitioning. */
PartitionStats computePartitionStats(const Partitioning &parts);

/** Convenience overload: partition then compute. */
PartitionStats computePartitionStats(const TripletMatrix &matrix,
                                     Index partitionSize);

} // namespace copernicus

#endif // COPERNICUS_MATRIX_STATS_HH
