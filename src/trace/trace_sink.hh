/**
 * @file
 * TraceSink: the zero-cost-when-disabled emission interface the
 * pipeline simulators publish their timelines through.
 *
 * The simulators (event_sim, stream_pipeline, parallel_pipeline) take
 * an optional `TraceSink *`; when it is null and no global sink is
 * installed they skip every emission — a single pointer test per
 * partition — and their numeric results are bit-identical either way
 * (asserted by tests/test_trace.cc). TraceWriter is the standard
 * implementation, serialising to Chrome trace_event JSON; tests
 * install tiny in-memory sinks instead.
 *
 * This header depends only on common/types.hh so every layer can
 * accept a sink without linking the trace library.
 */

#ifndef COPERNICUS_TRACE_TRACE_SINK_HH
#define COPERNICUS_TRACE_TRACE_SINK_HH

#include <string_view>

#include "common/types.hh"

namespace copernicus {

/** Receives timeline events from one or more simulator runs. */
class TraceSink
{
  public:
    virtual ~TraceSink();

    /**
     * Start a new logical timeline (one simulator run); cycle 0 of
     * subsequent events is the start of that run. TraceWriter maps
     * scopes to trace processes so runs don't overlap in the viewer.
     */
    virtual void
    beginScope(std::string_view name)
    {
        (void)name;
    }

    /**
     * A span of busy time on a named track (e.g. pipeline stage
     * "read"), with @p start/@p end in cycles since the scope began.
     * @p name labels the span itself, e.g. "p12" for partition 12.
     */
    virtual void durationEvent(std::string_view track,
                               std::string_view name, Cycles start,
                               Cycles end) = 0;

    /** A sampled counter value (sigma, bandwidth utilization, ...). */
    virtual void counterEvent(std::string_view counter, Cycles ts,
                              double value) = 0;
};

/**
 * Process-wide default sink consulted by the simulators when no
 * explicit sink argument is passed; null (the initial state) disables
 * tracing. Used by bench_common.hh to capture whole-bench traces
 * without threading a sink through every call site. Not thread-safe:
 * install before spawning work.
 */
TraceSink *activeTraceSink();

/** Install (or with nullptr remove) the process-wide sink. */
void setActiveTraceSink(TraceSink *sink);

/**
 * Sentinel sink meaning "force tracing off for this call". Passing
 * `&noTraceSink()` as an explicit sink argument suppresses the
 * activeTraceSink() fallback; the simulators recognise the address and
 * skip emission entirely. The parallel sweep paths use this: the
 * per-partition timeline of interleaved workers is meaningless, and
 * TraceWriter is single-threaded by design (worker activity is instead
 * reported as pool lanes, see ThreadPool::setLaneRecording).
 */
TraceSink &noTraceSink();

} // namespace copernicus

#endif // COPERNICUS_TRACE_TRACE_SINK_HH
