/**
 * @file
 * Request-scoped span recording: the causally-linked counterpart of
 * ScopedTimer.
 *
 * A span is one named interval of work attributed to a trace
 * (request) and to a parent span, so the spans of one request assemble
 * into a tree: client call → server request → queue wait → handler →
 * study phases → per-design-point encodes, across whatever threads the
 * thread pool scattered them over (common/trace_context carries the
 * parent identity into pool tasks).
 *
 * Recording is a bounded ring in SpanCollector — always safe to leave
 * on, never grows without bound — and a disabled ScopedSpan costs one
 * relaxed atomic load, mirroring ScopedTimer's contract, so the
 * instrumentation stays in the library's hot paths unconditionally.
 */

#ifndef COPERNICUS_TRACE_SPAN_HH
#define COPERNICUS_TRACE_SPAN_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/lock_order.hh"
#include "common/mutex.hh"
#include "common/thread_annotations.hh"
#include "common/trace_context.hh"

namespace copernicus {

/** One completed span: a tree edge plus an interval. */
struct SpanRecord
{
    std::uint64_t traceId = 0;
    std::uint64_t spanId = 0;
    std::uint64_t parentSpanId = 0; ///< 0 = root of its trace
    std::string name;               ///< "study.partition", ...
    std::string track;              ///< display grouping: "serve", "study", ...
    std::uint64_t startUs = 0;      ///< observeNowUs() timestamps
    std::uint64_t endUs = 0;

    /** The record as one compact JSON object (ids in hex). */
    void writeJson(std::ostream &out) const;
};

/**
 * Process-wide bounded ring of completed spans.
 *
 * record() and snapshot() are mutex-guarded with short critical
 * sections (one slot move / one vector copy); when the ring laps,
 * the oldest spans are overwritten and dropped() counts them, so a
 * long-lived daemon keeps the most recent history without unbounded
 * growth — the same always-on posture as the flight recorder.
 */
class SpanCollector
{
  public:
    /** The collector every ScopedSpan reports to. */
    static SpanCollector &global();

    SpanCollector() = default;
    SpanCollector(const SpanCollector &) = delete;
    SpanCollector &operator=(const SpanCollector &) = delete;

    void
    setEnabled(bool enabled)
    {
        on.store(enabled, std::memory_order_relaxed);
    }

    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /** Resize the ring (drops current contents). Capacity >= 1. */
    void setCapacity(std::size_t capacity);

    void record(SpanRecord span);

    /** Every retained span, oldest first. */
    std::vector<SpanRecord> snapshot() const;

    /** The retained spans of one trace, oldest first. */
    std::vector<SpanRecord> spansForTrace(std::uint64_t traceId) const;

    /** Spans recorded since construction/clear (retained or not). */
    std::uint64_t recorded() const;

    /** Spans overwritten by ring wrap-around. */
    std::uint64_t dropped() const;

    /** Drop every retained span and reset the counters. */
    void clear();

  private:
    std::atomic<bool> on{false};
    mutable Mutex mutex{lock_rank::spanCollector};
    /** size() < capacity until first lap */
    std::vector<SpanRecord> ring COPERNICUS_GUARDED_BY(mutex);
    std::size_t capacity COPERNICUS_GUARDED_BY(mutex) = 4096;
    /** next overwrite slot once full */
    std::size_t head COPERNICUS_GUARDED_BY(mutex) = 0;
    std::uint64_t total COPERNICUS_GUARDED_BY(mutex) = 0;
};

/**
 * RAII span: measures from construction to destruction on the shared
 * observability clock, parents itself under the thread's current
 * TraceContext (starting a fresh trace when there is none), and makes
 * itself the current context so nested spans become its children.
 */
class ScopedSpan
{
  public:
    ScopedSpan(std::string_view name, std::string_view track,
               SpanCollector &collector = SpanCollector::global())
        : sink(&collector)
    {
        if (!sink->enabled())
            return;
        active = true;
        saved = currentTraceContext();
        record.traceId = saved.valid() ? saved.traceId : newTraceId();
        record.spanId = newSpanId();
        record.parentSpanId = saved.valid() ? saved.spanId : 0;
        record.name = std::string(name);
        record.track = std::string(track);
        record.startUs = observeNowUs();
        setCurrentTraceContext({record.traceId, record.spanId});
    }

    ~ScopedSpan()
    {
        if (!active)
            return;
        setCurrentTraceContext(saved);
        record.endUs = observeNowUs();
        sink->record(std::move(record));
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** This span's identity (invalid context when recording is off). */
    TraceContext
    context() const
    {
        return active ? TraceContext{record.traceId, record.spanId}
                      : TraceContext{};
    }

  private:
    SpanCollector *sink;
    SpanRecord record;
    TraceContext saved;
    bool active = false;
};

} // namespace copernicus

#endif // COPERNICUS_TRACE_SPAN_HH
