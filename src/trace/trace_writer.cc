#include "trace/trace_writer.hh"

#include <fstream>
#include <ostream>

#include "common/json.hh"
#include "common/status.hh"

namespace copernicus {

TraceWriter::TraceWriter() : scopeNames{"copernicus"} {}

void
TraceWriter::beginScope(std::string_view name)
{
    scopeNames.emplace_back(name);
    currentPid = static_cast<int>(scopeNames.size()) - 1;
}

void
TraceWriter::durationEvent(std::string_view track,
                           std::string_view name, Cycles start,
                           Cycles end)
{
    panicIf(end < start, "TraceWriter: duration event ends before it "
                         "starts");
    Event event;
    event.phase = 'X';
    event.pid = currentPid;
    event.track = std::string(track);
    event.name = std::string(name);
    event.ts = start;
    event.dur = end - start;
    recorded.push_back(std::move(event));
}

void
TraceWriter::durationEventArgs(std::string_view track,
                               std::string_view name, Cycles start,
                               Cycles end, std::string argsJson)
{
    durationEvent(track, name, start, end);
    recorded.back().args = std::move(argsJson);
}

void
TraceWriter::counterEvent(std::string_view counter, Cycles ts,
                          double value)
{
    Event event;
    event.phase = 'C';
    event.pid = currentPid;
    event.name = std::string(counter);
    event.ts = ts;
    event.value = value;
    recorded.push_back(std::move(event));
}

void
TraceWriter::recordEventSim(const EventSimResult &result)
{
    beginScope("event_sim." + std::string(formatName(result.format)) +
               ".p" + std::to_string(result.partitionSize));
    for (std::size_t i = 0; i < result.schedule.size(); ++i) {
        const TileSchedule &slot = result.schedule[i];
        const std::string name = "p" + std::to_string(i);
        durationEvent("read", name, slot.readStart, slot.readEnd);
        durationEvent("compute", name, slot.computeStart,
                      slot.computeEnd);
        durationEvent("write", name, slot.writeStart, slot.writeEnd);
    }
}

Cycles
TraceWriter::trackBusy(std::string_view track) const
{
    Cycles busy = 0;
    for (const Event &event : recorded)
        if (event.phase == 'X' && event.track == track)
            busy += event.dur;
    return busy;
}

void
TraceWriter::write(std::ostream &out) const
{
    // Assign one tid per (pid, track) pair, in first-seen order.
    std::map<std::pair<int, std::string>, int> tids;
    for (const Event &event : recorded) {
        if (event.phase != 'X')
            continue;
        const auto key = std::make_pair(event.pid, event.track);
        if (tids.find(key) == tids.end()) {
            const int tid = static_cast<int>(tids.size()) + 1;
            tids.emplace(key, tid);
        }
    }

    out << "{\n\"displayTimeUnit\": \"ms\",\n"
        << "\"otherData\": {\"generator\": \"copernicus TraceWriter\", "
           "\"timeUnit\": \"cycles (written as trace microseconds)\"},\n"
        << "\"traceEvents\": [";

    bool first = true;
    auto sep = [&]() {
        if (!first)
            out << ',';
        first = false;
        out << "\n";
    };

    for (std::size_t pid = 0; pid < scopeNames.size(); ++pid) {
        sep();
        out << "{\"ph\": \"M\", \"pid\": " << pid
            << ", \"name\": \"process_name\", \"args\": {\"name\": ";
        writeJsonString(out, scopeNames[pid]);
        out << "}}";
    }
    for (const auto &[key, tid] : tids) {
        sep();
        out << "{\"ph\": \"M\", \"pid\": " << key.first
            << ", \"tid\": " << tid
            << ", \"name\": \"thread_name\", \"args\": {\"name\": ";
        writeJsonString(out, key.second);
        out << "}}";
    }

    for (const Event &event : recorded) {
        sep();
        if (event.phase == 'X') {
            const int tid = tids.at({event.pid, event.track});
            out << "{\"ph\": \"X\", \"pid\": " << event.pid
                << ", \"tid\": " << tid << ", \"name\": ";
            writeJsonString(out, event.name);
            out << ", \"cat\": \"stage\", \"ts\": " << event.ts
                << ", \"dur\": " << event.dur;
            if (!event.args.empty())
                out << ", \"args\": " << event.args;
            out << "}";
        } else {
            out << "{\"ph\": \"C\", \"pid\": " << event.pid
                << ", \"tid\": 0, \"name\": ";
            writeJsonString(out, event.name);
            out << ", \"ts\": " << event.ts
                << ", \"args\": {\"value\": ";
            writeJsonNumber(out, event.value);
            out << "}}";
        }
    }
    out << "\n]}\n";
}

void
TraceWriter::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    fatalIf(!out, "TraceWriter: cannot open '" + path + "'");
    write(out);
}

} // namespace copernicus
