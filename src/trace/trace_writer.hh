/**
 * @file
 * TraceWriter: records TraceSink events and serialises them as Chrome
 * trace_event JSON, loadable in chrome://tracing and Perfetto.
 *
 * Mapping: each beginScope() opens a trace *process* (pid) named after
 * the scope, each distinct track within a scope becomes a *thread*
 * (tid) with a thread_name metadata record, duration events are
 * complete ('X') events and counters are 'C' events. Timestamps are
 * model cycles written as the trace's microsecond field — the viewer's
 * "us" reads as cycles (noted in the file's metadata).
 */

#ifndef COPERNICUS_TRACE_TRACE_WRITER_HH
#define COPERNICUS_TRACE_TRACE_WRITER_HH

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "pipeline/event_sim.hh"
#include "trace/trace_sink.hh"

namespace copernicus {

/** Collects events in memory; write() emits the JSON document. */
class TraceWriter : public TraceSink
{
  public:
    /** One recorded event ('X' duration or 'C' counter). */
    struct Event
    {
        char phase = 'X';
        int pid = 0;
        std::string track; ///< empty for counters
        std::string name;
        Cycles ts = 0;
        Cycles dur = 0;   ///< 'X' only
        double value = 0; ///< 'C' only
        std::string args; ///< optional JSON object, emitted verbatim
    };

    TraceWriter();

    void beginScope(std::string_view name) override;
    void durationEvent(std::string_view track, std::string_view name,
                       Cycles start, Cycles end) override;
    void counterEvent(std::string_view counter, Cycles ts,
                      double value) override;

    /**
     * A duration event with an `args` payload — @p argsJson must be a
     * complete JSON object and is emitted verbatim. The serve drain
     * uses this to attach span/trace ids to span events, so the Chrome
     * trace retains the causal tree the timeline flattens.
     */
    void durationEventArgs(std::string_view track,
                           std::string_view name, Cycles start,
                           Cycles end, std::string argsJson);

    /**
     * Serialise a finished event-sim run (one scope, tracks
     * read/compute/write) without having had a live sink attached.
     */
    void recordEventSim(const EventSimResult &result);

    const std::vector<Event> &events() const { return recorded; }
    std::size_t eventCount() const { return recorded.size(); }

    /**
     * Total busy cycles (sum of durations) on @p track across every
     * scope — tests compare this against EventSimResult busy totals.
     */
    Cycles trackBusy(std::string_view track) const;

    /** Emit the whole trace as one JSON document. */
    void write(std::ostream &out) const;

    /** write() to @p path; failure to open is a FatalError. */
    void writeFile(const std::string &path) const;

  private:
    std::vector<Event> recorded;
    std::vector<std::string> scopeNames; ///< index = pid
    int currentPid = 0;
};

} // namespace copernicus

#endif // COPERNICUS_TRACE_TRACE_WRITER_HH
