#include "trace/profile.hh"

#include <algorithm>

namespace copernicus {

ProfileRegistry &
ProfileRegistry::global()
{
    static ProfileRegistry registry;
    return registry;
}

void
ProfileRegistry::record(std::string_view name, double seconds)
{
    const MutexLock lock(mutex);
    auto it = table.find(name);
    if (it == table.end()) {
        Entry entry;
        entry.name = std::string(name);
        it = table.emplace(entry.name, std::move(entry)).first;
    }
    Entry &entry = it->second;
    ++entry.calls;
    entry.seconds += seconds;
    entry.maxSeconds = std::max(entry.maxSeconds, seconds);
}

void
ProfileRegistry::clear()
{
    const MutexLock lock(mutex);
    table.clear();
}

std::vector<ProfileRegistry::Entry>
ProfileRegistry::entries() const
{
    const MutexLock lock(mutex);
    std::vector<Entry> out;
    out.reserve(table.size());
    for (const auto &[name, entry] : table)
        out.push_back(entry);
    return out;
}

ProfileStats::ProfileStats(const ProfileRegistry &registry)
    : grp("profile")
{
    auto add = [this](const std::string &name, const char *desc,
                      double value) {
        auto stat = std::make_unique<ScalarStat>(grp, name, desc);
        *stat = value;
        owned.push_back(std::move(stat));
    };
    for (const ProfileRegistry::Entry &entry : registry.entries()) {
        add(entry.name + ".calls", "times the scope was entered",
            static_cast<double>(entry.calls));
        add(entry.name + ".seconds", "total wall-clock seconds inside",
            entry.seconds);
        add(entry.name + ".max_seconds", "longest single entry",
            entry.maxSeconds);
    }
}

void
emitWorkerLanes(TraceSink &sink,
                const std::vector<ThreadPool::LaneSpan> &spans)
{
    if (spans.empty())
        return;
    sink.beginScope("thread_pool");
    for (const ThreadPool::LaneSpan &span : spans) {
        sink.durationEvent("worker" + std::to_string(span.worker),
                           "task", span.startUs, span.endUs);
    }
}


} // namespace copernicus
