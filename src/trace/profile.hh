/**
 * @file
 * Host-side scoped profiling: wall-clock timing of the library's own
 * hot paths (format encoders, Study::run, the schedulers, solvers), as
 * opposed to the *modelled* cycle counts everywhere else.
 *
 * Usage: drop a `ScopedTimer timer("study.run.encode");` at the top of
 * a scope. Names are hierarchical by dotted convention so a dump reads
 * as a tree. Disabled (the default) the timer is one relaxed atomic
 * load — no clock reads, no allocation, no lock — so instrumented
 * library code costs nothing in production. Enable with
 * `ProfileRegistry::global().setEnabled(true)` (the CLI/bench
 * `--profile` flag) and dump via ProfileStats, which exports the
 * registry as a regular StatGroup ("name value # desc" and JSON).
 */

#ifndef COPERNICUS_TRACE_PROFILE_HH
#define COPERNICUS_TRACE_PROFILE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/lock_order.hh"
#include "common/mutex.hh"
#include "common/stat_group.hh"
#include "common/thread_annotations.hh"
#include "common/thread_pool.hh"
#include "trace/trace_sink.hh"

namespace copernicus {

/** Thread-safe accumulator of named wall-clock timings. */
class ProfileRegistry
{
  public:
    /** Aggregate of every ScopedTimer that reported one name. */
    struct Entry
    {
        std::string name;
        std::uint64_t calls = 0;
        double seconds = 0;
        double maxSeconds = 0;
    };

    /** The process-wide registry the default ScopedTimer reports to. */
    static ProfileRegistry &global();

    ProfileRegistry() = default;
    ProfileRegistry(const ProfileRegistry &) = delete;
    ProfileRegistry &operator=(const ProfileRegistry &) = delete;

    void
    setEnabled(bool enabled)
    {
        on.store(enabled, std::memory_order_relaxed);
    }

    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /** Fold one timed interval into the entry for @p name. */
    void record(std::string_view name, double seconds);

    /** Drop every entry (enabled state is kept). */
    void clear();

    /** Snapshot of all entries, sorted by name. */
    std::vector<Entry> entries() const;

  private:
    std::atomic<bool> on{false};
    mutable Mutex mutex{lock_rank::profileRegistry};
    std::map<std::string, Entry, std::less<>> table
        COPERNICUS_GUARDED_BY(mutex);
};

/**
 * RAII timer: measures from construction to destruction on the
 * monotonic clock and reports to the registry. When the registry is
 * disabled at construction, neither clock is read.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(std::string_view name,
                         ProfileRegistry &registry =
                             ProfileRegistry::global())
        : reg(&registry)
    {
        if (reg->enabled()) {
            label = name;
            start = Clock::now();
            active = true;
        }
    }

    ~ScopedTimer()
    {
        if (active) {
            const auto elapsed = Clock::now() - start;
            reg->record(
                label,
                std::chrono::duration<double>(elapsed).count());
        }
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    using Clock = std::chrono::steady_clock;

    ProfileRegistry *reg;
    std::string_view label;
    Clock::time_point start;
    bool active = false;
};

/**
 * The registry exported as a StatGroup named "profile": per entry
 * `<name>.calls`, `<name>.seconds` and `<name>.max_seconds`, so the
 * profile dump shares the text and JSON machinery of every other stat.
 */
class ProfileStats
{
  public:
    explicit ProfileStats(const ProfileRegistry &registry =
                              ProfileRegistry::global());

    const StatGroup &group() const { return grp; }

    void dump(std::ostream &out) const { grp.dump(out); }
    void dumpJson(std::ostream &out) const { grp.dumpJson(out); }

  private:
    StatGroup grp;
    std::vector<std::unique_ptr<ScalarStat>> owned;
};

/**
 * Emit collected thread-pool lane spans into @p sink as one trace
 * scope ("thread_pool") with one track per worker lane — the Chrome
 * trace then shows what each pool lane executed over wall-clock time
 * (microseconds in the viewer's "us" field). Spans are collected when
 * ThreadPool::setLaneRecording(true) is on; the CLI and benches enable
 * it under --trace and call this just before serialising.
 */
void emitWorkerLanes(TraceSink &sink,
                     const std::vector<ThreadPool::LaneSpan> &spans);

} // namespace copernicus

#endif // COPERNICUS_TRACE_PROFILE_HH
