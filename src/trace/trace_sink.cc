#include "trace/trace_sink.hh"

namespace copernicus {

TraceSink::~TraceSink() = default;

namespace {

TraceSink *globalSink = nullptr;

} // namespace

TraceSink *
activeTraceSink()
{
    return globalSink;
}

void
setActiveTraceSink(TraceSink *sink)
{
    globalSink = sink;
}

} // namespace copernicus
