#include "trace/trace_sink.hh"

namespace copernicus {

TraceSink::~TraceSink() = default;

namespace {

TraceSink *globalSink = nullptr;

/** Discards everything; only its address matters (see noTraceSink). */
class NoTraceSink final : public TraceSink
{
  public:
    void
    durationEvent(std::string_view, std::string_view, Cycles,
                  Cycles) override
    {
    }

    void counterEvent(std::string_view, Cycles, double) override {}
};

} // namespace

TraceSink *
activeTraceSink()
{
    return globalSink;
}

void
setActiveTraceSink(TraceSink *sink)
{
    globalSink = sink;
}

TraceSink &
noTraceSink()
{
    static NoTraceSink sink;
    return sink;
}

} // namespace copernicus
