#include "trace/flight_recorder.hh"

#include <fstream>
#include <ostream>

#include "common/status.hh"
#include "trace/span.hh"

namespace copernicus {

FlightRecorder &
FlightRecorder::global()
{
    static FlightRecorder recorder;
    return recorder;
}

void
FlightRecorder::setCapacity(std::size_t newCapacity)
{
    fatalIf(newCapacity == 0, "FlightRecorder capacity must be >= 1");
    const MutexLock lock(mutex);
    ring.clear();
    capacity = newCapacity;
    head = 0;
    total = 0;
}

void
FlightRecorder::record(std::string wideEventJson)
{
    const MutexLock lock(mutex);
    ++total;
    if (ring.size() < capacity) {
        ring.push_back(std::move(wideEventJson));
        return;
    }
    ring[head] = std::move(wideEventJson);
    head = (head + 1) % capacity;
}

std::vector<std::string>
FlightRecorder::snapshot() const
{
    const MutexLock lock(mutex);
    std::vector<std::string> events;
    events.reserve(ring.size());
    for (std::size_t i = 0; i < ring.size(); ++i)
        events.push_back(ring[(head + i) % ring.size()]);
    return events;
}

std::uint64_t
FlightRecorder::recorded() const
{
    const MutexLock lock(mutex);
    return total;
}

std::uint64_t
FlightRecorder::dropped() const
{
    const MutexLock lock(mutex);
    return total - ring.size();
}

void
FlightRecorder::clear()
{
    const MutexLock lock(mutex);
    ring.clear();
    head = 0;
    total = 0;
}

void
FlightRecorder::dump(std::ostream &out) const
{
    // Snapshot first so the dump never holds the ring lock while
    // formatting — a dump must not stall request threads.
    const std::vector<std::string> events = snapshot();
    const std::uint64_t eventsDropped = dropped();
    const SpanCollector &spans = SpanCollector::global();
    const std::vector<SpanRecord> spanRecords = spans.snapshot();
    const std::uint64_t spansDropped = spans.dropped();

    out << "{\"wide_events\": [";
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (i > 0)
            out << ", ";
        out << events[i];
    }
    out << "], \"wide_events_dropped\": " << eventsDropped
        << ", \"spans\": [";
    for (std::size_t i = 0; i < spanRecords.size(); ++i) {
        if (i > 0)
            out << ", ";
        spanRecords[i].writeJson(out);
    }
    out << "], \"spans_dropped\": " << spansDropped << '}';
}

void
FlightRecorder::dumpToFile(const std::string &path) const
{
    std::ofstream out(path);
    fatalIf(!out, "FlightRecorder: cannot open '" + path + "'");
    dump(out);
    out << '\n';
}

} // namespace copernicus
