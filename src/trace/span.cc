#include "trace/span.hh"

#include <ostream>

#include "common/json.hh"
#include "common/status.hh"

namespace copernicus {

void
SpanRecord::writeJson(std::ostream &out) const
{
    out << "{\"trace_id\": ";
    writeJsonString(out, traceIdToHex(traceId));
    out << ", \"span_id\": ";
    writeJsonString(out, traceIdToHex(spanId));
    out << ", \"parent_span_id\": ";
    writeJsonString(out, traceIdToHex(parentSpanId));
    out << ", \"name\": ";
    writeJsonString(out, name);
    out << ", \"track\": ";
    writeJsonString(out, track);
    out << ", \"start_us\": " << startUs << ", \"end_us\": " << endUs
        << '}';
}

SpanCollector &
SpanCollector::global()
{
    static SpanCollector collector;
    return collector;
}

void
SpanCollector::setCapacity(std::size_t newCapacity)
{
    fatalIf(newCapacity == 0, "SpanCollector capacity must be >= 1");
    const MutexLock lock(mutex);
    ring.clear();
    capacity = newCapacity;
    head = 0;
    total = 0;
}

void
SpanCollector::record(SpanRecord span)
{
    const MutexLock lock(mutex);
    ++total;
    if (ring.size() < capacity) {
        ring.push_back(std::move(span));
        return;
    }
    ring[head] = std::move(span);
    head = (head + 1) % capacity;
}

std::vector<SpanRecord>
SpanCollector::snapshot() const
{
    const MutexLock lock(mutex);
    std::vector<SpanRecord> spans;
    spans.reserve(ring.size());
    // Once the ring has lapped, head is the oldest retained slot.
    for (std::size_t i = 0; i < ring.size(); ++i)
        spans.push_back(ring[(head + i) % ring.size()]);
    return spans;
}

std::vector<SpanRecord>
SpanCollector::spansForTrace(std::uint64_t traceId) const
{
    std::vector<SpanRecord> spans;
    for (SpanRecord &span : snapshot()) {
        if (span.traceId == traceId)
            spans.push_back(std::move(span));
    }
    return spans;
}

std::uint64_t
SpanCollector::recorded() const
{
    const MutexLock lock(mutex);
    return total;
}

std::uint64_t
SpanCollector::dropped() const
{
    const MutexLock lock(mutex);
    return total - ring.size();
}

void
SpanCollector::clear()
{
    const MutexLock lock(mutex);
    ring.clear();
    head = 0;
    total = 0;
}

} // namespace copernicus
