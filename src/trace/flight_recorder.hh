/**
 * @file
 * Always-on in-memory flight recorder for the serve path.
 *
 * Post-mortems usually start after the interesting request is gone:
 * tracing was off, the histogram only says *that* something was slow.
 * The flight recorder closes that gap by always retaining the last N
 * wide events — one compact JSON object per finished request
 * (endpoint, trace id, deadline budget vs used, queue wait, cache
 * activity, outcome) — in a bounded ring, pre-serialised at record
 * time so a dump never has to consult live server state.
 *
 * dump() writes one JSON document combining the wide-event ring with
 * the SpanCollector's span ring, which is enough to reconstruct the
 * span tree and the request timeline of anything still retained. The
 * daemon wires dumps to SIGQUIT, std::terminate and the
 * `dump_flightrec` endpoint; dumping from a signal/terminate handler
 * is best-effort (it allocates), which is the accepted trade for
 * getting a usable artifact out of a dying process.
 */

#ifndef COPERNICUS_TRACE_FLIGHT_RECORDER_HH
#define COPERNICUS_TRACE_FLIGHT_RECORDER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/lock_order.hh"
#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace copernicus {

/** Bounded ring of per-request wide events; see file comment. */
class FlightRecorder
{
  public:
    /** The process-wide recorder the server records into. */
    static FlightRecorder &global();

    FlightRecorder() = default;
    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Resize the ring (drops current contents). Capacity >= 1. */
    void setCapacity(std::size_t capacity);

    /**
     * Retain one wide event. @p wideEventJson must be a complete,
     * newline-free JSON object; it is stored verbatim.
     */
    void record(std::string wideEventJson);

    /** Retained wide events, oldest first. */
    std::vector<std::string> snapshot() const;

    /** Wide events recorded since construction/clear. */
    std::uint64_t recorded() const;

    /** Wide events overwritten by ring wrap-around. */
    std::uint64_t dropped() const;

    void clear();

    /**
     * The whole black box as one compact JSON document:
     * `{"wide_events": [...], "wide_events_dropped": N,
     *   "spans": [...], "spans_dropped": M}` — spans come from
     * SpanCollector::global().
     */
    void dump(std::ostream &out) const;

    /** dump() to @p path; failure to open is a FatalError. */
    void dumpToFile(const std::string &path) const;

  private:
    mutable Mutex mutex{lock_rank::flightRecorder};
    std::vector<std::string> ring COPERNICUS_GUARDED_BY(mutex);
    std::size_t capacity COPERNICUS_GUARDED_BY(mutex) = 512;
    std::size_t head COPERNICUS_GUARDED_BY(mutex) = 0;
    std::uint64_t total COPERNICUS_GUARDED_BY(mutex) = 0;
};

} // namespace copernicus

#endif // COPERNICUS_TRACE_FLIGHT_RECORDER_HH
