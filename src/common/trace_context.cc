#include "common/trace_context.hh"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace copernicus {

namespace {

thread_local TraceContext tl_context;

/**
 * One counter feeds both trace and span ids. Seeding from the wall
 * clock makes ids from successive daemon runs distinguishable in
 * post-mortem dumps; the shifted seed leaves ~2^24 allocations before
 * two runs could collide, far beyond any process lifetime here.
 */
std::atomic<std::uint64_t> &
idCounter()
{
    static std::atomic<std::uint64_t> counter = [] {
        const auto now =
            std::chrono::system_clock::now().time_since_epoch();
        const auto seconds =
            std::chrono::duration_cast<std::chrono::seconds>(now)
                .count();
        return (static_cast<std::uint64_t>(seconds) << 24) | 1;
    }();
    return counter;
}

std::uint64_t
nextId()
{
    // fetch_add wraps; skip the reserved 0 if the counter ever laps.
    std::uint64_t id =
        idCounter().fetch_add(1, std::memory_order_relaxed);
    while (id == 0)
        id = idCounter().fetch_add(1, std::memory_order_relaxed);
    return id;
}

} // namespace

TraceContext
currentTraceContext()
{
    return tl_context;
}

void
setCurrentTraceContext(const TraceContext &context)
{
    tl_context = context;
}

std::uint64_t
newTraceId()
{
    return nextId();
}

std::uint64_t
newSpanId()
{
    return nextId();
}

std::uint64_t
observeNowUs()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

std::string
traceIdToHex(std::uint64_t id)
{
    char buf[2 * sizeof(id) + 1];
    std::snprintf(buf, sizeof(buf), "%llx",
                  static_cast<unsigned long long>(id));
    return buf;
}

std::uint64_t
traceIdFromHex(const std::string &hex)
{
    if (hex.empty() || hex.size() > 16)
        return 0;
    std::uint64_t id = 0;
    for (char c : hex) {
        std::uint64_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<std::uint64_t>(c - 'a') + 10;
        else if (c >= 'A' && c <= 'F')
            digit = static_cast<std::uint64_t>(c - 'A') + 10;
        else
            return 0;
        id = (id << 4) | digit;
    }
    return id;
}

} // namespace copernicus
