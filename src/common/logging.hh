/**
 * @file
 * Minimal leveled logging for status messages.
 *
 * Mirrors gem5's inform()/warn() distinction: inform() is normal operating
 * status, warn() flags behaviour that might work but deserves attention,
 * error() reports a definite problem the program survives. Output goes to
 * stderr so that bench binaries can keep stdout clean for table data.
 *
 * The initial minimum level can be set from the environment:
 * COPERNICUS_LOG_LEVEL=debug|info|warn|error. Timestamps (seconds since
 * the first message, for correlating with --profile dumps) are off by
 * default and enabled with setLogTimestamps() or
 * COPERNICUS_LOG_TIMESTAMPS=1.
 *
 * Thread safety: every entry point may be called from any thread. Line
 * emission is serialized behind a mutex, so concurrent messages never
 * interleave within a line (the serve daemon logs from acceptor,
 * connection and worker threads simultaneously).
 */

#ifndef COPERNICUS_COMMON_LOGGING_HH
#define COPERNICUS_COMMON_LOGGING_HH

#include <string>

namespace copernicus {

/** Severity levels, in increasing order of importance. */
enum class LogLevel { Debug, Info, Warn, Error };

/**
 * Set the minimum level that is actually printed.
 *
 * @param level Messages below this level are dropped.
 */
void setLogLevel(LogLevel level);

/** Current minimum printed level. */
LogLevel logLevel();

/** Prefix every message with elapsed seconds since the first message. */
void setLogTimestamps(bool enabled);

/** True when timestamp prefixes are enabled. */
bool logTimestamps();

/** Print a debug-level message (dropped unless level is Debug). */
void debug(const std::string &msg);

/** Print an informational status message. */
void inform(const std::string &msg);

/** Print a warning about suspicious but non-fatal behaviour. */
void warn(const std::string &msg);

/** Print an error the program recovers from (highest level). */
void error(const std::string &msg);

} // namespace copernicus

#endif // COPERNICUS_COMMON_LOGGING_HH
