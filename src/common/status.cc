#include "common/status.hh"

namespace copernicus {

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

} // namespace copernicus
