/**
 * @file
 * Fundamental scalar types shared by every Copernicus module.
 *
 * The hardware platform modelled by Copernicus streams 32-bit values and
 * 32-bit indices (Section 4.1 of the paper); using fixed-width types here
 * keeps the byte-accounting of the AXI transfer model exact.
 */

#ifndef COPERNICUS_COMMON_TYPES_HH
#define COPERNICUS_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace copernicus {

/** Matrix element type streamed through the dot-product engine. */
using Value = float;

/** Row/column index type stored in format metadata streams. */
using Index = std::uint32_t;

/** Cycle counts produced by the HLS schedule model. */
using Cycles = std::uint64_t;

/** Byte counts for the memory-transfer model. */
using Bytes = std::uint64_t;

/** Bytes occupied by one matrix value on the wire and in BRAM. */
inline constexpr std::size_t valueBytes = sizeof(Value);

/** Bytes occupied by one index on the wire and in BRAM. */
inline constexpr std::size_t indexBytes = sizeof(Index);

static_assert(valueBytes == 4 && indexBytes == 4,
              "The AXI model assumes 32-bit values and indices");

} // namespace copernicus

#endif // COPERNICUS_COMMON_TYPES_HH
