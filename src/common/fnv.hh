/**
 * @file
 * FNV-1a hashing shared by every content-addressed surface.
 *
 * The encode cache (PR 5) fingerprints tiles by hashing their packed
 * canonical nonzero stream; the binary matrix container and the sweep
 * journal (src/store) reuse the exact same byte-level hash so a
 * container's content hash, a journal's matrix identity and a cache
 * key all agree on what "the same triplets" means. One definition, in
 * one header, keeps those fingerprints interchangeable forever.
 */

#ifndef COPERNICUS_COMMON_FNV_HH
#define COPERNICUS_COMMON_FNV_HH

#include <cstddef>
#include <cstdint>

namespace copernicus {

/** FNV-1a 64-bit offset basis. */
inline constexpr std::uint64_t fnvOffsetBasis = 0xcbf29ce484222325ULL;

/** FNV-1a 64-bit prime. */
inline constexpr std::uint64_t fnvPrime = 0x100000001b3ULL;

/**
 * Fold @p size raw bytes at @p data into @p hash (FNV-1a).
 *
 * Chain calls to hash a logical stream incrementally; start from
 * fnvOffsetBasis for a fresh fingerprint.
 */
inline std::uint64_t
fnv1a(const void *data, std::size_t size,
      std::uint64_t hash = fnvOffsetBasis)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= fnvPrime;
    }
    return hash;
}

/** Fold one trivially-copyable value's bytes into @p hash. */
template <typename T>
inline std::uint64_t
fnv1aValue(const T &value, std::uint64_t hash = fnvOffsetBasis)
{
    return fnv1a(&value, sizeof(T), hash);
}

} // namespace copernicus

#endif // COPERNICUS_COMMON_FNV_HH
