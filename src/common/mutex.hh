/**
 * @file
 * Annotated mutex wrappers: the capability layer of the thread-safety
 * contract rollout.
 *
 * libstdc++'s std::mutex carries no clang capability annotations, so
 * `-Wthread-safety` cannot see through std::lock_guard at all. These
 * wrappers are the thinnest possible annotated shim: Mutex is a
 * std::mutex declared as a capability, MutexLock is an annotated
 * scoped acquisition, and both compile to exactly the std:: equivalents
 * (everything inlines; no state beyond the optional lock-order rank).
 *
 * Members protected by a Mutex are declared with
 * COPERNICUS_GUARDED_BY(mutex) (common/thread_annotations.hh); private
 * helpers that expect the lock held take COPERNICUS_REQUIRES(mutex).
 * The CI thread-safety job (clang, -Wthread-safety -Werror) then
 * rejects any access that cannot prove its capability.
 *
 * Debug builds additionally assert the global lock hierarchy: a Mutex
 * constructed with a rank (common/lock_order.hh) panics when acquired
 * out of order, so a latent deadlock fails deterministically in tests
 * instead of intermittently in production.
 *
 * Condition-variable-paired mutexes (thread_pool's sleep mutex, the
 * server's admission mutex) keep std::mutex + std::unique_lock: the
 * wait/notify dance releases and reacquires inside the waiter, which
 * clang's static analysis cannot model without lying to it. Those two
 * sites are documented exclusions, still covered by tsan.
 */

#ifndef COPERNICUS_COMMON_MUTEX_HH
#define COPERNICUS_COMMON_MUTEX_HH

#include <mutex>

#include "common/lock_order.hh"
#include "common/thread_annotations.hh"

namespace copernicus {

/** An annotated std::mutex with an optional lock-order rank. */
class COPERNICUS_CAPABILITY("mutex") Mutex
{
  public:
    /** @param rank Lock-order rank (lock_order.hh); 0 = unranked. */
    explicit Mutex(int rank = 0) : orderRank(rank) {}

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() COPERNICUS_ACQUIRE()
    {
        noteLockAcquired(orderRank);
        m.lock();
    }

    void
    unlock() COPERNICUS_RELEASE()
    {
        m.unlock();
        noteLockReleased(orderRank);
    }

    bool
    try_lock() COPERNICUS_TRY_ACQUIRE(true)
    {
        if (!m.try_lock())
            return false;
        noteLockAcquired(orderRank);
        return true;
    }

    int rank() const { return orderRank; }

  private:
    std::mutex m;
    const int orderRank;
};

/** RAII scoped acquisition of a Mutex (std::lock_guard equivalent). */
class COPERNICUS_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) COPERNICUS_ACQUIRE(mutex)
        : mu(mutex)
    {
        mu.lock();
    }

    ~MutexLock() COPERNICUS_RELEASE() { mu.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu;
};

} // namespace copernicus

#endif // COPERNICUS_COMMON_MUTEX_HH
