#include "common/lock_order.hh"

#include <algorithm>

#include "common/status.hh"

namespace copernicus {

const std::vector<LockLevel> &
lockOrderRegistry()
{
    static const std::vector<LockLevel> registry = {
        {"serve.loop", lock_rank::serveLoop},
        {"serve.tx", lock_rank::serveTx},
        {"serve.streams", lock_rank::serveStreams},
        {"serve.admit", lock_rank::serveAdmit},
        {"serve.memo", lock_rank::serveMemo},
        {"serve.inflight", lock_rank::serveInflight},
        {"serve.spans", lock_rank::serveSpans},
        {"study.cache", lock_rank::studyCache},
        {"store.sweep_journal", lock_rank::sweepJournal},
        {"encode_cache.shard", lock_rank::encodeCacheShard},
        {"stat.distribution", lock_rank::statDistribution},
        {"trace.span_collector", lock_rank::spanCollector},
        {"trace.flight_recorder", lock_rank::flightRecorder},
        {"trace.profile_registry", lock_rank::profileRegistry},
    };
    return registry;
}

namespace {

#if !defined(NDEBUG) || defined(COPERNICUS_DEBUG_CHECKS)
constexpr bool orderChecks = true;
#else
constexpr bool orderChecks = false;
#endif

/** Ranks held by the calling thread, acquisition order. */
thread_local std::vector<int> heldRanks;

} // namespace

void
noteLockAcquired(int rank)
{
    if (!orderChecks || rank <= 0)
        return;
    const int held = currentMaxHeldRank();
    panicIf(held >= rank,
            "lock-order violation: acquiring rank " +
                std::to_string(rank) + " while holding rank " +
                std::to_string(held) +
                " (locks must be taken in strictly increasing rank "
                "order; see common/lock_order.hh)");
    heldRanks.push_back(rank);
}

void
noteLockReleased(int rank)
{
    if (!orderChecks || rank <= 0)
        return;
    const auto it =
        std::find(heldRanks.rbegin(), heldRanks.rend(), rank);
    if (it != heldRanks.rend())
        heldRanks.erase(std::next(it).base());
}

int
currentMaxHeldRank()
{
    if (!orderChecks || heldRanks.empty())
        return 0;
    return *std::max_element(heldRanks.begin(), heldRanks.end());
}

} // namespace copernicus
