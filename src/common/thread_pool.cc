#include "common/thread_pool.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace copernicus {

namespace {

/** Set while a thread executes a pool task; gates nested fan-out. */
thread_local bool tl_in_pool_task = false;

struct TaskScope
{
    TaskScope() { tl_in_pool_task = true; }
    ~TaskScope() { tl_in_pool_task = false; }
};

std::atomic<unsigned> jobs_override{0};

/** Process-wide counters; pools are short-lived, the totals are not. */
std::atomic<std::uint64_t> ctr_tasks{0};
std::atomic<std::uint64_t> ctr_steals{0};
std::atomic<std::uint64_t> ctr_parallel_fors{0};
std::atomic<std::uint64_t> ctr_serial_loops{0};

/** Lane-span collection (off by default; enabled under --trace). */
std::atomic<bool> lanes_enabled{false};
std::mutex lane_mutex;
std::vector<ThreadPool::LaneSpan> lane_spans;

std::chrono::steady_clock::time_point
laneEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

std::uint64_t
laneNowUs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - laneEpoch())
            .count());
}

/** State of one in-flight parallelFor, on the caller's stack. */
struct ForJob
{
    std::mutex mutex;
    std::condition_variable done;
    std::size_t pending = 0; ///< chunks not yet finished, under mutex
    std::exception_ptr error;
    std::atomic<bool> failed{false};
};

} // namespace

unsigned
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
setJobsOverride(unsigned jobs)
{
    jobs_override.store(jobs, std::memory_order_relaxed);
}

unsigned
effectiveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    const unsigned override_jobs =
        jobs_override.load(std::memory_order_relaxed);
    if (override_jobs > 0)
        return override_jobs;
    static const unsigned env_jobs = [] {
        const char *env = std::getenv("COPERNICUS_JOBS");
        if (env == nullptr)
            return 0U;
        const long parsed = std::strtol(env, nullptr, 10);
        return parsed > 0 ? static_cast<unsigned>(parsed) : 0U;
    }();
    if (env_jobs > 0)
        return env_jobs;
    return hardwareJobs();
}

ThreadPool::ThreadPool(unsigned jobs) : njobs(effectiveJobs(jobs))
{
    laneEpoch(); // pin the lane clock before any worker starts
    if (njobs <= 1)
        return;
    lanes.reserve(njobs);
    for (unsigned slot = 0; slot < njobs; ++slot)
        lanes.push_back(std::make_unique<Lane>());
    workers.reserve(njobs - 1);
    for (unsigned slot = 1; slot < njobs; ++slot)
        workers.emplace_back([this, slot] { workerLoop(slot); });
}

ThreadPool::~ThreadPool()
{
    if (njobs <= 1)
        return;
    // Drain submit() tasks nobody is waiting on, then stop.
    while (runOneTask(0)) {
    }
    {
        const std::lock_guard<std::mutex> lock(sleepMutex);
        stopping.store(true, std::memory_order_release);
    }
    sleepCv.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(0);
    return pool;
}

bool
ThreadPool::inPoolTask()
{
    return tl_in_pool_task;
}

ThreadPool::Counters
ThreadPool::globalCounters()
{
    Counters counters;
    counters.tasksRun = ctr_tasks.load(std::memory_order_relaxed);
    counters.steals = ctr_steals.load(std::memory_order_relaxed);
    counters.parallelFors =
        ctr_parallel_fors.load(std::memory_order_relaxed);
    counters.serialLoops =
        ctr_serial_loops.load(std::memory_order_relaxed);
    return counters;
}

void
ThreadPool::setLaneRecording(bool enabled)
{
    lanes_enabled.store(enabled, std::memory_order_relaxed);
}

bool
ThreadPool::laneRecording()
{
    return lanes_enabled.load(std::memory_order_relaxed);
}

std::vector<ThreadPool::LaneSpan>
ThreadPool::drainLaneSpans()
{
    const std::lock_guard<std::mutex> lock(lane_mutex);
    std::vector<LaneSpan> drained;
    drained.swap(lane_spans);
    return drained;
}

void
ThreadPool::pushTask(unsigned slot, std::function<void()> task)
{
    Lane &lane = *lanes[slot % lanes.size()];
    {
        const MutexLock lock(lane.mutex);
        lane.queue.push_back(std::move(task));
    }
    queued.fetch_add(1, std::memory_order_release);
}

unsigned
ThreadPool::nextSubmitSlot()
{
    return submitSlot.fetch_add(1, std::memory_order_relaxed) % njobs;
}

void
ThreadPool::wake()
{
    // Lock so a worker between its predicate check and its block
    // cannot miss the notification (queued is read outside the mutex).
    const std::lock_guard<std::mutex> lock(sleepMutex);
    sleepCv.notify_all();
}

bool
ThreadPool::runOneTask(unsigned slot)
{
    std::function<void()> task;
    // Own deque first (front = newest, cache-warm)...
    {
        Lane &own = *lanes[slot];
        const MutexLock lock(own.mutex);
        if (!own.queue.empty()) {
            task = std::move(own.queue.front());
            own.queue.pop_front();
        }
    }
    // ...then steal the oldest task from the next busy lane.
    if (!task) {
        for (unsigned i = 1; i < njobs && !task; ++i) {
            Lane &victim = *lanes[(slot + i) % njobs];
            const MutexLock lock(victim.mutex);
            if (!victim.queue.empty()) {
                task = std::move(victim.queue.back());
                victim.queue.pop_back();
                ctr_steals.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }
    if (!task)
        return false;
    queued.fetch_sub(1, std::memory_order_acquire);

    const bool record = laneRecording();
    const std::uint64_t start = record ? laneNowUs() : 0;
    {
        const TaskScope scope;
        task();
    }
    if (record) {
        const LaneSpan span{slot, start, laneNowUs()};
        const std::lock_guard<std::mutex> lock(lane_mutex);
        lane_spans.push_back(span);
    }
    ctr_tasks.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
ThreadPool::workerLoop(unsigned slot)
{
    for (;;) {
        if (runOneTask(slot))
            continue;
        std::unique_lock<std::mutex> lock(sleepMutex);
        sleepCv.wait(lock, [this] {
            return stopping.load(std::memory_order_acquire) ||
                   queued.load(std::memory_order_acquire) > 0;
        });
        if (stopping.load(std::memory_order_acquire) &&
            queued.load(std::memory_order_acquire) == 0) {
            return;
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (njobs <= 1 || n == 1 || tl_in_pool_task) {
        ctr_serial_loops.fetch_add(1, std::memory_order_relaxed);
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    ctr_parallel_fors.fetch_add(1, std::memory_order_relaxed);

    // Chunk so each lane sees a few tasks (steal granularity) without
    // per-index scheduling overhead.
    const std::size_t chunk =
        std::max<std::size_t>(1, n / (std::size_t(njobs) * 4));
    const std::size_t chunks = (n + chunk - 1) / chunk;

    ForJob job;
    job.pending = chunks;
    // Chunks inherit the caller's trace identity: a span opened inside
    // the body parents under the span that issued the parallelFor, no
    // matter which lane runs the chunk.
    const TraceContext context = currentTraceContext();
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(n, begin + chunk);
        pushTask(static_cast<unsigned>(c % njobs),
                 [&job, &body, &context, begin, end] {
                     if (!job.failed.load(std::memory_order_relaxed)) {
                         const TraceContextScope scope(context);
                         try {
                             for (std::size_t i = begin; i < end; ++i)
                                 body(i);
                         } catch (...) {
                             const std::lock_guard<std::mutex> lock(
                                 job.mutex);
                             if (!job.error)
                                 job.error = std::current_exception();
                             job.failed.store(
                                 true, std::memory_order_relaxed);
                         }
                     }
                     const std::lock_guard<std::mutex> lock(job.mutex);
                     if (--job.pending == 0)
                         job.done.notify_all();
                 });
    }
    wake();

    // The caller is the last lane: help until the loop drains.
    for (;;) {
        {
            const std::lock_guard<std::mutex> lock(job.mutex);
            if (job.pending == 0)
                break;
        }
        if (!runOneTask(0)) {
            std::unique_lock<std::mutex> lock(job.mutex);
            job.done.wait_for(lock, std::chrono::milliseconds(2),
                              [&job] { return job.pending == 0; });
        }
    }
    if (job.error)
        std::rethrow_exception(job.error);
}

ThreadPoolStats::ThreadPoolStats() : grp("thread_pool")
{
    const ThreadPool::Counters counters = ThreadPool::globalCounters();
    auto add = [this](const std::string &name, const char *desc,
                      double value) {
        auto stat = std::make_unique<ScalarStat>(grp, name, desc);
        *stat = value;
        owned.push_back(std::move(stat));
    };
    add("tasks_run", "pool tasks executed on any lane",
        static_cast<double>(counters.tasksRun));
    add("steals", "tasks taken from another lane's deque",
        static_cast<double>(counters.steals));
    add("parallel_fors", "parallelFor calls that fanned out",
        static_cast<double>(counters.parallelFors));
    add("serial_loops",
        "parallelFor calls that ran serially (jobs<=1 or nested)",
        static_cast<double>(counters.serialLoops));
}

} // namespace copernicus
