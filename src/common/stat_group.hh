/**
 * @file
 * A small gem5-style statistics package: named, documented statistics
 * registered in groups and dumped in the classic
 * `name  value  # description` format.
 *
 * Simulator components expose their counters through these types so
 * downstream tooling can scrape one uniform dump instead of poking at
 * result structs; analysis/stats_report.hh builds groups from pipeline
 * results.
 */

#ifndef COPERNICUS_COMMON_STAT_GROUP_HH
#define COPERNICUS_COMMON_STAT_GROUP_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "common/lock_order.hh"
#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace copernicus {

class StatGroup;

/** Base class for all statistics: a name and a description. */
class StatBase
{
  public:
    /**
     * @param group Group to register with.
     * @param name Dotted stat name ("pipeline.memory_cycles").
     * @param desc One-line description for the dump.
     */
    StatBase(StatGroup &group, std::string name, std::string desc);

    /**
     * Unregisters from the group, so a stat whose derived constructor
     * throws after the base is built (e.g. a DistributionStat with an
     * invalid range) doesn't leave a dangling pointer behind in the
     * group's member list.
     */
    virtual ~StatBase();

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return _name; }
    const std::string &description() const { return _desc; }

    /** Print one or more dump lines for this stat. */
    virtual void print(std::ostream &out) const = 0;

    /**
     * Write this stat as one JSON object, e.g.
     * `{"name": "hits", "kind": "scalar", "desc": "...", "value": 42}`.
     */
    virtual void writeJson(std::ostream &out) const = 0;

  private:
    StatGroup &_group;
    std::string _name;
    std::string _desc;
};

/**
 * Lock-free add for atomic doubles (CAS loop): works on any libstdc++
 * without relying on C++20's std::atomic<double>::fetch_add.
 */
inline void
atomicAdd(std::atomic<double> &target, double delta)
{
    double seen = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(seen, seen + delta,
                                         std::memory_order_relaxed)) {
    }
}

/**
 * A plain scalar counter/value. Accumulation (+=, =) is atomic so
 * thread-pool workers can bump shared counters directly; reads during
 * concurrent writes see a consistent double.
 */
class ScalarStat : public StatBase
{
  public:
    using StatBase::StatBase;

    ScalarStat &
    operator+=(double delta)
    {
        atomicAdd(total, delta);
        return *this;
    }

    ScalarStat &
    operator=(double v)
    {
        total.store(v, std::memory_order_relaxed);
        return *this;
    }

    double value() const { return total.load(std::memory_order_relaxed); }

    void print(std::ostream &out) const override;
    void writeJson(std::ostream &out) const override;

  private:
    std::atomic<double> total{0};
};

/** Mean over sampled values. sample() is atomic (see ScalarStat). */
class AverageStat : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        atomicAdd(sum, v);
        count.fetch_add(1, std::memory_order_relaxed);
    }

    std::uint64_t
    samples() const
    {
        return count.load(std::memory_order_relaxed);
    }

    double
    mean() const
    {
        const std::uint64_t n = samples();
        return n == 0 ? 0.0
                      : sum.load(std::memory_order_relaxed) /
                            static_cast<double>(n);
    }

    void print(std::ostream &out) const override;
    void writeJson(std::ostream &out) const override;

  private:
    std::atomic<double> sum{0};
    std::atomic<std::uint64_t> count{0};
};

/**
 * Fixed-bucket distribution with underflow/overflow tracking.
 *
 * Every accessor is mutex-guarded so pool workers can sample
 * concurrently with readers; concurrent consumers (the metrics scrape,
 * the drain flush, --top) should take one snapshot() and compute from
 * it — one short critical section per scrape, never a lock held while
 * formatting. buckets() returns a reference and remains the one
 * post-join accessor: call it only after the writers are done.
 */
class DistributionStat : public StatBase
{
  public:
    /**
     * An immutable copy of the distribution, decoupled from the live
     * mutex: percentiles, merging and serialisation all happen on
     * snapshots so a scrape never blocks request threads beyond the
     * copy itself. merge() folds another snapshot of an identically
     * configured distribution in (same lo/hi/bucket count), which is
     * how per-endpoint latency histograms aggregate into one.
     */
    struct Snapshot
    {
        double lo = 0;
        double hi = 0;
        std::vector<std::uint64_t> bins;
        std::uint64_t underflow = 0;
        std::uint64_t overflow = 0;
        std::uint64_t count = 0;
        double min = std::numeric_limits<double>::infinity();
        double max = -std::numeric_limits<double>::infinity();
        double sum = 0;

        /**
         * Same semantics and edge cases as
         * DistributionStat::percentile(), computed on the snapshot.
         */
        double percentile(double p) const;

        /** Fold @p other in; FatalError on mismatched bucket config. */
        void merge(const Snapshot &other);
    };

    /**
     * @param lo Inclusive lower bound of the first bucket.
     * @param hi Exclusive upper bound of the last bucket.
     * @param bucketCount Number of equal-width buckets (>= 1).
     */
    DistributionStat(StatGroup &group, std::string name,
                     std::string desc, double lo, double hi,
                     std::size_t bucketCount);

    void sample(double v);

    /** One consistent copy of the whole distribution. */
    Snapshot snapshot() const;

    std::uint64_t samples() const;
    double minSample() const;
    double maxSample() const;
    double sumSamples() const;

    /**
     * Post-join accessor (see class comment): returns a reference into
     * the live bins, so it is deliberately outside the capability
     * analysis — callers must be past the last concurrent sample().
     */
    const std::vector<std::uint64_t> &
    buckets() const COPERNICUS_NO_THREAD_SAFETY_ANALYSIS
    {
        return bins;
    }

    /**
     * Sentinel returned by percentile() on an empty distribution: a
     * quiet NaN, so a latency histogram that never saw a request reads
     * as "no data" instead of a bogus number. Test with std::isnan;
     * writeJsonNumber() maps it to 0 so exported JSON still parses.
     */
    static double emptyPercentile();

    /**
     * The p-th percentile with linear interpolation inside buckets.
     *
     * Underflow mass is spread over [minSample, lo) and overflow mass
     * over [hi, maxSample], so tail percentiles stay meaningful.
     *
     * Edge cases, pinned by tests/test_stat_group.cc: with no samples
     * recorded every percentile returns the emptyPercentile() sentinel
     * (never UB, never a throw); when all samples are equal — in
     * particular a single sample — every percentile returns exactly
     * that sample, with no bucket interpolation error.
     *
     * @param p Percentile in [0, 100]; outside that range is a
     *        FatalError.
     */
    double percentile(double p) const;

    void print(std::ostream &out) const override;
    void writeJson(std::ostream &out) const override;

  private:
    double percentileLocked(double p) const
        COPERNICUS_REQUIRES(mutex);
    Snapshot snapshotLocked() const COPERNICUS_REQUIRES(mutex);

    double lo;
    double hi;
    std::vector<std::uint64_t> bins COPERNICUS_GUARDED_BY(mutex);
    std::uint64_t underflow COPERNICUS_GUARDED_BY(mutex) = 0;
    std::uint64_t overflow COPERNICUS_GUARDED_BY(mutex) = 0;
    std::uint64_t count COPERNICUS_GUARDED_BY(mutex) = 0;
    double min_seen COPERNICUS_GUARDED_BY(mutex) =
        std::numeric_limits<double>::infinity();
    double max_seen COPERNICUS_GUARDED_BY(mutex) =
        -std::numeric_limits<double>::infinity();
    double sum COPERNICUS_GUARDED_BY(mutex) = 0;
    mutable Mutex mutex{lock_rank::statDistribution};
};

/** A named collection of statistics, dumped together. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }

    /** Called by StatBase; duplicate names are a FatalError. */
    void registerStat(StatBase *stat);

    /** Called by ~StatBase; absent stats are ignored. */
    void unregisterStat(StatBase *stat);

    /** All registered stats, registration order. */
    const std::vector<StatBase *> &stats() const { return members; }

    /** Find a stat by name; nullptr when absent. */
    const StatBase *find(const std::string &name) const;

    /** Dump every stat in registration order. */
    void dump(std::ostream &out) const;

    /**
     * Dump as one JSON object:
     * `{"group": "<name>", "stats": [ ... ]}` with one entry per stat
     * in registration order.
     */
    void dumpJson(std::ostream &out) const;

  private:
    std::string _name;
    std::vector<StatBase *> members;
};

/**
 * Write several groups as one JSON document:
 * `{"groups": [ {...}, {...} ]}`. This is the shape behind the
 * `--stats-json` flag of copernicus_cli and the bench binaries.
 */
void dumpGroupsJson(std::ostream &out,
                    const std::vector<const StatGroup *> &groups);

} // namespace copernicus

#endif // COPERNICUS_COMMON_STAT_GROUP_HH
