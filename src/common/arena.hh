/**
 * @file
 * Bump arena for the encode hot path.
 *
 * The sparse-native codecs (PR 5) spend a measurable share of their
 * per-tile budget in the allocator: scratch buffers (sort keys, block
 * scatter planes, touched sets) and stream staging are requested and
 * released once per tile, tens of thousands of times per sweep. The
 * arena replaces that churn with pointer bumps into thread-local
 * chunks that are *rewound*, never freed, between tiles.
 *
 * Contract (see DESIGN section 11):
 *
 *  - An Arena hands out raw, suitably-aligned storage via alloc<T>().
 *    Nothing is constructed or destroyed: only trivially-destructible
 *    types may live in an arena.
 *  - ArenaScope is the unit of reuse. Constructing one records the
 *    high-water mark; destruction rewinds to it, so everything
 *    allocated inside the scope is reclaimed at once. Scopes nest
 *    (LIFO), matching the codecs' call structure.
 *  - encodeArena() is the thread-local arena the codecs and the
 *    second-stage compressor share. It is confined to its thread:
 *    arena pointers must not escape the enclosing ArenaScope or cross
 *    threads. Each pool worker gets its own arena, so the parallel
 *    sweep paths need no locking.
 *  - Chunks grow geometrically and are retained across scopes, so a
 *    steady-state sweep performs zero allocator calls per tile.
 */

#ifndef COPERNICUS_COMMON_ARENA_HH
#define COPERNICUS_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/status.hh"

namespace copernicus {

/** Chunked bump allocator; see file comment for the contract. */
class Arena
{
  public:
    /** @param firstChunkBytes Size of the first chunk (doubles after). */
    explicit Arena(std::size_t firstChunkBytes = 16 * 1024)
        : nextChunkBytes(firstChunkBytes == 0 ? 1 : firstChunkBytes)
    {}

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * @p count default-initialised (i.e. uninitialised for scalar
     * types) elements of T. T must be trivially destructible: the
     * arena never runs destructors.
     */
    template <typename T>
    T *
    alloc(std::size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "Arena storage is rewound, never destroyed");
        return static_cast<T *>(allocate(count * sizeof(T), alignof(T)));
    }

    /** Raw storage, @p align must be a power of two. */
    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        if (chunk < chunks.size()) {
            const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(
                chunks[chunk].data.get());
            const std::size_t aligned =
                (offset + (align - 1)) & ~(align - 1);
            if (aligned + bytes <= chunks[chunk].size) {
                offset = aligned + bytes;
                return reinterpret_cast<void *>(base + aligned);
            }
        }
        return allocateSlow(bytes, align);
    }

    /** Bytes currently reserved across all chunks. */
    std::size_t
    reservedBytes() const
    {
        std::size_t total = 0;
        for (const Chunk &c : chunks)
            total += c.size;
        return total;
    }

  private:
    friend class ArenaScope;

    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
    };

    /** Rewind cursor: (chunk index, offset within it). */
    struct Mark
    {
        std::size_t chunk = 0;
        std::size_t offset = 0;
    };

    Mark
    mark() const
    {
        return {chunk, offset};
    }

    void
    rewind(Mark m)
    {
        chunk = m.chunk;
        offset = m.offset;
    }

    void *allocateSlow(std::size_t bytes, std::size_t align);

    std::vector<Chunk> chunks;
    std::size_t chunk = 0;  ///< chunk the cursor is in
    std::size_t offset = 0; ///< bump offset within that chunk
    std::size_t nextChunkBytes;
};

/**
 * RAII rewind point: everything allocated from @p arena inside this
 * scope's lifetime is reclaimed (chunks retained) on destruction.
 * Scopes must nest LIFO on their arena.
 */
class ArenaScope
{
  public:
    explicit ArenaScope(Arena &a) : arena(&a), saved(a.mark()) {}
    ~ArenaScope() { arena->rewind(saved); }

    ArenaScope(const ArenaScope &) = delete;
    ArenaScope &operator=(const ArenaScope &) = delete;

  private:
    Arena *arena;
    Arena::Mark saved;
};

/**
 * Fixed-capacity growable span over arena storage. A thin push_back
 * facade for scratch construction; never reallocates, so the caller
 * sizes the capacity from TileStats up front. Debug builds check the
 * capacity; release builds trust it (the encode hot path).
 */
template <typename T>
class ArenaVec
{
  public:
    ArenaVec() = default;

    ArenaVec(Arena &arena, std::size_t capacity)
        : buf(arena.alloc<T>(capacity)), cap(capacity)
    {}

    void
    push_back(T v)
    {
        COPERNICUS_DCHECK(count < cap, "ArenaVec capacity exceeded");
        buf[count++] = v;
    }

    T &operator[](std::size_t i) { return buf[i]; }
    const T &operator[](std::size_t i) const { return buf[i]; }

    T *data() { return buf; }
    const T *data() const { return buf; }
    T *begin() { return buf; }
    T *end() { return buf + count; }
    const T *begin() const { return buf; }
    const T *end() const { return buf + count; }

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    void clear() { count = 0; }

  private:
    T *buf = nullptr;
    std::size_t cap = 0;
    std::size_t count = 0;
};

/**
 * The thread-local arena of the encode/compress hot path. Confined to
 * the calling thread; callers bracket per-tile work in an ArenaScope.
 */
Arena &encodeArena();

} // namespace copernicus

#endif // COPERNICUS_COMMON_ARENA_HH
