/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Copernicus benches must be reproducible run-to-run, so all generators
 * take an explicit Rng seeded from the experiment configuration rather
 * than std::random_device. The core generator is xoshiro256**, seeded via
 * SplitMix64 as its authors recommend.
 */

#ifndef COPERNICUS_COMMON_RNG_HH
#define COPERNICUS_COMMON_RNG_HH

#include <cstdint>

namespace copernicus {

/** SplitMix64 step, used to expand a single seed into xoshiro state. */
constexpr std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** generator with convenience draws for workload synthesis.
 *
 * Satisfies UniformRandomBitGenerator so it can also drive <random>
 * distributions where needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL)
    {
        std::uint64_t sm = seed;
        for (auto &word : state)
            word = splitMix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit draw. */
    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound); bound must be positive. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Bitmask rejection keeps the draw exactly uniform.
        std::uint64_t mask = ~0ULL;
        if (bound > 1) {
            mask = bound - 1;
            mask |= mask >> 1;
            mask |= mask >> 2;
            mask |= mask >> 4;
            mask |= mask >> 8;
            mask |= mask >> 16;
            mask |= mask >> 32;
        } else {
            return 0;
        }
        std::uint64_t draw;
        do {
            draw = (*this)() & mask;
        } while (draw >= bound);
        return draw;
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Uniform value in [lo, hi). */
    double
    range(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace copernicus

#endif // COPERNICUS_COMMON_RNG_HH
