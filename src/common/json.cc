#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace copernicus {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
writeJsonString(std::ostream &out, std::string_view text)
{
    out << '"' << jsonEscape(text) << '"';
}

void
writeJsonNumber(std::ostream &out, double v)
{
    if (!std::isfinite(v)) {
        out << '0';
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << buf;
}

namespace {

/** Cursor over the text being validated. */
struct Parser
{
    std::string_view s;
    std::size_t i = 0;

    bool atEnd() const { return i >= s.size(); }
    char peek() const { return s[i]; }

    void
    skipWs()
    {
        while (!atEnd() && (s[i] == ' ' || s[i] == '\t' ||
                            s[i] == '\n' || s[i] == '\r')) {
            ++i;
        }
    }

    bool
    consume(char c)
    {
        if (atEnd() || s[i] != c)
            return false;
        ++i;
        return true;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (s.substr(i, lit.size()) != lit)
            return false;
        i += lit.size();
        return true;
    }

    bool parseValue(int depth);

    bool
    parseString()
    {
        if (!consume('"'))
            return false;
        while (!atEnd()) {
            const char c = s[i];
            if (c == '"') {
                ++i;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control character
            if (c == '\\') {
                ++i;
                if (atEnd())
                    return false;
                const char esc = s[i];
                if (esc == 'u') {
                    for (int h = 0; h < 4; ++h) {
                        ++i;
                        if (atEnd() || !std::isxdigit(
                                           static_cast<unsigned char>(
                                               s[i]))) {
                            return false;
                        }
                    }
                } else if (esc != '"' && esc != '\\' && esc != '/' &&
                           esc != 'b' && esc != 'f' && esc != 'n' &&
                           esc != 'r' && esc != 't') {
                    return false;
                }
            }
            ++i;
        }
        return false; // unterminated
    }

    bool
    parseDigits()
    {
        if (atEnd() || !std::isdigit(static_cast<unsigned char>(s[i])))
            return false;
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(s[i])))
            ++i;
        return true;
    }

    bool
    parseNumber()
    {
        consume('-');
        if (consume('0')) {
            // no leading zeros
        } else if (!parseDigits()) {
            return false;
        }
        if (consume('.') && !parseDigits())
            return false;
        if (!atEnd() && (s[i] == 'e' || s[i] == 'E')) {
            ++i;
            if (!atEnd() && (s[i] == '+' || s[i] == '-'))
                ++i;
            if (!parseDigits())
                return false;
        }
        return true;
    }
};

bool
Parser::parseValue(int depth)
{
    if (depth > 256)
        return false;
    skipWs();
    if (atEnd())
        return false;
    const char c = peek();
    if (c == '{') {
        ++i;
        skipWs();
        if (consume('}'))
            return true;
        while (true) {
            skipWs();
            if (!parseString())
                return false;
            skipWs();
            if (!consume(':'))
                return false;
            if (!parseValue(depth + 1))
                return false;
            skipWs();
            if (consume('}'))
                return true;
            if (!consume(','))
                return false;
        }
    }
    if (c == '[') {
        ++i;
        skipWs();
        if (consume(']'))
            return true;
        while (true) {
            if (!parseValue(depth + 1))
                return false;
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }
    if (c == '"')
        return parseString();
    if (c == 't')
        return consumeLiteral("true");
    if (c == 'f')
        return consumeLiteral("false");
    if (c == 'n')
        return consumeLiteral("null");
    return parseNumber();
}

} // namespace

bool
jsonValid(std::string_view text)
{
    Parser parser{text};
    if (!parser.parseValue(0))
        return false;
    parser.skipWs();
    return parser.atEnd();
}

} // namespace copernicus
