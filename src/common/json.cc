#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace copernicus {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
writeJsonString(std::ostream &out, std::string_view text)
{
    out << '"' << jsonEscape(text) << '"';
}

void
writeJsonNumber(std::ostream &out, double v)
{
    if (!std::isfinite(v)) {
        out << '0';
        return;
    }
    // Shortest round-trip form: rising precision until strtod gives
    // the value back. 17 significant digits always round-trip, so the
    // loop cannot fall through.
    char buf[32];
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    out << buf;
}

namespace {

/** Cursor over the text being validated. */
struct Parser
{
    std::string_view s;
    std::size_t i = 0;

    bool atEnd() const { return i >= s.size(); }
    char peek() const { return s[i]; }

    void
    skipWs()
    {
        while (!atEnd() && (s[i] == ' ' || s[i] == '\t' ||
                            s[i] == '\n' || s[i] == '\r')) {
            ++i;
        }
    }

    bool
    consume(char c)
    {
        if (atEnd() || s[i] != c)
            return false;
        ++i;
        return true;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (s.substr(i, lit.size()) != lit)
            return false;
        i += lit.size();
        return true;
    }

    bool parseValue(int depth);

    bool
    parseString()
    {
        if (!consume('"'))
            return false;
        while (!atEnd()) {
            const char c = s[i];
            if (c == '"') {
                ++i;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control character
            if (c == '\\') {
                ++i;
                if (atEnd())
                    return false;
                const char esc = s[i];
                if (esc == 'u') {
                    for (int h = 0; h < 4; ++h) {
                        ++i;
                        if (atEnd() || !std::isxdigit(
                                           static_cast<unsigned char>(
                                               s[i]))) {
                            return false;
                        }
                    }
                } else if (esc != '"' && esc != '\\' && esc != '/' &&
                           esc != 'b' && esc != 'f' && esc != 'n' &&
                           esc != 'r' && esc != 't') {
                    return false;
                }
            }
            ++i;
        }
        return false; // unterminated
    }

    bool
    parseDigits()
    {
        if (atEnd() || !std::isdigit(static_cast<unsigned char>(s[i])))
            return false;
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(s[i])))
            ++i;
        return true;
    }

    bool
    parseNumber()
    {
        consume('-');
        if (consume('0')) {
            // no leading zeros
        } else if (!parseDigits()) {
            return false;
        }
        if (consume('.') && !parseDigits())
            return false;
        if (!atEnd() && (s[i] == 'e' || s[i] == 'E')) {
            ++i;
            if (!atEnd() && (s[i] == '+' || s[i] == '-'))
                ++i;
            if (!parseDigits())
                return false;
        }
        return true;
    }
};

bool
Parser::parseValue(int depth)
{
    if (depth > 256)
        return false;
    skipWs();
    if (atEnd())
        return false;
    const char c = peek();
    if (c == '{') {
        ++i;
        skipWs();
        if (consume('}'))
            return true;
        while (true) {
            skipWs();
            if (!parseString())
                return false;
            skipWs();
            if (!consume(':'))
                return false;
            if (!parseValue(depth + 1))
                return false;
            skipWs();
            if (consume('}'))
                return true;
            if (!consume(','))
                return false;
        }
    }
    if (c == '[') {
        ++i;
        skipWs();
        if (consume(']'))
            return true;
        while (true) {
            if (!parseValue(depth + 1))
                return false;
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }
    if (c == '"')
        return parseString();
    if (c == 't')
        return consumeLiteral("true");
    if (c == 'f')
        return consumeLiteral("false");
    if (c == 'n')
        return consumeLiteral("null");
    return parseNumber();
}

} // namespace

bool
jsonValid(std::string_view text)
{
    Parser parser{text};
    if (!parser.parseValue(0))
        return false;
    parser.skipWs();
    return parser.atEnd();
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : members)
        if (name == key)
            return &value;
    return nullptr;
}

double
JsonValue::numberOr(std::string_view key, double fallback) const
{
    const JsonValue *value = find(key);
    return value != nullptr && value->isNumber() ? value->number
                                                 : fallback;
}

std::string
JsonValue::stringOr(std::string_view key, std::string_view fallback) const
{
    const JsonValue *value = find(key);
    return value != nullptr && value->isString()
               ? value->text
               : std::string(fallback);
}

bool
JsonValue::boolOr(std::string_view key, bool fallback) const
{
    const JsonValue *value = find(key);
    return value != nullptr && value->isBool() ? value->boolean
                                               : fallback;
}

namespace {

/**
 * Value-building twin of the validator above. Shares its grammar and
 * depth cap; kept separate so jsonValid() stays allocation-free.
 */
struct Builder
{
    std::string_view s;
    std::size_t i = 0;

    bool atEnd() const { return i >= s.size(); }

    void
    skipWs()
    {
        while (!atEnd() && (s[i] == ' ' || s[i] == '\t' ||
                            s[i] == '\n' || s[i] == '\r')) {
            ++i;
        }
    }

    bool
    consume(char c)
    {
        if (atEnd() || s[i] != c)
            return false;
        ++i;
        return true;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (s.substr(i, lit.size()) != lit)
            return false;
        i += lit.size();
        return true;
    }

    /** Appends the UTF-8 encoding of code point @p cp. */
    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (!atEnd()) {
            const char c = s[i];
            if (c == '"') {
                ++i;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control character
            if (c != '\\') {
                out += c;
                ++i;
                continue;
            }
            ++i;
            if (atEnd())
                return false;
            const char esc = s[i];
            ++i;
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  unsigned cp = 0;
                  for (int h = 0; h < 4; ++h) {
                      if (atEnd() ||
                          !std::isxdigit(
                              static_cast<unsigned char>(s[i]))) {
                          return false;
                      }
                      const char d = s[i];
                      cp = cp * 16 +
                           static_cast<unsigned>(
                               std::isdigit(
                                   static_cast<unsigned char>(d))
                                   ? d - '0'
                                   : std::tolower(static_cast<
                                                  unsigned char>(d)) -
                                         'a' + 10);
                      ++i;
                  }
                  appendUtf8(out, cp);
                  break;
              }
              default:
                return false;
            }
        }
        return false; // unterminated
    }

    bool
    parseNumber(double &out)
    {
        const std::size_t start = i;
        consume('-');
        if (consume('0')) {
            // no leading zeros
        } else if (!parseDigits()) {
            return false;
        }
        if (consume('.') && !parseDigits())
            return false;
        if (!atEnd() && (s[i] == 'e' || s[i] == 'E')) {
            ++i;
            if (!atEnd() && (s[i] == '+' || s[i] == '-'))
                ++i;
            if (!parseDigits())
                return false;
        }
        out = std::strtod(std::string(s.substr(start, i - start)).c_str(),
                          nullptr);
        return true;
    }

    bool
    parseDigits()
    {
        if (atEnd() || !std::isdigit(static_cast<unsigned char>(s[i])))
            return false;
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(s[i])))
            ++i;
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > 256)
            return false;
        skipWs();
        if (atEnd())
            return false;
        const char c = s[i];
        if (c == '{') {
            ++i;
            out.kind = JsonValue::Kind::Object;
            out.members.clear();
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return false;
                JsonValue value;
                if (!parseValue(value, depth + 1))
                    return false;
                out.members.emplace_back(std::move(key),
                                         std::move(value));
                skipWs();
                if (consume('}'))
                    return true;
                if (!consume(','))
                    return false;
            }
        }
        if (c == '[') {
            ++i;
            out.kind = JsonValue::Kind::Array;
            out.elements.clear();
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                JsonValue value;
                if (!parseValue(value, depth + 1))
                    return false;
                out.elements.push_back(std::move(value));
                skipWs();
                if (consume(']'))
                    return true;
                if (!consume(','))
                    return false;
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
        }
        if (c == 't') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return consumeLiteral("true");
        }
        if (c == 'f') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return consumeLiteral("false");
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::Null;
            return consumeLiteral("null");
        }
        out.kind = JsonValue::Kind::Number;
        return parseNumber(out.number);
    }
};

} // namespace

bool
parseJson(std::string_view text, JsonValue &out)
{
    Builder builder{text};
    if (!builder.parseValue(out, 0))
        return false;
    builder.skipWs();
    return builder.atEnd();
}

} // namespace copernicus
