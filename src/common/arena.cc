#include "common/arena.hh"

#include <algorithm>

namespace copernicus {

void *
Arena::allocateSlow(std::size_t bytes, std::size_t align)
{
    fatalIf((align & (align - 1)) != 0,
            "Arena alignment must be a power of two");
    // Advance through retained chunks before minting a new one; a
    // rewound arena re-walks its chunk list in order, so steady state
    // allocates nothing.
    while (true) {
        if (chunk < chunks.size()) {
            const std::size_t aligned =
                (offset + (align - 1)) & ~(align - 1);
            if (aligned + bytes <= chunks[chunk].size) {
                offset = aligned + bytes;
                return chunks[chunk].data.get() + aligned;
            }
            ++chunk;
            offset = 0;
            continue;
        }
        // Chunks double so pathological tiles converge to one chunk;
        // oversize requests get a dedicated chunk of their own.
        const std::size_t want =
            std::max(nextChunkBytes, bytes + align);
        chunks.push_back({std::make_unique<std::byte[]>(want), want});
        nextChunkBytes = std::max(nextChunkBytes * 2, want);
    }
}

Arena &
encodeArena()
{
    thread_local Arena arena;
    return arena;
}

} // namespace copernicus
