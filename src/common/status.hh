/**
 * @file
 * Error-reporting helpers in the spirit of gem5's fatal()/panic() split.
 *
 * fatal() reports a condition caused by the caller (bad configuration,
 * malformed input file); panic() reports an internal invariant violation,
 * i.e. a Copernicus bug. Both throw typed exceptions so that library users
 * and tests can catch them; nothing in the library calls std::abort().
 */

#ifndef COPERNICUS_COMMON_STATUS_HH
#define COPERNICUS_COMMON_STATUS_HH

#include <stdexcept>
#include <string>

namespace copernicus {

/** Base class for all Copernicus exceptions. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** Thrown by fatal(): the user supplied an invalid request or input. */
class FatalError : public Error
{
  public:
    explicit FatalError(const std::string &what_arg) : Error(what_arg) {}
};

/** Thrown by panic(): an internal invariant was violated. */
class PanicError : public Error
{
  public:
    explicit PanicError(const std::string &what_arg) : Error(what_arg) {}
};

/**
 * Thrown when a cooperative cancellation hook interrupts a long run
 * (Study::run's cancelCheck, driven by the serve daemon's per-request
 * deadlines). Neither a user mistake nor a bug — the caller asked the
 * work to stop — so it gets its own type that serving layers can map
 * to a deadline_exceeded response.
 */
class CancelledError : public Error
{
  public:
    explicit CancelledError(const std::string &what_arg)
        : Error(what_arg)
    {}
};

/**
 * Report a user-caused error.
 *
 * @param msg Human-readable description of what the user got wrong.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report an internal invariant violation.
 *
 * @param msg Human-readable description of the broken invariant.
 */
[[noreturn]] void panic(const std::string &msg);

/** Throw FatalError unless @p cond holds. */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

/** Throw PanicError unless @p cond holds. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace copernicus

/**
 * Debug-only invariant check for per-element hot loops (tile cell
 * access, codec inner loops). Expands to panicIf(!(cond)) in debug
 * builds and to nothing under NDEBUG, so release sweeps pay no
 * per-element branch while sanitizer/debug CI keeps the full checks.
 */
#if defined(NDEBUG) && !defined(COPERNICUS_DEBUG_CHECKS)
#define COPERNICUS_DCHECK(cond, msg) ((void)0)
#else
#define COPERNICUS_DCHECK(cond, msg) ::copernicus::panicIf(!(cond), (msg))
#endif

#endif // COPERNICUS_COMMON_STATUS_HH
