#include "common/stat_group.hh"

#include <cmath>
#include <iomanip>
#include <ostream>

#include "common/status.hh"

namespace copernicus {

StatBase::StatBase(StatGroup &group, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    group.registerStat(this);
}

namespace {

void
printLine(std::ostream &out, const std::string &name, double value,
          const std::string &desc)
{
    out << std::left << std::setw(40) << name << std::right
        << std::setw(16) << value << "  # " << desc << '\n';
}

} // namespace

void
ScalarStat::print(std::ostream &out) const
{
    printLine(out, name(), total, description());
}

void
AverageStat::print(std::ostream &out) const
{
    printLine(out, name(), mean(),
              description() + " (mean of " + std::to_string(count) +
                  " samples)");
}

DistributionStat::DistributionStat(StatGroup &group, std::string name,
                                   std::string desc, double lo,
                                   double hi, std::size_t bucketCount)
    : StatBase(group, std::move(name), std::move(desc)), lo(lo), hi(hi),
      bins(bucketCount, 0)
{
    fatalIf(bucketCount == 0,
            "DistributionStat needs at least one bucket");
    fatalIf(hi <= lo, "DistributionStat range must be non-empty");
}

void
DistributionStat::sample(double v)
{
    ++count;
    min_seen = std::min(min_seen, v);
    max_seen = std::max(max_seen, v);
    if (v < lo) {
        ++underflow;
    } else if (v >= hi) {
        ++overflow;
    } else {
        const double width = (hi - lo) / static_cast<double>(bins.size());
        auto bucket = static_cast<std::size_t>((v - lo) / width);
        if (bucket >= bins.size())
            bucket = bins.size() - 1; // guard float edge
        ++bins[bucket];
    }
}

void
DistributionStat::print(std::ostream &out) const
{
    printLine(out, name() + ".samples", static_cast<double>(count),
              description());
    if (count == 0)
        return;
    printLine(out, name() + ".min", min_seen, "minimum sample");
    printLine(out, name() + ".max", max_seen, "maximum sample");
    const double width = (hi - lo) / static_cast<double>(bins.size());
    if (underflow > 0) {
        printLine(out, name() + ".underflow",
                  static_cast<double>(underflow), "samples below range");
    }
    for (std::size_t b = 0; b < bins.size(); ++b) {
        if (bins[b] == 0)
            continue;
        printLine(out,
                  name() + "[" + std::to_string(lo + b * width) + "," +
                      std::to_string(lo + (b + 1) * width) + ")",
                  static_cast<double>(bins[b]), "bucket count");
    }
    if (overflow > 0) {
        printLine(out, name() + ".overflow",
                  static_cast<double>(overflow), "samples above range");
    }
}

void
StatGroup::registerStat(StatBase *stat)
{
    for (const StatBase *existing : members) {
        fatalIf(existing->name() == stat->name(),
                "duplicate stat name '" + stat->name() + "' in group '" +
                    _name + "'");
    }
    members.push_back(stat);
}

const StatBase *
StatGroup::find(const std::string &name) const
{
    for (const StatBase *stat : members)
        if (stat->name() == name)
            return stat;
    return nullptr;
}

void
StatGroup::dump(std::ostream &out) const
{
    out << "---------- " << _name << " ----------\n";
    for (const StatBase *stat : members)
        stat->print(out);
}

} // namespace copernicus
