#include "common/stat_group.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "common/json.hh"
#include "common/status.hh"

namespace copernicus {

StatBase::StatBase(StatGroup &group, std::string name, std::string desc)
    : _group(group), _name(std::move(name)), _desc(std::move(desc))
{
    group.registerStat(this);
}

StatBase::~StatBase()
{
    _group.unregisterStat(this);
}

namespace {

void
printLine(std::ostream &out, const std::string &name, double value,
          const std::string &desc)
{
    out << std::left << std::setw(40) << name << std::right
        << std::setw(16) << value << "  # " << desc << '\n';
}

/** Common `"name": ..., "kind": ..., "desc": ...` prefix. */
void
jsonHead(std::ostream &out, const StatBase &stat, const char *kind)
{
    out << "{\"name\": ";
    writeJsonString(out, stat.name());
    out << ", \"kind\": \"" << kind << "\", \"desc\": ";
    writeJsonString(out, stat.description());
}

void
jsonField(std::ostream &out, const char *key, double value)
{
    out << ", \"" << key << "\": ";
    writeJsonNumber(out, value);
}

} // namespace

void
ScalarStat::print(std::ostream &out) const
{
    printLine(out, name(), value(), description());
}

void
ScalarStat::writeJson(std::ostream &out) const
{
    jsonHead(out, *this, "scalar");
    jsonField(out, "value", value());
    out << '}';
}

void
AverageStat::print(std::ostream &out) const
{
    printLine(out, name(), mean(),
              description() + " (mean of " + std::to_string(samples()) +
                  " samples)");
}

void
AverageStat::writeJson(std::ostream &out) const
{
    jsonHead(out, *this, "average");
    jsonField(out, "mean", mean());
    jsonField(out, "samples", static_cast<double>(samples()));
    out << '}';
}

DistributionStat::DistributionStat(StatGroup &group, std::string name,
                                   std::string desc, double lo,
                                   double hi, std::size_t bucketCount)
    : StatBase(group, std::move(name), std::move(desc)), lo(lo), hi(hi),
      bins(bucketCount, 0)
{
    fatalIf(bucketCount == 0,
            "DistributionStat needs at least one bucket");
    // The degenerate lo == hi range would make the bucket width zero
    // and turn every sample() into a division by zero.
    fatalIf(hi == lo,
            "DistributionStat range [" + std::to_string(lo) + ", " +
                std::to_string(hi) +
                ") is empty: lo == hi gives zero-width buckets");
    fatalIf(hi < lo, "DistributionStat range must satisfy lo < hi");
}

void
DistributionStat::sample(double v)
{
    const MutexLock lock(mutex);
    ++count;
    sum += v;
    min_seen = std::min(min_seen, v);
    max_seen = std::max(max_seen, v);
    if (v < lo) {
        ++underflow;
    } else if (v >= hi) {
        ++overflow;
    } else {
        const double width = (hi - lo) / static_cast<double>(bins.size());
        auto bucket = static_cast<std::size_t>((v - lo) / width);
        if (bucket >= bins.size())
            bucket = bins.size() - 1; // guard float edge
        ++bins[bucket];
    }
}

DistributionStat::Snapshot
DistributionStat::snapshotLocked() const
{
    Snapshot snap;
    snap.lo = lo;
    snap.hi = hi;
    snap.bins = bins;
    snap.underflow = underflow;
    snap.overflow = overflow;
    snap.count = count;
    snap.min = min_seen;
    snap.max = max_seen;
    snap.sum = sum;
    return snap;
}

DistributionStat::Snapshot
DistributionStat::snapshot() const
{
    const MutexLock lock(mutex);
    return snapshotLocked();
}

std::uint64_t
DistributionStat::samples() const
{
    const MutexLock lock(mutex);
    return count;
}

double
DistributionStat::minSample() const
{
    const MutexLock lock(mutex);
    return min_seen;
}

double
DistributionStat::maxSample() const
{
    const MutexLock lock(mutex);
    return max_seen;
}

double
DistributionStat::sumSamples() const
{
    const MutexLock lock(mutex);
    return sum;
}

void
DistributionStat::Snapshot::merge(const Snapshot &other)
{
    fatalIf(lo != other.lo || hi != other.hi ||
                bins.size() != other.bins.size(),
            "DistributionStat::Snapshot::merge: mismatched bucket "
            "configuration");
    for (std::size_t b = 0; b < bins.size(); ++b)
        bins[b] += other.bins[b];
    underflow += other.underflow;
    overflow += other.overflow;
    count += other.count;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
    sum += other.sum;
}

double
DistributionStat::emptyPercentile()
{
    return std::numeric_limits<double>::quiet_NaN();
}

double
DistributionStat::percentile(double p) const
{
    const MutexLock lock(mutex);
    return percentileLocked(p);
}

double
DistributionStat::percentileLocked(double p) const
{
    return snapshotLocked().percentile(p);
}

double
DistributionStat::Snapshot::percentile(double p) const
{
    fatalIf(p < 0.0 || p > 100.0,
            "percentile(" + std::to_string(p) +
                ") is outside [0, 100]");
    if (count == 0)
        return emptyPercentile();
    // All samples equal (the single-sample case included): the answer
    // is that sample exactly, not a value interpolated across its
    // bucket's width.
    if (min == max)
        return min;

    const double target = p / 100.0 * static_cast<double>(count);
    double cum = 0;

    // Underflow mass sits in [min, lo).
    if (underflow > 0) {
        if (target <= cum + static_cast<double>(underflow)) {
            const double frac = (target - cum) / underflow;
            return min + frac * (lo - min);
        }
        cum += static_cast<double>(underflow);
    }

    const double width = (hi - lo) / static_cast<double>(bins.size());
    for (std::size_t b = 0; b < bins.size(); ++b) {
        if (bins[b] == 0)
            continue;
        if (target <= cum + static_cast<double>(bins[b])) {
            const double frac = (target - cum) / bins[b];
            return lo + (static_cast<double>(b) + frac) * width;
        }
        cum += static_cast<double>(bins[b]);
    }

    // Overflow mass sits in [hi, max].
    if (overflow > 0) {
        const double frac =
            std::min(1.0, (target - cum) / overflow);
        return hi + frac * (max - hi);
    }
    return max;
}

void
DistributionStat::print(std::ostream &out) const
{
    const MutexLock lock(mutex);
    printLine(out, name() + ".samples", static_cast<double>(count),
              description());
    if (count == 0)
        return;
    printLine(out, name() + ".min", min_seen, "minimum sample");
    printLine(out, name() + ".max", max_seen, "maximum sample");
    printLine(out, name() + ".p50", percentileLocked(50),
              "50th percentile (interpolated)");
    printLine(out, name() + ".p95", percentileLocked(95),
              "95th percentile (interpolated)");
    printLine(out, name() + ".p99", percentileLocked(99),
              "99th percentile (interpolated)");
    const double width = (hi - lo) / static_cast<double>(bins.size());
    if (underflow > 0) {
        printLine(out, name() + ".underflow",
                  static_cast<double>(underflow), "samples below range");
    }
    for (std::size_t b = 0; b < bins.size(); ++b) {
        if (bins[b] == 0)
            continue;
        printLine(out,
                  name() + "[" + std::to_string(lo + b * width) + "," +
                      std::to_string(lo + (b + 1) * width) + ")",
                  static_cast<double>(bins[b]), "bucket count");
    }
    if (overflow > 0) {
        printLine(out, name() + ".overflow",
                  static_cast<double>(overflow), "samples above range");
    }
}

void
DistributionStat::writeJson(std::ostream &out) const
{
    const MutexLock lock(mutex);
    jsonHead(out, *this, "distribution");
    jsonField(out, "samples", static_cast<double>(count));
    jsonField(out, "lo", lo);
    jsonField(out, "hi", hi);
    jsonField(out, "underflow", static_cast<double>(underflow));
    jsonField(out, "overflow", static_cast<double>(overflow));
    out << ", \"buckets\": [";
    for (std::size_t b = 0; b < bins.size(); ++b) {
        if (b > 0)
            out << ", ";
        out << bins[b];
    }
    out << ']';
    if (count > 0) {
        jsonField(out, "min", min_seen);
        jsonField(out, "max", max_seen);
        jsonField(out, "p50", percentileLocked(50));
        jsonField(out, "p95", percentileLocked(95));
        jsonField(out, "p99", percentileLocked(99));
    }
    out << '}';
}

void
StatGroup::registerStat(StatBase *stat)
{
    for (const StatBase *existing : members) {
        fatalIf(existing->name() == stat->name(),
                "duplicate stat name '" + stat->name() + "' in group '" +
                    _name + "'");
    }
    members.push_back(stat);
}

void
StatGroup::unregisterStat(StatBase *stat)
{
    // A duplicate-name registration throws before push_back, so its
    // destructor unregisters a stat that was never added: ignore it.
    members.erase(std::remove(members.begin(), members.end(), stat),
                  members.end());
}

const StatBase *
StatGroup::find(const std::string &name) const
{
    for (const StatBase *stat : members)
        if (stat->name() == name)
            return stat;
    return nullptr;
}

void
StatGroup::dump(std::ostream &out) const
{
    out << "---------- " << _name << " ----------\n";
    for (const StatBase *stat : members)
        stat->print(out);
}

void
StatGroup::dumpJson(std::ostream &out) const
{
    out << "{\"group\": ";
    writeJsonString(out, _name);
    out << ", \"stats\": [";
    for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0)
            out << ", ";
        members[i]->writeJson(out);
    }
    out << "]}";
}

void
dumpGroupsJson(std::ostream &out,
               const std::vector<const StatGroup *> &groups)
{
    out << "{\"groups\": [";
    for (std::size_t i = 0; i < groups.size(); ++i) {
        if (i > 0)
            out << ", ";
        groups[i]->dumpJson(out);
    }
    out << "]}\n";
}

} // namespace copernicus
