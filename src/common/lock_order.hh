/**
 * @file
 * Process-wide lock-order registry, asserted in debug builds.
 *
 * Deadlock freedom in Copernicus rests on one global rule: locks are
 * acquired in strictly increasing rank order, and no two locks of the
 * same rank nest. The registry below is the single authoritative list
 * of every ranked mutex in the system; common/mutex.hh's Mutex takes a
 * rank at construction and, in debug builds (COPERNICUS_DEBUG_CHECKS
 * or !NDEBUG), every acquisition pushes the rank onto a thread-local
 * stack and panics when the order is violated — turning a latent
 * deadlock into a deterministic test failure.
 *
 * The static analyzer's thread-safety pass (analysis/) checks the
 * registry itself: names unique, ranks unique and positive, so the
 * hierarchy stays a strict total order by construction.
 *
 * Rank 0 is "unranked": the mutex opted out of order checking (used
 * for leaf locks that provably never nest, e.g. the logger's line
 * mutex which is below everything).
 */

#ifndef COPERNICUS_COMMON_LOCK_ORDER_HH
#define COPERNICUS_COMMON_LOCK_ORDER_HH

#include <string>
#include <vector>

namespace copernicus {

/** One entry of the lock hierarchy. */
struct LockLevel
{
    /** Dotted lock name: "encode_cache.shard", "serve.admit", ... */
    std::string name;

    /**
     * Acquisition rank; a thread holding rank r may only acquire
     * ranks strictly greater than r. Positive; unique per entry.
     */
    int rank = 0;
};

namespace lock_rank {

// The hierarchy, lowest first: a lower-ranked lock is *acquired
// first* (outermost). Gaps leave room for future levels.
inline constexpr int serveLoop = 10;     ///< event-loop wake queue
inline constexpr int serveTx = 14;       ///< per-connection tx buffer
inline constexpr int serveStreams = 16;  ///< per-connection streams
inline constexpr int serveAdmit = 20;    ///< admission state
inline constexpr int serveMemo = 25;     ///< advise/plan result memo
inline constexpr int serveInflight = 30; ///< --top in-flight registry
inline constexpr int serveSpans = 40;    ///< request-span log
inline constexpr int studyCache = 50;    ///< partitioning memo slots
inline constexpr int sweepJournal = 55;  ///< checkpoint journal append
inline constexpr int encodeCacheShard = 60; ///< encode-cache shards
inline constexpr int statDistribution = 70; ///< DistributionStat bins
inline constexpr int spanCollector = 80;    ///< span ring
inline constexpr int flightRecorder = 90;   ///< wide-event ring
inline constexpr int profileRegistry = 100; ///< host profiler table

} // namespace lock_rank

/** Every ranked lock in the process, the analyzer's input. */
const std::vector<LockLevel> &lockOrderRegistry();

/**
 * Debug hook called by Mutex on acquisition: panics when @p rank is
 * positive and the calling thread already holds an equal or greater
 * rank. Compiled to nothing in release builds without
 * COPERNICUS_DEBUG_CHECKS.
 */
void noteLockAcquired(int rank);

/** Debug hook called by Mutex on release. */
void noteLockReleased(int rank);

/** The calling thread's greatest held rank (0 when none); tests. */
int currentMaxHeldRank();

} // namespace copernicus

#endif // COPERNICUS_COMMON_LOCK_ORDER_HH
