#include "common/prometheus.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <sstream>

namespace copernicus {

namespace {

bool
validNameChar(char c, bool first)
{
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        c == ':')
        return true;
    return !first && std::isdigit(static_cast<unsigned char>(c));
}

/** Escape a label value per the exposition spec. */
std::string
escapeLabelValue(const std::string &value)
{
    std::string escaped;
    escaped.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\':
            escaped += "\\\\";
            break;
          case '"':
            escaped += "\\\"";
            break;
          case '\n':
            escaped += "\\n";
            break;
          default:
            escaped += c;
        }
    }
    return escaped;
}

/** A sample value: finite shortest-round-trip, else +Inf/-Inf/NaN. */
std::string
formatValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    std::ostringstream str;
    str.precision(17);
    str << v;
    return str.str();
}

std::string
formatLabels(const std::vector<PrometheusLabel> &labels)
{
    if (labels.empty())
        return "";
    std::string text = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i > 0)
            text += ',';
        text += prometheusSanitizeName(labels[i].first);
        text += "=\"";
        text += escapeLabelValue(labels[i].second);
        text += '"';
    }
    text += '}';
    return text;
}

} // namespace

std::string
prometheusSanitizeName(const std::string &name)
{
    std::string clean;
    clean.reserve(name.size());
    for (std::size_t i = 0; i < name.size(); ++i) {
        const char c = name[i];
        clean += validNameChar(c, clean.empty()) ? c : '_';
    }
    if (clean.empty())
        clean = "_";
    return clean;
}

void
PrometheusWriter::head(const std::string &name, const std::string &help,
                       const char *type)
{
    out += "# HELP " + name + ' ' + help + '\n';
    out += "# TYPE " + name + ' ' + type + '\n';
}

void
PrometheusWriter::counter(
    const std::string &name, const std::string &help,
    const std::vector<std::pair<std::vector<PrometheusLabel>, double>>
        &series)
{
    const std::string clean = prometheusSanitizeName(name);
    head(clean, help, "counter");
    for (const auto &entry : series) {
        out += clean + formatLabels(entry.first) + ' ' +
               formatValue(entry.second) + '\n';
    }
}

void
PrometheusWriter::gauge(
    const std::string &name, const std::string &help,
    const std::vector<std::pair<std::vector<PrometheusLabel>, double>>
        &series)
{
    const std::string clean = prometheusSanitizeName(name);
    head(clean, help, "gauge");
    for (const auto &entry : series) {
        out += clean + formatLabels(entry.first) + ' ' +
               formatValue(entry.second) + '\n';
    }
}

void
PrometheusWriter::histogram(
    const std::string &name, const std::string &help,
    const std::vector<std::pair<std::vector<PrometheusLabel>,
                                DistributionStat::Snapshot>> &series,
    double scale)
{
    const std::string clean = prometheusSanitizeName(name);
    head(clean, help, "histogram");
    for (const auto &entry : series) {
        const DistributionStat::Snapshot &snap = entry.second;
        const double width =
            snap.bins.empty()
                ? 0.0
                : (snap.hi - snap.lo) /
                      static_cast<double>(snap.bins.size());
        // Cumulative counts: underflow mass is below lo, so every
        // finite bound (all of which are > lo) already contains it.
        std::uint64_t cum = snap.underflow;
        for (std::size_t b = 0; b < snap.bins.size(); ++b) {
            cum += snap.bins[b];
            std::vector<PrometheusLabel> labels = entry.first;
            const double bound =
                (snap.lo + static_cast<double>(b + 1) * width) * scale;
            labels.emplace_back("le", formatValue(bound));
            out += clean + "_bucket" + formatLabels(labels) + ' ' +
                   std::to_string(cum) + '\n';
        }
        std::vector<PrometheusLabel> labels = entry.first;
        labels.emplace_back("le", "+Inf");
        out += clean + "_bucket" + formatLabels(labels) + ' ' +
               std::to_string(snap.count) + '\n';
        out += clean + "_sum" + formatLabels(entry.first) + ' ' +
               formatValue(snap.sum * scale) + '\n';
        out += clean + "_count" + formatLabels(entry.first) + ' ' +
               std::to_string(snap.count) + '\n';
    }
}

namespace {

/** One parsed sample line. */
struct Sample
{
    std::string name;
    std::string otherLabels; ///< canonical labels minus any `le`
    bool hasLe = false;
    double le = 0;
    double value = 0;
};

bool
parseName(const std::string &line, std::size_t &pos, std::string &name)
{
    const std::size_t start = pos;
    while (pos < line.size() && validNameChar(line[pos], pos == start))
        ++pos;
    if (pos == start)
        return false;
    name = line.substr(start, pos - start);
    return true;
}

bool
parseValueToken(const std::string &token, double &value)
{
    if (token == "+Inf" || token == "Inf") {
        value = std::numeric_limits<double>::infinity();
        return true;
    }
    if (token == "-Inf") {
        value = -std::numeric_limits<double>::infinity();
        return true;
    }
    if (token == "NaN") {
        value = std::numeric_limits<double>::quiet_NaN();
        return true;
    }
    char *end = nullptr;
    value = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0' && end != token.c_str();
}

/** Parse `name{labels} value [timestamp]`. */
bool
parseSample(const std::string &line, Sample &sample, std::string &error)
{
    std::size_t pos = 0;
    if (!parseName(line, pos, sample.name)) {
        error = "bad metric name";
        return false;
    }
    sample.hasLe = false;
    std::vector<PrometheusLabel> labels;
    if (pos < line.size() && line[pos] == '{') {
        ++pos;
        while (pos < line.size() && line[pos] != '}') {
            std::string labelName;
            if (!parseName(line, pos, labelName)) {
                error = "bad label name";
                return false;
            }
            if (pos >= line.size() || line[pos] != '=') {
                error = "missing '=' after label name";
                return false;
            }
            ++pos;
            if (pos >= line.size() || line[pos] != '"') {
                error = "label value not quoted";
                return false;
            }
            ++pos;
            std::string labelValue;
            while (pos < line.size() && line[pos] != '"') {
                if (line[pos] == '\\') {
                    if (pos + 1 >= line.size()) {
                        error = "dangling escape in label value";
                        return false;
                    }
                    ++pos;
                }
                labelValue += line[pos];
                ++pos;
            }
            if (pos >= line.size()) {
                error = "unterminated label value";
                return false;
            }
            ++pos; // closing quote
            if (labelName == "le") {
                sample.hasLe = true;
                if (!parseValueToken(labelValue, sample.le)) {
                    error = "le label is not a number";
                    return false;
                }
            } else {
                labels.emplace_back(labelName, labelValue);
            }
            if (pos < line.size() && line[pos] == ',')
                ++pos;
        }
        if (pos >= line.size() || line[pos] != '}') {
            error = "unterminated label set";
            return false;
        }
        ++pos;
    }
    if (pos >= line.size() || (line[pos] != ' ' && line[pos] != '\t')) {
        error = "missing value";
        return false;
    }
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t'))
        ++pos;
    std::size_t valueEnd = pos;
    while (valueEnd < line.size() && line[valueEnd] != ' ' &&
           line[valueEnd] != '\t')
        ++valueEnd;
    if (!parseValueToken(line.substr(pos, valueEnd - pos),
                         sample.value)) {
        error = "bad sample value";
        return false;
    }
    // Canonical key for grouping histogram series: sorted labels.
    std::map<std::string, std::string> sorted(labels.begin(),
                                              labels.end());
    sample.otherLabels.clear();
    for (const auto &label : sorted)
        sample.otherLabels += label.first + '=' + label.second + ';';
    return true;
}

/** Strip histogram sample suffixes to get the family name. */
std::string
familyOf(const std::string &name, const std::string &histogramFamily)
{
    if (histogramFamily.empty())
        return name;
    for (const char *suffix : {"_bucket", "_sum", "_count"}) {
        const std::string candidate = histogramFamily + suffix;
        if (name == candidate)
            return histogramFamily;
    }
    return name;
}

} // namespace

bool
validatePrometheusText(const std::string &text, std::string &error)
{
    std::istringstream in(text);
    std::string line;
    int lineNo = 0;

    std::map<std::string, std::string> types; ///< family -> TYPE
    std::set<std::string> closedFamilies;
    std::string openFamily;
    // (family, labels) -> cumulative bucket values in order.
    std::map<std::pair<std::string, std::string>,
             std::vector<std::pair<double, double>>>
        buckets;
    std::map<std::pair<std::string, std::string>, double> counts;

    auto fail = [&](const std::string &what) {
        error = "line " + std::to_string(lineNo) + ": " + what +
                " [" + line + "]";
        return false;
    };

    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream comment(line);
            std::string hash, kind, family;
            comment >> hash >> kind;
            if (kind != "HELP" && kind != "TYPE")
                continue; // a plain comment
            if (!(comment >> family))
                return fail("# " + kind + " without a metric name");
            if (kind == "TYPE") {
                std::string type;
                if (!(comment >> type))
                    return fail("# TYPE without a type");
                if (type != "counter" && type != "gauge" &&
                    type != "histogram" && type != "summary" &&
                    type != "untyped")
                    return fail("unknown TYPE '" + type + "'");
                if (types.count(family))
                    return fail("duplicate TYPE for '" + family + "'");
                if (closedFamilies.count(family))
                    return fail("TYPE after samples of '" + family +
                                "' ended");
                types[family] = type;
            }
            continue;
        }

        Sample sample;
        std::string parseError;
        if (!parseSample(line, sample, parseError))
            return fail(parseError);

        // Resolve the family: histogram children map to their parent.
        std::string family = sample.name;
        for (const auto &entry : types) {
            if (entry.second != "histogram")
                continue;
            const std::string mapped =
                familyOf(sample.name, entry.first);
            if (mapped != sample.name) {
                family = mapped;
                break;
            }
        }

        if (family != openFamily) {
            if (closedFamilies.count(family))
                return fail("family '" + family +
                            "' interleaved with another family");
            if (!openFamily.empty())
                closedFamilies.insert(openFamily);
            openFamily = family;
        }

        const auto typeIt = types.find(family);
        if (typeIt == types.end())
            return fail("sample of '" + family + "' without # TYPE");

        if (typeIt->second == "histogram") {
            const auto key = std::make_pair(family, sample.otherLabels);
            if (sample.name == family + "_bucket") {
                if (!sample.hasLe)
                    return fail("_bucket sample without le label");
                buckets[key].emplace_back(sample.le, sample.value);
            } else if (sample.name == family + "_count") {
                counts[key] = sample.value;
            } else if (sample.name != family + "_sum") {
                return fail("histogram family '" + family +
                            "' has non-histogram sample '" +
                            sample.name + "'");
            }
        }
    }

    // Cross-line histogram checks.
    for (const auto &entry : buckets) {
        const auto &series = entry.second;
        double lastLe = -std::numeric_limits<double>::infinity();
        double lastValue = -1;
        bool sawInf = false;
        for (const auto &bucket : series) {
            if (bucket.first <= lastLe) {
                error = "histogram '" + entry.first.first +
                        "': le bounds not increasing";
                return false;
            }
            if (bucket.second < lastValue) {
                error = "histogram '" + entry.first.first +
                        "': bucket counts not cumulative";
                return false;
            }
            lastLe = bucket.first;
            lastValue = bucket.second;
            if (std::isinf(bucket.first) && bucket.first > 0)
                sawInf = true;
        }
        if (!sawInf) {
            error = "histogram '" + entry.first.first +
                    "': missing le=\"+Inf\" bucket";
            return false;
        }
        const auto countIt = counts.find(entry.first);
        if (countIt == counts.end()) {
            error = "histogram '" + entry.first.first +
                    "': missing _count";
            return false;
        }
        if (countIt->second != series.back().second) {
            error = "histogram '" + entry.first.first +
                    "': +Inf bucket disagrees with _count";
            return false;
        }
    }

    error.clear();
    return true;
}

} // namespace copernicus
