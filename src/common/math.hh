/**
 * @file
 * Small integer-math helpers used across the schedule and resource models.
 */

#ifndef COPERNICUS_COMMON_MATH_HH
#define COPERNICUS_COMMON_MATH_HH

#include <cstdint>

#include "common/status.hh"

namespace copernicus {

/** Integer ceiling division; @p b must be positive. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Ceiling of log2(@p v); log2Ceil(1) == 0. */
constexpr std::uint32_t
log2Ceil(std::uint64_t v)
{
    std::uint32_t bits = 0;
    std::uint64_t pow = 1;
    while (pow < v) {
        pow <<= 1;
        ++bits;
    }
    return bits;
}

/** Round @p v up to the next multiple of @p m; @p m must be positive. */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t m)
{
    return ceilDiv(v, m) * m;
}

} // namespace copernicus

#endif // COPERNICUS_COMMON_MATH_HH
