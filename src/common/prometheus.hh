/**
 * @file
 * Prometheus text exposition (version 0.0.4) writer and checker.
 *
 * The serve daemon's `metrics` endpoint renders its counters and
 * latency distributions in the one format every scrape ecosystem
 * already understands, without taking a client-library dependency:
 * the format is line-oriented text and this writer assembles it
 * directly from ScalarStat values and DistributionStat::Snapshot
 * copies — by the time a sample reaches the writer no lock is held,
 * which is what keeps scrapes off the request threads.
 *
 * Naming conventions (documented in src/trace/README.md): every series
 * is prefixed `copernicus_`, counters end in `_total`, histograms use
 * the native `_bucket`/`_sum`/`_count` triple with cumulative `le`
 * labels, and label values are escaped per the exposition spec.
 *
 * validatePrometheusText() is the matching checker — the CI serve job
 * pipes a live scrape through it so a formatting regression fails the
 * build rather than the first real scraper.
 */

#ifndef COPERNICUS_COMMON_PROMETHEUS_HH
#define COPERNICUS_COMMON_PROMETHEUS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stat_group.hh"

namespace copernicus {

/** One `name="value"` pair; values are escaped by the writer. */
using PrometheusLabel = std::pair<std::string, std::string>;

/**
 * Accumulates one exposition document. Families must be written as a
 * unit (the spec forbids interleaving series of different families),
 * so each counter()/gauge()/histogram() call emits the family's
 * `# HELP`/`# TYPE` header once followed by all its series.
 */
class PrometheusWriter
{
  public:
    /**
     * A counter family with one series per label set.
     * @param name Metric name without suffix conventions applied;
     *        sanitised (invalid chars -> '_').
     * @param help One-line help text.
     * @param series (labels, value) pairs, one exposition line each.
     */
    void counter(const std::string &name, const std::string &help,
                 const std::vector<std::pair<std::vector<PrometheusLabel>,
                                             double>> &series);

    /** A gauge family; same shape as counter(). */
    void gauge(const std::string &name, const std::string &help,
               const std::vector<std::pair<std::vector<PrometheusLabel>,
                                           double>> &series);

    /**
     * A histogram family from distribution snapshots: per series the
     * cumulative `_bucket{le="..."}` lines (upper bucket bounds from
     * the snapshot's lo/hi/bin-count, then `le="+Inf"`), `_sum` and
     * `_count`. Underflow mass lands in the first bucket (all bounds
     * above lo contain it cumulatively); overflow only in `+Inf`.
     *
     * @param scale Multiplier applied to bounds and sums on the way
     *        out — the serve histograms count microseconds but are
     *        exported in seconds (scale 1e-6) per Prometheus base-unit
     *        convention.
     */
    void histogram(
        const std::string &name, const std::string &help,
        const std::vector<std::pair<std::vector<PrometheusLabel>,
                                    DistributionStat::Snapshot>> &series,
        double scale = 1.0);

    /** The document so far (families in call order). */
    const std::string &text() const { return out; }

  private:
    void head(const std::string &name, const std::string &help,
              const char *type);

    std::string out;
};

/** Metric-name sanitiser: [a-zA-Z0-9_:], leading digit prefixed. */
std::string prometheusSanitizeName(const std::string &name);

/**
 * Check @p text against the exposition format: name syntax, HELP/TYPE
 * placement, no family interleaving, histogram bucket monotonicity and
 * the `+Inf` bucket / `_count` agreement. On failure @p error names
 * the offending line. Deliberately small — a format smoke checker for
 * tests and the CI scrape job, not a full client parser.
 */
bool validatePrometheusText(const std::string &text, std::string &error);

} // namespace copernicus

#endif // COPERNICUS_COMMON_PROMETHEUS_HH
