#include "common/logging.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace copernicus {

namespace {

LogLevel
initialLevel()
{
    const char *env = std::getenv("COPERNICUS_LOG_LEVEL");
    if (env == nullptr)
        return LogLevel::Info;
    const std::string value(env);
    if (value == "debug")
        return LogLevel::Debug;
    if (value == "info")
        return LogLevel::Info;
    if (value == "warn")
        return LogLevel::Warn;
    if (value == "error")
        return LogLevel::Error;
    std::fprintf(stderr,
                 "warn: unknown COPERNICUS_LOG_LEVEL '%s' "
                 "(expected debug|info|warn|error)\n",
                 env);
    return LogLevel::Info;
}

bool
initialTimestamps()
{
    const char *env = std::getenv("COPERNICUS_LOG_TIMESTAMPS");
    return env != nullptr && env[0] == '1';
}

// Level/timestamp toggles are atomics and line emission is serialized
// behind a mutex: the serve daemon logs from acceptor, connection and
// pool-worker threads at once, and interleaved fprintf calls would
// corrupt the stream (and race under TSan).
std::atomic<LogLevel> minLevel{initialLevel()};
std::atomic<bool> timestamps{initialTimestamps()};

std::mutex &
emitMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** Seconds since the first emitted message. */
double
elapsedSeconds()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point start = Clock::now();
    return std::chrono::duration<double>(Clock::now() - start).count();
}

void
emit(LogLevel level, const char *tag, const std::string &msg)
{
    if (level < minLevel.load(std::memory_order_relaxed))
        return;
    // Format outside the lock; hold it only for the single write so
    // concurrent emitters serialize whole lines, never fragments.
    std::string line;
    if (timestamps.load(std::memory_order_relaxed)) {
        char prefix[32];
        std::snprintf(prefix, sizeof(prefix), "[%10.3f] ",
                      elapsedSeconds());
        line = prefix;
    }
    line += tag;
    line += ": ";
    line += msg;
    line += '\n';
    const std::lock_guard<std::mutex> lock(emitMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    minLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return minLevel.load(std::memory_order_relaxed);
}

void
setLogTimestamps(bool enabled)
{
    timestamps.store(enabled, std::memory_order_relaxed);
}

bool
logTimestamps()
{
    return timestamps.load(std::memory_order_relaxed);
}

void
debug(const std::string &msg)
{
    emit(LogLevel::Debug, "debug", msg);
}

void
inform(const std::string &msg)
{
    emit(LogLevel::Info, "info", msg);
}

void
warn(const std::string &msg)
{
    emit(LogLevel::Warn, "warn", msg);
}

void
error(const std::string &msg)
{
    emit(LogLevel::Error, "error", msg);
}

} // namespace copernicus
