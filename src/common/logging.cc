#include "common/logging.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace copernicus {

namespace {

LogLevel
initialLevel()
{
    const char *env = std::getenv("COPERNICUS_LOG_LEVEL");
    if (env == nullptr)
        return LogLevel::Info;
    const std::string value(env);
    if (value == "debug")
        return LogLevel::Debug;
    if (value == "info")
        return LogLevel::Info;
    if (value == "warn")
        return LogLevel::Warn;
    if (value == "error")
        return LogLevel::Error;
    std::fprintf(stderr,
                 "warn: unknown COPERNICUS_LOG_LEVEL '%s' "
                 "(expected debug|info|warn|error)\n",
                 env);
    return LogLevel::Info;
}

bool
initialTimestamps()
{
    const char *env = std::getenv("COPERNICUS_LOG_TIMESTAMPS");
    return env != nullptr && env[0] == '1';
}

LogLevel minLevel = initialLevel();
bool timestamps = initialTimestamps();

/** Seconds since the first emitted message. */
double
elapsedSeconds()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point start = Clock::now();
    return std::chrono::duration<double>(Clock::now() - start).count();
}

void
emit(LogLevel level, const char *tag, const std::string &msg)
{
    if (level < minLevel)
        return;
    if (timestamps) {
        std::fprintf(stderr, "[%10.3f] %s: %s\n", elapsedSeconds(), tag,
                     msg.c_str());
    } else {
        std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    }
}

} // namespace

void
setLogLevel(LogLevel level)
{
    minLevel = level;
}

LogLevel
logLevel()
{
    return minLevel;
}

void
setLogTimestamps(bool enabled)
{
    timestamps = enabled;
}

bool
logTimestamps()
{
    return timestamps;
}

void
debug(const std::string &msg)
{
    emit(LogLevel::Debug, "debug", msg);
}

void
inform(const std::string &msg)
{
    emit(LogLevel::Info, "info", msg);
}

void
warn(const std::string &msg)
{
    emit(LogLevel::Warn, "warn", msg);
}

void
error(const std::string &msg)
{
    emit(LogLevel::Error, "error", msg);
}

} // namespace copernicus
