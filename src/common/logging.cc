#include "common/logging.hh"

#include <cstdio>

namespace copernicus {

namespace {

LogLevel minLevel = LogLevel::Info;

void
emit(LogLevel level, const char *tag, const std::string &msg)
{
    if (level < minLevel)
        return;
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace

void
setLogLevel(LogLevel level)
{
    minLevel = level;
}

LogLevel
logLevel()
{
    return minLevel;
}

void
debug(const std::string &msg)
{
    emit(LogLevel::Debug, "debug", msg);
}

void
inform(const std::string &msg)
{
    emit(LogLevel::Info, "info", msg);
}

void
warn(const std::string &msg)
{
    emit(LogLevel::Warn, "warn", msg);
}

} // namespace copernicus
