/**
 * @file
 * Work-stealing thread pool for the host-side sweep hot paths.
 *
 * The characterization is a large Cartesian sweep (workloads x formats
 * x partition sizes) of *pure* evaluations: every design point reads
 * shared immutable inputs and writes one indexed output slot. That
 * shape makes parallelism deterministic by construction — results are
 * ordered by index, never by completion — and it is the only shape
 * this pool is designed for.
 *
 * Topology: `jobs` execution lanes total. A ThreadPool(jobs) spawns
 * `jobs - 1` worker threads; the thread that calls parallelFor() is
 * the jobs-th lane and executes tasks itself while it waits. Each lane
 * owns a deque: owners pop from the front (LIFO for cache locality),
 * idle lanes steal from the back of a victim's deque (FIFO, oldest
 * work first). With jobs <= 1 no threads are ever spawned and every
 * entry point degrades to a plain serial loop — the graceful
 * single-thread fallback.
 *
 * Nesting: a parallelFor() issued from inside a pool task (any pool)
 * runs serially inline on the calling lane. This keeps nested sweeps
 * (Study::run -> planFormats) deadlock-free without a scheduler.
 *
 * Exceptions: the first exception thrown by a parallelFor body is
 * captured and rethrown on the calling thread after the loop drains;
 * submit() propagates through the returned future.
 *
 * The `jobs` knob resolves through effectiveJobs(): explicit value >
 * process-wide override (--jobs) > COPERNICUS_JOBS > hardware
 * concurrency.
 */

#ifndef COPERNICUS_COMMON_THREAD_POOL_HH
#define COPERNICUS_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/mutex.hh"
#include "common/stat_group.hh"
#include "common/thread_annotations.hh"
#include "common/trace_context.hh"

namespace copernicus {

/** Hardware concurrency, never less than 1. */
unsigned hardwareJobs();

/**
 * Process-wide jobs override (the --jobs flag); 0 clears it. Takes
 * effect on the next effectiveJobs() resolution — pools already
 * constructed keep their size.
 */
void setJobsOverride(unsigned jobs);

/**
 * Resolve a jobs request: @p requested if positive, else the override,
 * else COPERNICUS_JOBS from the environment, else hardwareJobs().
 */
unsigned effectiveJobs(unsigned requested = 0);

/** Work-stealing pool of `jobs` execution lanes. */
class ThreadPool
{
  public:
    /** @param jobs Lane count request, resolved via effectiveJobs(). */
    explicit ThreadPool(unsigned jobs = 0);

    /** Joins all workers; queued submit() tasks are drained first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Execution lanes (worker threads + the calling thread). */
    unsigned jobs() const { return njobs; }

    /**
     * Run body(0) .. body(n-1), each exactly once. Indices are chunked
     * and distributed over the lanes; the caller participates until
     * the loop drains. Determinism contract: the body must write only
     * to state indexed by its argument. Serial inline when jobs <= 1,
     * n <= 1, or when called from inside any pool task.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Schedule one task; the future carries its result or exception.
     * Runs inline immediately when jobs <= 1 or when called from
     * inside a pool task. The submitting thread's TraceContext is
     * captured here and restored around the task body, so spans opened
     * inside the task parent under the submitter's span even though
     * the task runs on another lane.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        auto future = task->get_future();
        if (njobs <= 1 || inPoolTask()) {
            (*task)();
            return future;
        }
        pushTask(nextSubmitSlot(),
                 [task, context = currentTraceContext()] {
                     const TraceContextScope scope(context);
                     (*task)();
                 });
        wake();
        return future;
    }

    /** Process-wide pool sized by effectiveJobs(0) at first use. */
    static ThreadPool &global();

    /** True while the calling thread is executing a pool task. */
    static bool inPoolTask();

    /**
     * Process-wide pool/steal counters, aggregated over every pool
     * instance (Study::run builds short-lived pools per sweep).
     */
    struct Counters
    {
        std::uint64_t tasksRun = 0;      ///< tasks executed on any lane
        std::uint64_t steals = 0;        ///< tasks taken from another lane
        std::uint64_t parallelFors = 0;  ///< parallelFor calls that fanned out
        std::uint64_t serialLoops = 0;   ///< parallelFor calls run serially
    };
    static Counters globalCounters();

    /**
     * One executed task on one lane, wall-clock microseconds since the
     * first pool was constructed. Collected process-wide (across pool
     * instances) when lane recording is on, so the Chrome trace can
     * show per-worker activity lanes.
     */
    struct LaneSpan
    {
        unsigned worker = 0;
        std::uint64_t startUs = 0;
        std::uint64_t endUs = 0;
    };

    /** Enable/disable lane-span collection (default off). */
    static void setLaneRecording(bool enabled);
    static bool laneRecording();

    /** Take (and clear) every collected lane span. */
    static std::vector<LaneSpan> drainLaneSpans();

  private:
    /**
     * One lane's deque; the owner locks briefly, thieves likewise.
     * The lane mutex is unranked: it is a leaf lock (nothing is ever
     * acquired under it) and lanes of one pool never nest.
     */
    struct Lane
    {
        Mutex mutex;
        std::deque<std::function<void()>> queue
            COPERNICUS_GUARDED_BY(mutex);
    };

    void workerLoop(unsigned slot);
    bool runOneTask(unsigned slot);
    void pushTask(unsigned slot, std::function<void()> task);
    void wake();
    unsigned nextSubmitSlot();

    unsigned njobs = 1;
    std::vector<std::unique_ptr<Lane>> lanes; ///< slot 0 = caller lane
    std::vector<std::thread> workers;         ///< own slots 1..njobs-1
    std::atomic<std::size_t> queued{0};       ///< tasks sitting in deques
    std::atomic<unsigned> submitSlot{0};
    std::atomic<bool> stopping{false};
    /** CV-paired: stays std::mutex (documented exclusion, mutex.hh). */
    std::mutex sleepMutex;
    std::condition_variable sleepCv;
};

/**
 * ThreadPool::globalCounters() exported as a StatGroup named
 * "thread_pool", for --stats-json alongside the profile group.
 */
class ThreadPoolStats
{
  public:
    ThreadPoolStats();

    const StatGroup &group() const { return grp; }

  private:
    StatGroup grp;
    std::vector<std::unique_ptr<ScalarStat>> owned;
};

} // namespace copernicus

#endif // COPERNICUS_COMMON_THREAD_POOL_HH
