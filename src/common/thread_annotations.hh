/**
 * @file
 * Clang thread-safety annotation macros (no-ops elsewhere).
 *
 * The concurrency-bearing classes (common/mutex.hh wrappers,
 * thread_pool, stat_group, encode_cache, the serve daemon, the
 * observability rings) declare their locking contracts with these
 * macros so `clang++ -Wthread-safety -Werror` can prove statically
 * that every guarded member is only touched with its capability held.
 * The CI `thread-safety` job builds the library tree exactly that way;
 * gcc and non-annotating builds see empty macros and identical code.
 *
 * The macro set mirrors the standard capability vocabulary
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed to
 * keep the global namespace clean.
 */

#ifndef COPERNICUS_COMMON_THREAD_ANNOTATIONS_HH
#define COPERNICUS_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && (!defined(SWIG))
#define COPERNICUS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define COPERNICUS_THREAD_ANNOTATION(x) // no-op
#endif

/** Marks a class as a lockable capability ("mutex"). */
#define COPERNICUS_CAPABILITY(x) \
    COPERNICUS_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class that acquires in its ctor, releases in dtor. */
#define COPERNICUS_SCOPED_CAPABILITY \
    COPERNICUS_THREAD_ANNOTATION(scoped_lockable)

/** Member data that may only be touched while holding @p x. */
#define COPERNICUS_GUARDED_BY(x) \
    COPERNICUS_THREAD_ANNOTATION(guarded_by(x))

/** Pointee data that may only be touched while holding @p x. */
#define COPERNICUS_PT_GUARDED_BY(x) \
    COPERNICUS_THREAD_ANNOTATION(pt_guarded_by(x))

/** The function requires the listed capabilities held on entry. */
#define COPERNICUS_REQUIRES(...) \
    COPERNICUS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** The function must NOT be called with the capabilities held. */
#define COPERNICUS_EXCLUDES(...) \
    COPERNICUS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** The function acquires the capability (and does not release it). */
#define COPERNICUS_ACQUIRE(...) \
    COPERNICUS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** The function releases the capability. */
#define COPERNICUS_RELEASE(...) \
    COPERNICUS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** try-lock: acquires when returning @p ... (true/false). */
#define COPERNICUS_TRY_ACQUIRE(...) \
    COPERNICUS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Returns a reference to the capability guarding this object. */
#define COPERNICUS_RETURN_CAPABILITY(x) \
    COPERNICUS_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: the analysis skips this function body entirely. */
#define COPERNICUS_NO_THREAD_SAFETY_ANALYSIS \
    COPERNICUS_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // COPERNICUS_COMMON_THREAD_ANNOTATIONS_HH
