/**
 * @file
 * Read-only memory-mapped file with a bounded-residency scan mode.
 *
 * The out-of-core store reads containers and MatrixMarket drops far
 * larger than RAM through one mapping. Sequential consumers call
 * dropPagesBefore() as their cursor advances, which returns the
 * already-consumed clean file pages to the kernel (madvise
 * MADV_DONTNEED), so a full-file scan keeps resident set proportional
 * to the advisory window, not the file — the property the streaming
 * ingest bench asserts with a hard RSS budget.
 */

#ifndef COPERNICUS_COMMON_MMAP_FILE_HH
#define COPERNICUS_COMMON_MMAP_FILE_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace copernicus {

/** One read-only mapping of a whole file. */
class MmapFile
{
  public:
    /** Map @p path read-only; FatalError when open/map fails. */
    explicit MmapFile(const std::string &path);

    ~MmapFile();

    MmapFile(const MmapFile &) = delete;
    MmapFile &operator=(const MmapFile &) = delete;

    MmapFile(MmapFile &&other) noexcept;
    MmapFile &operator=(MmapFile &&other) noexcept;

    /** First mapped byte; nullptr only for an empty file. */
    const unsigned char *data() const { return base; }

    /** File length in bytes. */
    std::size_t size() const { return length; }

    const std::string &path() const { return filePath; }

    /**
     * Advise the kernel that bytes before @p offset will not be
     * touched again, releasing their resident pages. Offsets are
     * rounded down to a page boundary; calling with a smaller offset
     * than a previous call is a no-op. Purely advisory — the data
     * stays readable (it would fault back in from the file).
     */
    void dropPagesBefore(std::size_t offset);

    /**
     * Rewind the drop cursor to the start of the file. Required
     * before re-scanning: dropPagesBefore() only ever advances, so a
     * second forward scan would otherwise re-fault every page and
     * never release one (the multi-pass streaming partitioner hits
     * exactly this).
     */
    void resetDropWindow();

  private:
    void unmap();

    std::string filePath;
    const unsigned char *base = nullptr;
    std::size_t length = 0;
    std::size_t droppedBelow = 0;
};

} // namespace copernicus

#endif // COPERNICUS_COMMON_MMAP_FILE_HH
