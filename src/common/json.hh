/**
 * @file
 * Minimal JSON helpers shared by the stats and trace exporters.
 *
 * Copernicus emits machine-readable artifacts (Chrome trace_event
 * files, stats dumps) without taking a serialisation dependency: the
 * writers assemble JSON by hand and use these helpers for the only two
 * hard parts, string escaping and number formatting. jsonValid() is a
 * deliberately small recursive-descent checker used by tests and the
 * CLI smoke test to prove an emitted artifact parses.
 */

#ifndef COPERNICUS_COMMON_JSON_HH
#define COPERNICUS_COMMON_JSON_HH

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace copernicus {

/** Escape @p text for inclusion inside a JSON string literal. */
std::string jsonEscape(std::string_view text);

/** Write @p text as a quoted, escaped JSON string. */
void writeJsonString(std::ostream &out, std::string_view text);

/**
 * Write @p v as a JSON number.
 *
 * JSON has no NaN/Infinity literals; non-finite values are emitted as
 * 0 so the artifact always parses. The representation is the shortest
 * decimal string that parses back to exactly @p v, so 0.1 emits as
 * "0.1" — never "0.10000000000000001" — and committed artifacts don't
 * accumulate float-noise diffs.
 */
void writeJsonNumber(std::ostream &out, double v);

/**
 * True when @p text is exactly one well-formed JSON value (with
 * optional surrounding whitespace).
 *
 * Checks syntax only — no object-key uniqueness, no number range. The
 * nesting depth is capped at 256 to keep the checker iterative-stack
 * safe on hostile input.
 */
bool jsonValid(std::string_view text);

/**
 * One parsed JSON value.
 *
 * The serve protocol (src/serve) reads newline-delimited JSON
 * requests, so unlike the write-only exporters it needs an actual
 * parse tree. The representation is deliberately plain: public fields,
 * one vector per composite kind, object members in source order
 * (duplicate keys keep the first occurrence on lookup). Numbers are
 * doubles — integral ids survive exactly up to 2^53, far beyond any
 * request id.
 */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string text;
    std::vector<JsonValue> elements; ///< Kind::Array
    std::vector<std::pair<std::string, JsonValue>> members; ///< Object

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Member @p key as a number, or @p fallback when absent. */
    double numberOr(std::string_view key, double fallback) const;

    /** Member @p key as a string, or @p fallback when absent. */
    std::string stringOr(std::string_view key,
                         std::string_view fallback) const;

    /** Member @p key as a bool, or @p fallback when absent. */
    bool boolOr(std::string_view key, bool fallback) const;
};

/**
 * Parse exactly one JSON value (with optional surrounding whitespace)
 * into @p out.
 *
 * Accepts the same grammar jsonValid() checks, including its 256-level
 * nesting cap. \uXXXX escapes are decoded to UTF-8 code-unit-wise
 * (surrogate pairs are not recombined — request text is ASCII in
 * practice). Returns false on malformed input, leaving @p out in an
 * unspecified but valid state.
 */
bool parseJson(std::string_view text, JsonValue &out);

} // namespace copernicus

#endif // COPERNICUS_COMMON_JSON_HH
