/**
 * @file
 * Minimal JSON helpers shared by the stats and trace exporters.
 *
 * Copernicus emits machine-readable artifacts (Chrome trace_event
 * files, stats dumps) without taking a serialisation dependency: the
 * writers assemble JSON by hand and use these helpers for the only two
 * hard parts, string escaping and number formatting. jsonValid() is a
 * deliberately small recursive-descent checker used by tests and the
 * CLI smoke test to prove an emitted artifact parses.
 */

#ifndef COPERNICUS_COMMON_JSON_HH
#define COPERNICUS_COMMON_JSON_HH

#include <iosfwd>
#include <string>
#include <string_view>

namespace copernicus {

/** Escape @p text for inclusion inside a JSON string literal. */
std::string jsonEscape(std::string_view text);

/** Write @p text as a quoted, escaped JSON string. */
void writeJsonString(std::ostream &out, std::string_view text);

/**
 * Write @p v as a JSON number.
 *
 * JSON has no NaN/Infinity literals; non-finite values are emitted as
 * 0 so the artifact always parses.
 */
void writeJsonNumber(std::ostream &out, double v);

/**
 * True when @p text is exactly one well-formed JSON value (with
 * optional surrounding whitespace).
 *
 * Checks syntax only — no object-key uniqueness, no number range. The
 * nesting depth is capped at 256 to keep the checker iterative-stack
 * safe on hostile input.
 */
bool jsonValid(std::string_view text);

} // namespace copernicus

#endif // COPERNICUS_COMMON_JSON_HH
