#include "common/mmap_file.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/status.hh"

namespace copernicus {

namespace {

std::size_t
pageFloor(std::size_t offset)
{
    static const std::size_t page =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    return offset - offset % page;
}

} // namespace

MmapFile::MmapFile(const std::string &path) : filePath(path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    fatalIf(fd < 0, "mmap: cannot open '" + path +
                        "': " + std::strerror(errno));
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        fatal("mmap: cannot stat '" + path +
              "': " + std::strerror(err));
    }
    length = static_cast<std::size_t>(st.st_size);
    if (length == 0) {
        ::close(fd);
        return; // empty file: valid, nothing to map
    }
    void *mapped = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd,
                          0);
    const int err = errno;
    ::close(fd); // the mapping keeps its own file reference
    fatalIf(mapped == MAP_FAILED, "mmap: cannot map '" + path +
                                      "': " + std::strerror(err));
    base = static_cast<const unsigned char *>(mapped);
    // Scans are forward-only; let the kernel read ahead aggressively.
    ::madvise(mapped, length, MADV_SEQUENTIAL);
}

MmapFile::~MmapFile() { unmap(); }

MmapFile::MmapFile(MmapFile &&other) noexcept
    : filePath(std::move(other.filePath)), base(other.base),
      length(other.length), droppedBelow(other.droppedBelow)
{
    other.base = nullptr;
    other.length = 0;
    other.droppedBelow = 0;
}

MmapFile &
MmapFile::operator=(MmapFile &&other) noexcept
{
    if (this != &other) {
        unmap();
        filePath = std::move(other.filePath);
        base = other.base;
        length = other.length;
        droppedBelow = other.droppedBelow;
        other.base = nullptr;
        other.length = 0;
        other.droppedBelow = 0;
    }
    return *this;
}

void
MmapFile::unmap()
{
    if (base != nullptr) {
        ::munmap(const_cast<unsigned char *>(base), length);
        base = nullptr;
        length = 0;
    }
}

void
MmapFile::resetDropWindow()
{
    droppedBelow = 0;
}

void
MmapFile::dropPagesBefore(std::size_t offset)
{
    if (base == nullptr)
        return;
    const std::size_t end = pageFloor(std::min(offset, length));
    if (end <= droppedBelow)
        return;
    ::madvise(const_cast<unsigned char *>(base) + droppedBelow,
              end - droppedBelow, MADV_DONTNEED);
    droppedBelow = end;
}

} // namespace copernicus
