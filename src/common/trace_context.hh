/**
 * @file
 * Request-scoped trace identity, propagated across threads and the
 * serve wire protocol.
 *
 * A TraceContext is the minimal causal identity of "the work I am
 * doing right now": the trace (one per request) and the span whose
 * children any new span should attach to. It lives in common/ — below
 * the trace library — because the thread pool must capture the
 * submitting thread's context and restore it inside the worker lane
 * without depending on span recording; the context is three integers,
 * nothing more.
 *
 * Conventions:
 *  - id 0 is "no id"; a context with traceId 0 is invalid/absent.
 *  - ids are process-local (allocated from one atomic counter) and are
 *    serialised as lowercase hex strings on the wire, so they survive
 *    JSON number precision untouched.
 *  - the current context is thread-local; TraceContextScope swaps it
 *    in RAII-style so nested scopes restore their parent exactly.
 *
 * observeNowUs() is the shared observability clock: monotonic
 * microseconds since the first call in the process. Every span, wide
 * event and request timestamp uses it, so all the per-request
 * artifacts line up on one axis.
 */

#ifndef COPERNICUS_COMMON_TRACE_CONTEXT_HH
#define COPERNICUS_COMMON_TRACE_CONTEXT_HH

#include <cstdint>
#include <string>

namespace copernicus {

/** The causal identity of the work on the current thread. */
struct TraceContext
{
    std::uint64_t traceId = 0; ///< one per request; 0 = no trace
    std::uint64_t spanId = 0;  ///< parent-to-be for new child spans

    bool valid() const { return traceId != 0; }
};

/** The calling thread's current context (invalid when unset). */
TraceContext currentTraceContext();

/** Replace the calling thread's current context. */
void setCurrentTraceContext(const TraceContext &context);

/** Allocate a fresh trace id (never 0). */
std::uint64_t newTraceId();

/** Allocate a fresh span id (never 0). */
std::uint64_t newSpanId();

/**
 * RAII: install @p context as the thread's current context, restore
 * the previous one on destruction. The thread pool wraps every task in
 * one of these so work inherits the submitter's identity.
 */
class TraceContextScope
{
  public:
    explicit TraceContextScope(const TraceContext &context)
        : saved(currentTraceContext())
    {
        setCurrentTraceContext(context);
    }

    ~TraceContextScope() { setCurrentTraceContext(saved); }

    TraceContextScope(const TraceContextScope &) = delete;
    TraceContextScope &operator=(const TraceContextScope &) = delete;

  private:
    TraceContext saved;
};

/**
 * Monotonic microseconds since the process's observability epoch (the
 * first call). Shared by spans, wide events and the serve request
 * clock so every artifact shares one time axis.
 */
std::uint64_t observeNowUs();

/** Lowercase-hex wire form of an id ("0" for no id). */
std::string traceIdToHex(std::uint64_t id);

/**
 * Parse a lowercase/uppercase hex id; returns 0 (meaning "absent") on
 * anything malformed — observability must never fail a request.
 */
std::uint64_t traceIdFromHex(const std::string &hex);

} // namespace copernicus

#endif // COPERNICUS_COMMON_TRACE_CONTEXT_HH
