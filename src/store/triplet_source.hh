/**
 * @file
 * TripletSource: a re-scannable stream of canonical triplets.
 *
 * The streaming partitioner makes several bounded-memory passes over
 * its input, so it cannot take a one-shot iterator: it needs something
 * it can scan from the top repeatedly. Both the in-memory
 * TripletMatrix and the mmap-backed binary container satisfy that
 * contract, which is what lets the golden roundtrip tests drive the
 * exact same partitioning code over either representation.
 *
 * Contract: scan() visits every non-zero exactly once in canonical
 * order — row-major, strictly increasing (row, col) — with in-range
 * coordinates and non-zero values, and every scan() visits the same
 * sequence. That is precisely the order TripletMatrix::finalize()
 * establishes and CbmWriter enforces on append.
 */

#ifndef COPERNICUS_STORE_TRIPLET_SOURCE_HH
#define COPERNICUS_STORE_TRIPLET_SOURCE_HH

#include <cstdint>
#include <functional>

#include "common/status.hh"
#include "matrix/triplet_matrix.hh"

namespace copernicus {

/** Re-scannable canonical triplet stream (see file comment). */
class TripletSource
{
  public:
    virtual ~TripletSource() = default;

    virtual Index rows() const = 0;
    virtual Index cols() const = 0;

    /** Total non-zero count (known up front for pass planning). */
    virtual std::uint64_t nnz() const = 0;

    /** Visit every triplet in canonical order, front to back. */
    virtual void
    scan(const std::function<void(const Triplet &)> &fn) const = 0;
};

/** Adapter exposing a finalized TripletMatrix as a TripletSource. */
class TripletMatrixSource : public TripletSource
{
  public:
    /** @p matrix must be finalized and outlive the source. */
    explicit TripletMatrixSource(const TripletMatrix &matrix)
        : source(&matrix)
    {
        panicIf(!matrix.finalized(),
                "TripletMatrixSource requires a finalized matrix");
    }

    Index rows() const override { return source->rows(); }
    Index cols() const override { return source->cols(); }
    std::uint64_t nnz() const override { return source->nnz(); }

    void
    scan(const std::function<void(const Triplet &)> &fn) const override
    {
        for (const Triplet &t : source->triplets())
            fn(t);
    }

  private:
    const TripletMatrix *source;
};

} // namespace copernicus

#endif // COPERNICUS_STORE_TRIPLET_SOURCE_HH
