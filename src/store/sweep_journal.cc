#include "store/sweep_journal.hh"

#include <cstdint>
#include <optional>
#include <sstream>

#include "common/fnv.hh"
#include "common/json.hh"
#include "common/status.hh"

namespace copernicus {

namespace {

constexpr std::uint32_t journalVersion = 1;

/**
 * 64-bit counters travel as decimal strings: JSON numbers are doubles
 * in this codebase's parser and would silently round past 2^53,
 * breaking the byte-identical-resume guarantee.
 */
void
writeU64Field(std::ostream &out, const char *key, std::uint64_t value)
{
    out << ",\"" << key << "\":\"" << value << "\"";
}

void
writeNumberField(std::ostream &out, const char *key, double value)
{
    out << ",\"" << key << "\":";
    writeJsonNumber(out, value);
}

std::string
serializeHeader(const JournalIdentity &identity)
{
    std::ostringstream out;
    out << "{\"kind\":\"header\",\"version\":" << journalVersion;
    writeU64Field(out, "matrix_hash", identity.matrixHash);
    writeU64Field(out, "matrix_epoch", identity.matrixEpoch);
    writeU64Field(out, "config_hash", identity.configHash);
    out << "}";
    return out.str();
}

std::string
serializeCell(const StudyRow &row)
{
    std::ostringstream out;
    out << "{\"kind\":\"cell\",\"workload\":";
    writeJsonString(out, row.workload);
    out << ",\"format\":";
    writeJsonString(out, formatName(row.format));
    out << ",\"p\":" << row.partitionSize;
    writeNumberField(out, "sigma", row.meanSigma);
    writeU64Field(out, "total_cycles", row.totalCycles);
    writeNumberField(out, "seconds", row.seconds);
    writeU64Field(out, "memory_cycles", row.memoryCycles);
    writeU64Field(out, "compute_cycles", row.computeCycles);
    writeNumberField(out, "balance", row.balanceRatio);
    writeNumberField(out, "throughput", row.throughput);
    writeNumberField(out, "bw_util", row.bandwidthUtilization);
    writeU64Field(out, "bytes", row.totalBytes);
    writeU64Field(out, "partitions", row.partitions);
    writeNumberField(out, "bram18k", row.resources.bram18k);
    writeNumberField(out, "ff_k", row.resources.ffK);
    writeNumberField(out, "lut_k", row.resources.lutK);
    out << ",\"calibrated\":"
        << (row.resources.calibrated ? "true" : "false");
    writeNumberField(out, "logic_w", row.power.logicW);
    writeNumberField(out, "bram_w", row.power.bramW);
    writeNumberField(out, "signals_w", row.power.signalsW);
    writeNumberField(out, "static_w", row.power.staticW);
    out << "}";
    return out.str();
}

bool
readU64(const JsonValue &obj, const char *key, std::uint64_t &value)
{
    const JsonValue *member = obj.find(key);
    if (member == nullptr || !member->isString())
        return false;
    try {
        std::size_t pos = 0;
        value = std::stoull(member->text, &pos);
        return pos == member->text.size();
    } catch (const std::exception &) {
        return false;
    }
}

bool
readNumber(const JsonValue &obj, const char *key, double &value)
{
    const JsonValue *member = obj.find(key);
    if (member == nullptr || !member->isNumber())
        return false;
    value = member->number;
    return true;
}

/** Parse one cell line; nullopt for anything torn or foreign. */
std::optional<StudyRow>
parseCell(const JsonValue &obj)
{
    StudyRow row;
    const JsonValue *workload = obj.find("workload");
    const JsonValue *format = obj.find("format");
    const JsonValue *p = obj.find("p");
    if (workload == nullptr || !workload->isString() ||
        format == nullptr || !format->isString() || p == nullptr ||
        !p->isNumber()) {
        return std::nullopt;
    }
    row.workload = workload->text;
    try {
        row.format = parseFormatKind(format->text);
    } catch (const FatalError &) {
        return std::nullopt;
    }
    row.partitionSize = static_cast<Index>(p->number);

    std::uint64_t partitions = 0;
    const bool ok =
        readNumber(obj, "sigma", row.meanSigma) &&
        readU64(obj, "total_cycles", row.totalCycles) &&
        readNumber(obj, "seconds", row.seconds) &&
        readU64(obj, "memory_cycles", row.memoryCycles) &&
        readU64(obj, "compute_cycles", row.computeCycles) &&
        readNumber(obj, "balance", row.balanceRatio) &&
        readNumber(obj, "throughput", row.throughput) &&
        readNumber(obj, "bw_util", row.bandwidthUtilization) &&
        readU64(obj, "bytes", row.totalBytes) &&
        readU64(obj, "partitions", partitions) &&
        readNumber(obj, "bram18k", row.resources.bram18k) &&
        readNumber(obj, "ff_k", row.resources.ffK) &&
        readNumber(obj, "lut_k", row.resources.lutK) &&
        readNumber(obj, "logic_w", row.power.logicW) &&
        readNumber(obj, "bram_w", row.power.bramW) &&
        readNumber(obj, "signals_w", row.power.signalsW) &&
        readNumber(obj, "static_w", row.power.staticW);
    if (!ok)
        return std::nullopt;
    row.partitions = static_cast<std::size_t>(partitions);
    row.resources.calibrated = obj.boolOr("calibrated", false);
    return row;
}

} // namespace

std::uint64_t
sweepConfigHash(const std::vector<Index> &partitionSizes,
                const std::vector<FormatKind> &formats)
{
    std::uint64_t hash = fnvOffsetBasis;
    hash = fnv1aValue<std::uint64_t>(partitionSizes.size(), hash);
    for (Index p : partitionSizes)
        hash = fnv1aValue(p, hash);
    hash = fnv1aValue<std::uint64_t>(formats.size(), hash);
    for (FormatKind kind : formats)
        hash = fnv1aValue(static_cast<std::uint32_t>(kind), hash);
    return hash;
}

std::uint64_t
workloadSetHash(
    const std::vector<std::pair<std::string, std::uint64_t>> &workloads)
{
    std::uint64_t hash = fnvOffsetBasis;
    hash = fnv1aValue<std::uint64_t>(workloads.size(), hash);
    for (const auto &[name, contentHash] : workloads) {
        hash = fnv1aValue<std::uint64_t>(name.size(), hash);
        hash = fnv1a(name.data(), name.size(), hash);
        hash = fnv1aValue(contentHash, hash);
    }
    return hash;
}

SweepJournal::SweepJournal(const std::string &path,
                           const JournalIdentity &identity)
    : journalPath(path)
{
    load(identity);
}

void
SweepJournal::load(const JournalIdentity &identity)
{
    const MutexLock lock(mutex);

    std::string existing;
    {
        std::ifstream in(journalPath, std::ios::binary);
        if (in) {
            std::ostringstream buffer;
            buffer << in.rdbuf();
            existing = buffer.str();
        }
    }

    if (!existing.empty()) {
        bool sawHeader = false;
        std::size_t pos = 0;
        while (pos < existing.size()) {
            std::size_t end = existing.find('\n', pos);
            if (end == std::string::npos)
                end = existing.size();
            const std::string_view line(existing.data() + pos,
                                        end - pos);
            pos = end + 1;
            JsonValue value;
            // A torn line (SIGKILL mid-write) simply fails to parse;
            // its design point reruns and is re-appended.
            if (line.empty() || !parseJson(line, value) ||
                !value.isObject()) {
                continue;
            }
            const std::string kind = value.stringOr("kind", "");
            if (!sawHeader) {
                fatalIf(kind != "header",
                        "sweep journal '" + journalPath +
                            "': first record is not an identity "
                            "header — not a sweep journal");
                std::uint64_t version = 0;
                double versionNumber = 0;
                if (readNumber(value, "version", versionNumber))
                    version =
                        static_cast<std::uint64_t>(versionNumber);
                fatalIf(version != journalVersion,
                        "sweep journal '" + journalPath +
                            "': unsupported version " +
                            std::to_string(version));
                JournalIdentity stored;
                fatalIf(!readU64(value, "matrix_hash",
                                 stored.matrixHash) ||
                            !readU64(value, "matrix_epoch",
                                     stored.matrixEpoch) ||
                            !readU64(value, "config_hash",
                                     stored.configHash),
                        "sweep journal '" + journalPath +
                            "': corrupt identity header");
                const auto stale = [&](const char *what,
                                       std::uint64_t was,
                                       std::uint64_t now) {
                    fatal("sweep journal '" + journalPath +
                          "' is stale: " + what +
                          " mismatch (journal " + std::to_string(was) +
                          ", current " + std::to_string(now) +
                          ") — the input changed since the journal "
                          "was written; delete the journal to start "
                          "over");
                };
                if (stored.matrixHash != identity.matrixHash)
                    stale("matrix content hash", stored.matrixHash,
                          identity.matrixHash);
                if (stored.matrixEpoch != identity.matrixEpoch)
                    stale("container epoch", stored.matrixEpoch,
                          identity.matrixEpoch);
                if (stored.configHash != identity.configHash)
                    stale("sweep config", stored.configHash,
                          identity.configHash);
                sawHeader = true;
                continue;
            }
            if (kind != "cell")
                continue;
            std::optional<StudyRow> row = parseCell(value);
            if (!row)
                continue;
            // Keep the first occurrence: a duplicate can only come
            // from a rerun of the same pure design point.
            cells.emplace(CellKey(row->workload,
                                  static_cast<int>(row->format),
                                  row->partitionSize),
                          *row);
        }
        fatalIf(!sawHeader, "sweep journal '" + journalPath +
                                "': no identity header found — not a "
                                "sweep journal");
        resumed = cells.size();
    }

    out.open(journalPath, std::ios::binary | std::ios::app);
    fatalIf(!out, "sweep journal: cannot open '" + journalPath +
                      "' for appending");
    if (existing.empty())
        out << serializeHeader(identity) << '\n';
    else if (existing.back() != '\n')
        out << '\n'; // terminate the torn line before appending
    out.flush();
    fatalIf(!out,
            "sweep journal: write to '" + journalPath + "' failed");
}

std::size_t
SweepJournal::resumedCells() const
{
    const MutexLock lock(mutex);
    return resumed;
}

const StudyRow *
SweepJournal::completed(const std::string &workload, FormatKind format,
                        Index partitionSize) const
{
    const MutexLock lock(mutex);
    const auto it = cells.find(
        CellKey(workload, static_cast<int>(format), partitionSize));
    // Map nodes are stable and never erased, so the pointer outlives
    // the lock.
    return it == cells.end() ? nullptr : &it->second;
}

void
SweepJournal::record(const StudyRow &row)
{
    const std::string line = serializeCell(row);
    const MutexLock lock(mutex);
    cells.emplace(CellKey(row.workload, static_cast<int>(row.format),
                          row.partitionSize),
                  row);
    // One flushed line per design point: a kill between records loses
    // nothing, a kill mid-write tears only the final line.
    out << line << '\n';
    out.flush();
    fatalIf(!out,
            "sweep journal: write to '" + journalPath + "' failed");
}

} // namespace copernicus
