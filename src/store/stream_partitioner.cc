#include "store/stream_partitioner.hh"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/math.hh"
#include "common/status.hh"

namespace copernicus {

namespace {

/**
 * Occupied tile ids of one strip range, sorted, plus per-tile counts.
 * Ids are local to the range: (tileRow - stripBegin) * gridCols +
 * tileCol. Mirrors the dense/hashed split of the in-memory
 * partitioner so both paths behave identically on hypersparse grids.
 */
std::vector<std::pair<std::uint64_t, Index>>
countRangeTiles(const std::vector<Triplet> &buffer, Index partitionSize,
                Index stripBegin, Index gridCols,
                std::uint64_t localGrid)
{
    const auto localIdOf = [&](const Triplet &t) {
        return static_cast<std::uint64_t>(t.row / partitionSize -
                                          stripBegin) *
                   gridCols +
               t.col / partitionSize;
    };
    std::vector<std::pair<std::uint64_t, Index>> occupied;
    constexpr std::uint64_t denseGridLimit = 1ULL << 24;
    if (localGrid <= denseGridLimit) {
        std::vector<Index> counts(localGrid, 0);
        for (const Triplet &t : buffer)
            ++counts[localIdOf(t)];
        for (std::uint64_t id = 0; id < localGrid; ++id)
            if (counts[id] != 0)
                occupied.emplace_back(id, counts[id]);
    } else {
        std::unordered_map<std::uint64_t, Index> counts;
        counts.reserve(buffer.size());
        for (const Triplet &t : buffer)
            ++counts[localIdOf(t)];
        occupied.assign(counts.begin(), counts.end());
        std::sort(occupied.begin(), occupied.end());
    }
    return occupied;
}

} // namespace

StreamPartitionStats
forEachTileStreaming(const TripletSource &source, Index partitionSize,
                     const StreamPartitionOptions &options,
                     const std::function<void(Tile &&)> &consume)
{
    fatalIf(partitionSize == 0, "partition size must be positive");

    const Index gridRows =
        static_cast<Index>(ceilDiv(source.rows(), partitionSize));
    const Index gridCols =
        static_cast<Index>(ceilDiv(source.cols(), partitionSize));
    const std::uint64_t grid =
        static_cast<std::uint64_t>(gridRows) * gridCols;

    StreamPartitionStats stats;

    // Counting pass: non-zeros per tile-row strip, O(gridRows) state.
    std::vector<std::uint64_t> stripNnz(gridRows, 0);
    std::uint64_t counted = 0;
    source.scan([&](const Triplet &t) {
        ++stripNnz[t.row / partitionSize];
        ++counted;
    });
    stats.sourceScans = 1;
    panicIf(counted != source.nnz(),
            "TripletSource scan count disagrees with its nnz()");

    const std::uint64_t budget =
        std::max<std::uint64_t>(options.maxBufferedNnz, 1);

    Index strip = 0;
    while (strip < gridRows) {
        // Greedy pass plan: consecutive strips while they fit the
        // budget; a single over-budget strip still forms one pass
        // (the strip is the emission granularity).
        Index end = strip;
        std::uint64_t passNnz = 0;
        while (end < gridRows &&
               (end == strip || passNnz + stripNnz[end] <= budget)) {
            passNnz += stripNnz[end];
            ++end;
        }
        if (passNnz == 0) {
            strip = end; // nothing but zero tiles; no scan needed
            continue;
        }

        // Buffer this range's triplets: a contiguous subsequence of
        // the canonical stream, so the buffer is itself in canonical
        // order and a stable scatter keeps every bucket row-major —
        // byte-identical to the in-memory path.
        const std::uint64_t rowLo =
            static_cast<std::uint64_t>(strip) * partitionSize;
        const std::uint64_t rowHi = std::min<std::uint64_t>(
            static_cast<std::uint64_t>(end) * partitionSize,
            source.rows());
        std::vector<Triplet> buffer;
        buffer.reserve(passNnz);
        source.scan([&](const Triplet &t) {
            if (t.row >= rowLo && t.row < rowHi)
                buffer.push_back(t);
        });
        ++stats.sourceScans;
        ++stats.passes;
        panicIf(buffer.size() != passNnz,
                "streaming pass buffered a different count than the "
                "counting pass predicted");
        stats.peakBufferedNnz =
            std::max<std::uint64_t>(stats.peakBufferedNnz,
                                    buffer.size());

        const std::uint64_t localGrid =
            static_cast<std::uint64_t>(end - strip) * gridCols;
        const auto occupied = countRangeTiles(
            buffer, partitionSize, strip, gridCols, localGrid);

        std::unordered_map<std::uint64_t, std::size_t> slotOf;
        slotOf.reserve(occupied.size());
        std::vector<std::vector<TileNonzero>> buckets(occupied.size());
        for (std::size_t i = 0; i < occupied.size(); ++i) {
            slotOf.emplace(occupied[i].first, i);
            buckets[i].reserve(occupied[i].second);
        }
        for (const Triplet &t : buffer) {
            const std::uint64_t id =
                static_cast<std::uint64_t>(t.row / partitionSize -
                                           strip) *
                    gridCols +
                t.col / partitionSize;
            buckets[slotOf.find(id)->second].push_back(
                {t.row % partitionSize, t.col % partitionSize,
                 t.value});
        }
        buffer.clear();
        buffer.shrink_to_fit();

        for (std::size_t i = 0; i < occupied.size(); ++i) {
            const std::uint64_t id = occupied[i].first;
            consume(Tile(
                partitionSize,
                strip + static_cast<Index>(id / gridCols),
                static_cast<Index>(id % gridCols),
                std::move(buckets[i])));
        }
        stats.nonZeroTiles += occupied.size();
        strip = end;
    }

    stats.zeroTiles =
        static_cast<std::size_t>(grid - stats.nonZeroTiles);
    return stats;
}

Partitioning
partitionStreaming(const TripletSource &source, Index partitionSize,
                   const StreamPartitionOptions &options,
                   StreamPartitionStats *stats)
{
    Partitioning result;
    result.partitionSize = partitionSize;
    result.gridRows =
        static_cast<Index>(ceilDiv(source.rows(), partitionSize));
    result.gridCols =
        static_cast<Index>(ceilDiv(source.cols(), partitionSize));
    const StreamPartitionStats run = forEachTileStreaming(
        source, partitionSize, options,
        [&result](Tile &&tile) {
            result.tiles.push_back(std::move(tile));
        });
    result.zeroTiles = run.zeroTiles;
    if (stats != nullptr)
        *stats = run;
    return result;
}

} // namespace copernicus
