/**
 * @file
 * CBM: the Copernicus binary matrix container.
 *
 * A `.cbm` file is a finalized sparse matrix frozen on disk so that
 * SuiteSparse-scale inputs (100M+ non-zeros) can be swept repeatedly
 * without re-parsing MatrixMarket text or holding the triplet array in
 * RAM. The layout is mmap-friendly: fixed-width little-endian fields,
 * triplets stored packed in the canonical row-major order every other
 * layer already assumes, and a chunk directory that lets scans skip to
 * a row range without touching the bytes in between.
 *
 * File layout (all offsets from the start of the file):
 *
 *     [  0, 64)                 CbmHeader (see struct, 64 bytes)
 *     [ 64, 64 + 12*nnz)        nnz packed Triplet records, canonical
 *                               order, grouped into chunks of
 *                               chunkTargetNnz entries (last one short)
 *     [directoryOffset, ...)    chunkCount packed CbmChunkInfo records
 *
 * The content hash is FNV-1a over the packed triplet bytes — the very
 * same fingerprint the encode cache uses for tile streams — so a
 * container, a sweep journal and an in-memory matrix can all agree on
 * identity without a byte-for-byte compare (see common/fnv.hh). The
 * epoch is a caller-chosen generation number carried alongside the
 * hash; regenerating a container for "the same" logical matrix with
 * different content should bump it so stale journals fail loudly.
 */

#ifndef COPERNICUS_STORE_CONTAINER_HH
#define COPERNICUS_STORE_CONTAINER_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/mmap_file.hh"
#include "store/triplet_source.hh"

namespace copernicus {

// The container stores Triplet records verbatim; that is only sound
// if the struct is packed (no padding between the three 4-byte
// members) on every platform that reads or writes a .cbm file.
static_assert(sizeof(Triplet) == 2 * sizeof(Index) + sizeof(Value),
              "Triplet must be packed for container I/O");

/** Fixed 64-byte header at the start of every .cbm file. */
struct CbmHeader
{
    /** "CBM1" — identifies the file type before any other check. */
    char magic[4] = {'C', 'B', 'M', '1'};

    /** Layout version; readers reject anything but cbmVersion. */
    std::uint32_t version = 0;

    std::uint32_t rows = 0;
    std::uint32_t cols = 0;

    /** Total stored non-zeros. */
    std::uint64_t nnz = 0;

    /** Caller-chosen generation number (see file comment). */
    std::uint64_t epoch = 0;

    /** FNV-1a over the 12*nnz packed triplet bytes. */
    std::uint64_t contentHash = 0;

    /** Number of directory entries. */
    std::uint32_t chunkCount = 0;

    /** Triplets per chunk (every chunk but the last holds exactly
     *  this many). */
    std::uint32_t chunkTargetNnz = 0;

    /** File offset of the chunk directory. */
    std::uint64_t directoryOffset = 0;

    /** FNV-1a over the 56 header bytes above, pinned last so header
     *  corruption is distinguishable from payload corruption. */
    std::uint64_t headerHash = 0;
};

static_assert(sizeof(CbmHeader) == 64, "CbmHeader must pack to 64 bytes");

/** One chunk directory entry. */
struct CbmChunkInfo
{
    /** File offset of the chunk's first triplet. */
    std::uint64_t offset = 0;

    /** Triplets in this chunk. */
    std::uint64_t nnz = 0;

    /** Row of the chunk's first / last triplet (canonical order makes
     *  these the chunk's row extent). */
    std::uint32_t firstRow = 0;
    std::uint32_t lastRow = 0;
};

static_assert(sizeof(CbmChunkInfo) == 24,
              "CbmChunkInfo must pack to 24 bytes");

/** The layout version this build reads and writes. */
inline constexpr std::uint32_t cbmVersion = 1;

/** Default chunk granularity: 1M triplets = 12 MB per chunk. */
inline constexpr std::uint32_t cbmDefaultChunkNnz = 1u << 20;

/** FNV-1a over the header fields covered by headerHash. */
std::uint64_t cbmHeaderHash(const CbmHeader &header);

/** Content hash of a finalized matrix; equals the hash a container
 *  written from the same matrix stores in its header. */
std::uint64_t contentHashOf(const TripletMatrix &matrix);

/**
 * Streaming .cbm writer.
 *
 * append() takes triplets in canonical order (strictly increasing
 * (row, col), in-range, non-zero) and finish() seals the file with the
 * directory and header. The writer holds one chunk of bookkeeping, not
 * the matrix, so converting a 100M-nnz input is O(1) in memory.
 */
class CbmWriter
{
  public:
    /**
     * Start writing @p path, truncating any existing file.
     *
     * @param rows Matrix row count; must be positive.
     * @param cols Matrix column count; must be positive.
     * @param epoch Generation number stored in the header.
     * @param chunkTargetNnz Chunk granularity; must be positive.
     */
    CbmWriter(const std::string &path, Index rows, Index cols,
              std::uint64_t epoch,
              std::uint32_t chunkTargetNnz = cbmDefaultChunkNnz);

    ~CbmWriter();

    CbmWriter(const CbmWriter &) = delete;
    CbmWriter &operator=(const CbmWriter &) = delete;

    /** Append one triplet; FatalError on any ordering/range breach. */
    void append(const Triplet &t);

    /**
     * Seal the file: flush the last chunk, write the directory, then
     * the header. Idempotent guard: calling twice panics.
     *
     * @return The content hash now stored in the header.
     */
    std::uint64_t finish();

  private:
    void sealChunk();

    std::string path;
    std::ofstream out;
    CbmHeader header;
    std::vector<CbmChunkInfo> directory;
    std::uint64_t written = 0;
    std::uint64_t runningHash;
    bool havePrev = false;
    Triplet prev;
    CbmChunkInfo open_chunk;
    bool finished = false;
};

/** Write @p matrix (finalized) to @p path; returns the content hash. */
std::uint64_t writeCbmFile(const std::string &path,
                           const TripletMatrix &matrix,
                           std::uint64_t epoch,
                           std::uint32_t chunkTargetNnz =
                               cbmDefaultChunkNnz);

/** Validation issue classes reported by inspectCbmFile(). */
enum class CbmIssueKind
{
    /** Header invariant broken: magic, version, sizes, header hash
     *  (lint rule COP110). */
    Header,

    /** Chunk directory inconsistent: offsets, extents, counts
     *  (lint rule COP111). */
    Chunks,

    /** Stored content hash does not cover the payload bytes
     *  (lint rule COP112). */
    Hash,
};

/** One validation finding. */
struct CbmIssue
{
    CbmIssueKind kind = CbmIssueKind::Header;
    std::string message;
};

/** Stable lower-case name of @p kind ("header", "chunks", "hash"). */
std::string_view cbmIssueKindName(CbmIssueKind kind);

/**
 * Validate a .cbm file and list every invariant it breaks.
 *
 * The shallow checks (header + directory) always run; @p deep adds a
 * full payload scan verifying triplet order/bounds against the chunk
 * extents and recomputing the content hash. An unreadable or
 * truncated file yields issues rather than throwing.
 */
std::vector<CbmIssue> inspectCbmFile(const std::string &path,
                                     bool deep = true);

/**
 * Zero-copy reader over an mmap'd .cbm file.
 *
 * Opening validates the header and directory (shallow checks of
 * inspectCbmFile) and throws FatalError naming the first breach; the
 * payload is trusted until scanned. scan() walks the triplets in
 * place and releases consumed pages behind the cursor, so iterating a
 * container far larger than RAM keeps a bounded resident set.
 */
class CbmReader : public TripletSource
{
  public:
    explicit CbmReader(const std::string &path);

    Index rows() const override { return header.rows; }
    Index cols() const override { return header.cols; }
    std::uint64_t nnz() const override { return header.nnz; }

    std::uint64_t epoch() const { return header.epoch; }
    std::uint64_t contentHash() const { return header.contentHash; }
    std::uint32_t chunkCount() const { return header.chunkCount; }
    std::uint32_t chunkTargetNnz() const
    {
        return header.chunkTargetNnz;
    }
    const std::string &path() const { return file.path(); }
    const std::vector<CbmChunkInfo> &chunks() const { return directory; }

    /** Direct pointer to chunk @p i's packed triplets (zero-copy). */
    const Triplet *chunkData(std::uint32_t i) const;

    /**
     * Visit every triplet in canonical order. Consumed file pages are
     * released as the cursor advances (see MmapFile::dropPagesBefore),
     * bounding residency at ~one drop window regardless of file size.
     */
    void
    scan(const std::function<void(const Triplet &)> &fn) const override;

    /** Materialize the whole container in memory (small inputs). */
    TripletMatrix toTripletMatrix() const;

  private:
    mutable MmapFile file;
    CbmHeader header;
    std::vector<CbmChunkInfo> directory;
};

} // namespace copernicus

#endif // COPERNICUS_STORE_CONTAINER_HH
