#include "store/container.hh"

#include <cstddef>
#include <cstring>

#include "common/fnv.hh"
#include "common/math.hh"
#include "common/status.hh"

namespace copernicus {

namespace {

/** Bytes of one packed triplet record. */
constexpr std::uint64_t tripletBytes = sizeof(Triplet);

/** Payload byte offset of triplet @p i (payload starts at the
 *  header's end). */
constexpr std::uint64_t
tripletOffset(std::uint64_t i)
{
    return sizeof(CbmHeader) + i * tripletBytes;
}

std::string
kindWord(CbmIssueKind kind)
{
    switch (kind) {
      case CbmIssueKind::Header:
        return "header";
      case CbmIssueKind::Chunks:
        return "chunks";
      case CbmIssueKind::Hash:
        return "hash";
    }
    return "unknown";
}

/**
 * Shared validation core over an already-mapped file. Shallow checks
 * cover the header and directory; @p deep adds the payload scan and
 * hash recomputation. Appends to @p issues and returns false when the
 * header is too broken for the directory/payload to be interpreted.
 */
bool
inspectMapped(const MmapFile &file, bool deep,
              std::vector<CbmIssue> &issues)
{
    const auto headerIssue = [&issues](const std::string &msg) {
        issues.push_back({CbmIssueKind::Header, msg});
    };
    const auto chunkIssue = [&issues](const std::string &msg) {
        issues.push_back({CbmIssueKind::Chunks, msg});
    };

    if (file.size() < sizeof(CbmHeader)) {
        headerIssue("file holds " + std::to_string(file.size()) +
                    " bytes; the header alone needs " +
                    std::to_string(sizeof(CbmHeader)));
        return false;
    }
    CbmHeader header;
    std::memcpy(&header, file.data(), sizeof(header));

    if (std::memcmp(header.magic, "CBM1", 4) != 0) {
        headerIssue("bad magic (not a CBM container)");
        return false;
    }
    if (header.version != cbmVersion) {
        headerIssue("unsupported version " +
                    std::to_string(header.version) +
                    " (this build reads version " +
                    std::to_string(cbmVersion) + ")");
        return false;
    }
    if (header.headerHash != cbmHeaderHash(header)) {
        headerIssue("header hash mismatch (corrupt header)");
        return false;
    }
    bool ok = true;
    if (header.rows == 0 || header.cols == 0) {
        headerIssue("zero matrix dimension (" +
                    std::to_string(header.rows) + " x " +
                    std::to_string(header.cols) + ")");
        ok = false;
    }
    if (header.chunkTargetNnz == 0 && header.nnz != 0) {
        headerIssue("zero chunk granularity with " +
                    std::to_string(header.nnz) + " non-zeros");
        return false;
    }
    const std::uint64_t expectDirectory = tripletOffset(header.nnz);
    if (header.directoryOffset != expectDirectory) {
        headerIssue("directory offset " +
                    std::to_string(header.directoryOffset) +
                    " does not follow the payload (expected " +
                    std::to_string(expectDirectory) + ")");
        return false;
    }
    const std::uint64_t expectChunks =
        header.chunkTargetNnz == 0
            ? 0
            : ceilDiv(header.nnz, header.chunkTargetNnz);
    if (header.chunkCount != expectChunks) {
        chunkIssue("chunk count " + std::to_string(header.chunkCount) +
                   " inconsistent with nnz/granularity (expected " +
                   std::to_string(expectChunks) + ")");
        ok = false;
    }
    const std::uint64_t expectSize =
        header.directoryOffset +
        std::uint64_t(header.chunkCount) * sizeof(CbmChunkInfo);
    if (file.size() != expectSize) {
        headerIssue("file holds " + std::to_string(file.size()) +
                    " bytes; header describes " +
                    std::to_string(expectSize));
        return false;
    }

    // Directory: contiguous chunks, monotone row extents, counts that
    // sum to the header's nnz.
    std::vector<CbmChunkInfo> directory(header.chunkCount);
    if (header.chunkCount != 0) {
        std::memcpy(directory.data(),
                    file.data() + header.directoryOffset,
                    directory.size() * sizeof(CbmChunkInfo));
    }
    std::uint64_t runningNnz = 0;
    for (std::uint32_t i = 0; i < header.chunkCount; ++i) {
        const CbmChunkInfo &chunk = directory[i];
        const std::string where = "chunk " + std::to_string(i);
        if (chunk.offset != tripletOffset(runningNnz)) {
            chunkIssue(where + " offset " +
                       std::to_string(chunk.offset) +
                       " is not contiguous (expected " +
                       std::to_string(tripletOffset(runningNnz)) + ")");
            ok = false;
        }
        if (chunk.nnz == 0) {
            chunkIssue(where + " is empty");
            ok = false;
        }
        if (i + 1 < header.chunkCount &&
            chunk.nnz != header.chunkTargetNnz) {
            chunkIssue(where + " holds " + std::to_string(chunk.nnz) +
                       " triplets; every chunk but the last must hold " +
                       std::to_string(header.chunkTargetNnz));
            ok = false;
        }
        if (chunk.firstRow > chunk.lastRow) {
            chunkIssue(where + " row extent [" +
                       std::to_string(chunk.firstRow) + ", " +
                       std::to_string(chunk.lastRow) + "] is inverted");
            ok = false;
        }
        if (chunk.lastRow >= header.rows) {
            chunkIssue(where + " last row " +
                       std::to_string(chunk.lastRow) +
                       " exceeds the matrix (" +
                       std::to_string(header.rows) + " rows)");
            ok = false;
        }
        if (i > 0 && chunk.firstRow < directory[i - 1].lastRow) {
            chunkIssue(where + " first row " +
                       std::to_string(chunk.firstRow) +
                       " precedes chunk " + std::to_string(i - 1) +
                       "'s last row " +
                       std::to_string(directory[i - 1].lastRow) +
                       " (extents must be monotone)");
            ok = false;
        }
        runningNnz += chunk.nnz;
    }
    if (runningNnz != header.nnz) {
        chunkIssue("directory covers " + std::to_string(runningNnz) +
                   " triplets; header declares " +
                   std::to_string(header.nnz));
        ok = false;
    }

    if (!deep || !ok)
        return ok;

    // Payload: canonical order, in-range coordinates, chunk extents
    // that match the data, and a content hash covering every byte.
    // Report the first breach of each class only — a corrupt payload
    // would otherwise drown the caller in one issue per triplet.
    std::uint64_t hash = fnvOffsetBasis;
    bool orderReported = false;
    bool extentReported = false;
    bool havePrev = false;
    Triplet prev = {};
    std::uint64_t seen = 0;
    for (std::uint32_t c = 0; c < header.chunkCount; ++c) {
        const CbmChunkInfo &chunk = directory[c];
        const unsigned char *bytes = file.data() + chunk.offset;
        hash = fnv1a(bytes, chunk.nnz * tripletBytes, hash);
        for (std::uint64_t i = 0; i < chunk.nnz; ++i, ++seen) {
            Triplet t;
            std::memcpy(&t, bytes + i * tripletBytes, tripletBytes);
            const bool inOrder =
                !havePrev || t.row > prev.row ||
                (t.row == prev.row && t.col > prev.col);
            if (!orderReported &&
                (!inOrder || t.row >= header.rows ||
                 t.col >= header.cols || t.value == Value(0))) {
                chunkIssue("triplet " + std::to_string(seen) + " (" +
                           std::to_string(t.row) + ", " +
                           std::to_string(t.col) +
                           ") breaks canonical order or bounds");
                orderReported = true;
                ok = false;
            }
            if (!extentReported &&
                (t.row < chunk.firstRow || t.row > chunk.lastRow)) {
                chunkIssue("triplet " + std::to_string(seen) +
                           " row " + std::to_string(t.row) +
                           " falls outside chunk " + std::to_string(c) +
                           "'s extent [" +
                           std::to_string(chunk.firstRow) + ", " +
                           std::to_string(chunk.lastRow) + "]");
                extentReported = true;
                ok = false;
            }
            prev = t;
            havePrev = true;
        }
    }
    if (hash != header.contentHash) {
        issues.push_back(
            {CbmIssueKind::Hash,
             "content hash mismatch: header stores " +
                 std::to_string(header.contentHash) +
                 ", payload hashes to " + std::to_string(hash)});
        ok = false;
    }
    return ok;
}

} // namespace

std::uint64_t
cbmHeaderHash(const CbmHeader &header)
{
    return fnv1a(&header, offsetof(CbmHeader, headerHash));
}

std::uint64_t
contentHashOf(const TripletMatrix &matrix)
{
    panicIf(!matrix.finalized(),
            "contentHashOf requires a finalized matrix");
    return fnv1a(matrix.triplets().data(),
                 matrix.nnz() * tripletBytes);
}

CbmWriter::CbmWriter(const std::string &path, Index rows, Index cols,
                     std::uint64_t epoch,
                     std::uint32_t chunkTargetNnz)
    : path(path), out(path, std::ios::binary | std::ios::trunc),
      runningHash(fnvOffsetBasis)
{
    fatalIf(rows == 0 || cols == 0,
            "cbm: matrix dimensions must be positive");
    fatalIf(chunkTargetNnz == 0,
            "cbm: chunk granularity must be positive");
    fatalIf(!out, "cbm: cannot open '" + path + "' for writing");
    header.version = cbmVersion;
    header.rows = rows;
    header.cols = cols;
    header.epoch = epoch;
    header.chunkTargetNnz = chunkTargetNnz;
    // Placeholder; finish() seeks back and writes the real header.
    const char zeros[sizeof(CbmHeader)] = {};
    out.write(zeros, sizeof(zeros));
}

CbmWriter::~CbmWriter() = default;

void
CbmWriter::append(const Triplet &t)
{
    panicIf(finished, "cbm: append after finish");
    fatalIf(t.row >= header.rows || t.col >= header.cols,
            "cbm: triplet (" + std::to_string(t.row) + ", " +
                std::to_string(t.col) + ") out of range for " +
                std::to_string(header.rows) + " x " +
                std::to_string(header.cols));
    fatalIf(t.value == Value(0), "cbm: explicit zero at (" +
                                     std::to_string(t.row) + ", " +
                                     std::to_string(t.col) + ")");
    fatalIf(havePrev && (t.row < prev.row ||
                         (t.row == prev.row && t.col <= prev.col)),
            "cbm: triplet (" + std::to_string(t.row) + ", " +
                std::to_string(t.col) +
                ") breaks canonical row-major order");

    if (written % header.chunkTargetNnz == 0) {
        open_chunk.offset = tripletOffset(written);
        open_chunk.nnz = 0;
        open_chunk.firstRow = t.row;
    }
    open_chunk.lastRow = t.row;
    ++open_chunk.nnz;

    out.write(reinterpret_cast<const char *>(&t), sizeof(t));
    runningHash = fnv1a(&t, sizeof(t), runningHash);
    ++written;
    prev = t;
    havePrev = true;
    if (open_chunk.nnz == header.chunkTargetNnz)
        sealChunk();
}

void
CbmWriter::sealChunk()
{
    directory.push_back(open_chunk);
    open_chunk = CbmChunkInfo{};
}

std::uint64_t
CbmWriter::finish()
{
    panicIf(finished, "cbm: finish called twice");
    finished = true;
    if (open_chunk.nnz != 0)
        sealChunk();
    fatalIf(directory.size() > UINT32_MAX,
            "cbm: too many chunks for the directory");

    header.nnz = written;
    header.contentHash = runningHash;
    header.chunkCount = static_cast<std::uint32_t>(directory.size());
    header.directoryOffset = tripletOffset(written);
    header.headerHash = cbmHeaderHash(header);

    out.write(reinterpret_cast<const char *>(directory.data()),
              static_cast<std::streamsize>(directory.size() *
                                           sizeof(CbmChunkInfo)));
    out.seekp(0);
    out.write(reinterpret_cast<const char *>(&header), sizeof(header));
    out.flush();
    fatalIf(!out, "cbm: write to '" + path + "' failed");
    out.close();
    return header.contentHash;
}

std::uint64_t
writeCbmFile(const std::string &path, const TripletMatrix &matrix,
             std::uint64_t epoch, std::uint32_t chunkTargetNnz)
{
    panicIf(!matrix.finalized(),
            "writeCbmFile requires a finalized matrix");
    CbmWriter writer(path, matrix.rows(), matrix.cols(), epoch,
                     chunkTargetNnz);
    for (const Triplet &t : matrix.triplets())
        writer.append(t);
    return writer.finish();
}

std::string_view
cbmIssueKindName(CbmIssueKind kind)
{
    switch (kind) {
      case CbmIssueKind::Header: return "header";
      case CbmIssueKind::Chunks: return "chunks";
      case CbmIssueKind::Hash: return "hash";
    }
    panic("cbmIssueKindName: unhandled kind");
}

std::vector<CbmIssue>
inspectCbmFile(const std::string &path, bool deep)
{
    std::vector<CbmIssue> issues;
    try {
        const MmapFile file(path);
        inspectMapped(file, deep, issues);
    } catch (const FatalError &err) {
        issues.push_back({CbmIssueKind::Header, err.what()});
    }
    return issues;
}

CbmReader::CbmReader(const std::string &path) : file(path)
{
    std::vector<CbmIssue> issues;
    inspectMapped(file, /*deep=*/false, issues);
    if (!issues.empty()) {
        fatal("cbm: '" + path +
              "': " + kindWord(issues.front().kind) + ": " +
              issues.front().message);
    }
    std::memcpy(&header, file.data(), sizeof(header));
    directory.resize(header.chunkCount);
    if (header.chunkCount != 0) {
        std::memcpy(directory.data(),
                    file.data() + header.directoryOffset,
                    directory.size() * sizeof(CbmChunkInfo));
    }
}

const Triplet *
CbmReader::chunkData(std::uint32_t i) const
{
    panicIf(i >= directory.size(), "cbm: chunk index out of range");
    // Payload records start at offset 64 and are 12 bytes apiece, so
    // every chunk start satisfies Triplet's 4-byte alignment on top
    // of the page-aligned mapping.
    return reinterpret_cast<const Triplet *>(file.data() +
                                             directory[i].offset);
}

void
CbmReader::scan(const std::function<void(const Triplet &)> &fn) const
{
    // Each scan starts its own drop-behind window; without the reset
    // a second scan (the partitioner makes many) would never release
    // a page and the whole file would end up resident.
    file.resetDropWindow();
    for (std::uint32_t c = 0; c < directory.size(); ++c) {
        const CbmChunkInfo &chunk = directory[c];
        const Triplet *data = chunkData(c);
        for (std::uint64_t i = 0; i < chunk.nnz; ++i)
            fn(data[i]);
        file.dropPagesBefore(chunk.offset + chunk.nnz * tripletBytes);
    }
}

TripletMatrix
CbmReader::toTripletMatrix() const
{
    TripletMatrix matrix(header.rows, header.cols);
    scan([&matrix](const Triplet &t) {
        matrix.add(t.row, t.col, t.value);
    });
    matrix.finalize();
    return matrix;
}

} // namespace copernicus
