/**
 * @file
 * Bounded-memory streaming partitioner.
 *
 * matrix/partitioner.cc materializes the whole triplet array and all
 * tile buckets at once — fine for the surrogate catalog, hopeless for
 * the 100M+-nnz SuiteSparse drops of Table 1. This generalization
 * makes several passes over a re-scannable TripletSource, each pass
 * covering a contiguous range of tile-row strips whose combined
 * non-zero count fits a configurable budget, and emits exactly the
 * Tiles the in-memory path would: same canonical nonzero streams,
 * same eagerly-installed SparseView/TileStats, byte-identical inputs
 * to all 14 codecs and the encode cache.
 *
 * Memory contract (documented in DESIGN.md §12): one pass buffers at
 * most max(maxBufferedNnz, heaviest single strip) triplets, plus an
 * equal-sized set of scatter buckets and an O(gridRows) strip-count
 * array — so peak transient footprint is ~2 x 12 bytes x that bound,
 * independent of total matrix size. The source is scanned passes + 1
 * times (one counting pass up front).
 */

#ifndef COPERNICUS_STORE_STREAM_PARTITIONER_HH
#define COPERNICUS_STORE_STREAM_PARTITIONER_HH

#include <cstdint>
#include <functional>

#include "matrix/partitioner.hh"
#include "store/triplet_source.hh"

namespace copernicus {

/** Tuning knobs for the streaming passes. */
struct StreamPartitionOptions
{
    /**
     * Triplet budget per pass. A pass covers as many consecutive
     * tile-row strips as fit this budget; a single strip heavier than
     * the budget still becomes one (oversized) pass, since a strip is
     * the emission granularity. Default 4M triplets = 48 MB buffered.
     */
    std::uint64_t maxBufferedNnz = 1ULL << 22;
};

/** Observability for tests and the ingest bench. */
struct StreamPartitionStats
{
    /** Buffered passes run (excludes the counting pass). */
    std::size_t passes = 0;

    /** Source scans performed (passes + 1). */
    std::size_t sourceScans = 0;

    /** Largest per-pass triplet buffer actually held. */
    std::uint64_t peakBufferedNnz = 0;

    /** Non-zero tiles emitted. */
    std::size_t nonZeroTiles = 0;

    /** All-zero tiles elided. */
    std::size_t zeroTiles = 0;
};

/**
 * Stream @p source through the partitioner, handing each non-zero
 * tile to @p consume in (tileRow, tileCol) order and never holding
 * more than one pass's worth of triplets.
 *
 * @param source Canonical triplet stream (re-scanned per pass).
 * @param partitionSize Edge length p of each tile; must be positive.
 * @param options Pass budget knobs.
 * @param consume Called once per non-zero tile, in row-major grid
 *        order; the tile is moved in and can be dropped immediately.
 * @return Pass/tile statistics.
 */
StreamPartitionStats
forEachTileStreaming(const TripletSource &source, Index partitionSize,
                     const StreamPartitionOptions &options,
                     const std::function<void(Tile &&)> &consume);

/**
 * Streaming drop-in for partition(): identical Partitioning (same
 * tiles, same order, same grid bookkeeping), built in bounded-memory
 * passes. The result itself still holds every tile — use
 * forEachTileStreaming() when the consumer can stream too.
 *
 * @param stats Optional out-param receiving the pass statistics.
 */
Partitioning
partitionStreaming(const TripletSource &source, Index partitionSize,
                   const StreamPartitionOptions &options = {},
                   StreamPartitionStats *stats = nullptr);

} // namespace copernicus

#endif // COPERNICUS_STORE_STREAM_PARTITIONER_HH
