/**
 * @file
 * SweepJournal: crash-safe checkpoint/resume for Study sweeps.
 *
 * A full characterization sweep over a SuiteSparse-scale container is
 * hours of work; a killed daemon or a deploy restart should not throw
 * it away. The journal is a newline-delimited JSON file: one header
 * line binding it to the exact input (matrix content hash + container
 * epoch + sweep configuration fingerprint), then one line per
 * completed (workload, format, partition size) design point carrying
 * the full StudyRow. Every record is flushed as it is written, so a
 * SIGKILL loses at most the design point in flight.
 *
 * Exactness: numeric row fields roundtrip losslessly — 64-bit
 * counters are serialized as decimal strings (JSON numbers are
 * doubles and would clip past 2^53) and doubles use the repo's
 * shortest-exact writer — so a resumed sweep's CSV is byte-identical
 * to an uninterrupted run's.
 *
 * Staleness: opening a journal whose identity line disagrees with the
 * current input throws FatalError naming which component (matrix
 * hash, epoch, config) diverged. A torn trailing line from a kill
 * mid-write is tolerated and the interrupted cell is recomputed.
 */

#ifndef COPERNICUS_STORE_SWEEP_JOURNAL_HH
#define COPERNICUS_STORE_SWEEP_JOURNAL_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/mutex.hh"
#include "core/study.hh"

namespace copernicus {

/** What a journal is bound to; any mismatch on open is fatal. */
struct JournalIdentity
{
    /** Combined content hash of every workload (workloadSetHash). */
    std::uint64_t matrixHash = 0;

    /** Container epoch (0 for generated/in-memory workloads). */
    std::uint64_t matrixEpoch = 0;

    /** Sweep configuration fingerprint (sweepConfigHash). */
    std::uint64_t configHash = 0;
};

/**
 * Fingerprint of the sweep shape: partition sizes and formats, in
 * order. Two sweeps with the same fingerprint enumerate the same
 * design points for a given workload set.
 */
std::uint64_t sweepConfigHash(const std::vector<Index> &partitionSizes,
                              const std::vector<FormatKind> &formats);

/**
 * Fold (workload name, content hash) pairs into one identity hash.
 * Order-sensitive, matching Study's registration order.
 */
std::uint64_t workloadSetHash(
    const std::vector<std::pair<std::string, std::uint64_t>> &workloads);

/** Append-only checkpoint journal (see file comment). Thread-safe. */
class SweepJournal
{
  public:
    /**
     * Open or create the journal at @p path.
     *
     * An existing journal is validated against @p identity (FatalError
     * on mismatch) and its completed cells are loaded; a missing or
     * empty file is initialized with a fresh identity line.
     */
    SweepJournal(const std::string &path,
                 const JournalIdentity &identity);

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /** Cells restored from a pre-existing journal. */
    std::size_t resumedCells() const;

    /**
     * The completed row for a design point, or nullptr if it still
     * has to run. The pointer stays valid for the journal's lifetime.
     */
    const StudyRow *completed(const std::string &workload,
                              FormatKind format,
                              Index partitionSize) const;

    /** Append one finished design point and flush it to disk. */
    void record(const StudyRow &row);

    const std::string &path() const { return journalPath; }

  private:
    using CellKey = std::tuple<std::string, int, Index>;

    void load(const JournalIdentity &identity);

    std::string journalPath;
    mutable Mutex mutex{lock_rank::sweepJournal};
    std::ofstream out COPERNICUS_GUARDED_BY(mutex);
    std::map<CellKey, StudyRow> cells COPERNICUS_GUARDED_BY(mutex);
    std::size_t resumed COPERNICUS_GUARDED_BY(mutex) = 0;
};

} // namespace copernicus

#endif // COPERNICUS_STORE_SWEEP_JOURNAL_HH
