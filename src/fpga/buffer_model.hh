/**
 * @file
 * Worst-case on-chip buffer sizing (Section 2's "maximum length"
 * notes and Section 4.2's footnote: "these worst-case scenarios are
 * used for on-chip memory allocation").
 *
 * For an n x n partition the paper gives the allocation bounds per
 * format — CSR/CSC n^2 values and indices plus n offsets, COO 3n^2
 * tuple words, DIA (2n-1) diagonals of n+1 words, and so on. This
 * module encodes those bounds; tests check that no real encoding ever
 * exceeds its bound, and the BRAM estimator's structural layer is
 * anchored on the same arithmetic.
 */

#ifndef COPERNICUS_FPGA_BUFFER_MODEL_HH
#define COPERNICUS_FPGA_BUFFER_MODEL_HH

#include <string>
#include <vector>

#include "formats/format_kind.hh"
#include "formats/registry.hh"
#include "common/types.hh"

namespace copernicus {

/** One worst-case-sized on-chip buffer. */
struct BufferRequirement
{
    /** Array name from the paper's listings ("values", "colInx", ...). */
    std::string array;

    /** Worst-case element count for a p x p partition. */
    Bytes maxElements = 0;

    /** Element width in bytes. */
    Bytes elementBytes = 4;

    /** Worst-case bits to allocate. */
    Bytes bits() const { return maxElements * elementBytes * 8; }
};

/**
 * The buffers format @p kind must allocate for p x p partitions, with
 * Section 2's worst-case lengths.
 */
std::vector<BufferRequirement> bufferRequirements(
    FormatKind kind, Index p,
    const FormatParams &params = FormatParams());

/** Sum of worst-case bits over all of a format's buffers. */
Bytes totalBufferBits(FormatKind kind, Index p,
                      const FormatParams &params = FormatParams());

} // namespace copernicus

#endif // COPERNICUS_FPGA_BUFFER_MODEL_HH
