/**
 * @file
 * Capacity of the paper's target device (Zynq-7000 xc7z020) as reported
 * in Table 2's Total row, used to express resource utilization as
 * percentages.
 */

#ifndef COPERNICUS_FPGA_DEVICE_HH
#define COPERNICUS_FPGA_DEVICE_HH

namespace copernicus {

/** xc7z020 capacity (Table 2, Total row). */
struct DeviceCapacity
{
    double bram18k = 140.0;
    double ffK = 106.4;
    double lutK = 53.2;
};

} // namespace copernicus

#endif // COPERNICUS_FPGA_DEVICE_HH
