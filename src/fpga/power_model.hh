/**
 * @file
 * Power model (Table 2's dynamic power column, Figure 13's breakdown,
 * and Section 6.4's static power).
 *
 * Like the resource model, the total dynamic power at the paper's 24
 * design points is calibration data (Table 2); the logic/BRAM/signal
 * breakdown of Figure 13 is reconstructed from structural shares —
 * logic power scales with LUTs, BRAM power with banks and access
 * intensity, signal power with FFs plus routed LUT outputs — normalized
 * so the three components sum to the calibrated total. Static power is
 * the per-format constant Section 6.4 reports.
 */

#ifndef COPERNICUS_FPGA_POWER_MODEL_HH
#define COPERNICUS_FPGA_POWER_MODEL_HH

#include <optional>

#include "fpga/resource_model.hh"

namespace copernicus {

/** Dynamic-power breakdown plus static power, watts. */
struct PowerEstimate
{
    double logicW = 0;
    double bramW = 0;
    double signalsW = 0;
    double staticW = 0;

    /** Total dynamic power. */
    double dynamicW() const { return logicW + bramW + signalsW; }

    /** Total power. */
    double totalW() const { return dynamicW() + staticW; }
};

/**
 * Table 2's total dynamic power for a paper design point, if measured.
 */
std::optional<double> paperDynamicPower(FormatKind kind, Index p);

/**
 * Static power per Section 6.4: 0.121 W for dense/CSR/BCSR/LIL/ELL
 * (and their extensions), 0.103 W for CSC/COO/DIA (and DOK).
 */
double paperStaticPower(FormatKind kind);

/**
 * Full power estimate for a design point.
 *
 * @param kind Format.
 * @param p Partition size.
 * @return Breakdown normalized to the calibrated total where one
 *         exists, anchored structural estimate otherwise.
 */
PowerEstimate estimatePower(FormatKind kind, Index p);

} // namespace copernicus

#endif // COPERNICUS_FPGA_POWER_MODEL_HH
