#include "fpga/buffer_model.hh"

#include "common/status.hh"

namespace copernicus {

std::vector<BufferRequirement>
bufferRequirements(FormatKind kind, Index p, const FormatParams &params)
{
    fatalIf(p == 0, "bufferRequirements: partition size must be > 0");
    const Bytes n = p;
    const Bytes cells = n * n;
    switch (kind) {
      case FormatKind::Dense:
        return {{"values", cells, valueBytes}};
      case FormatKind::CSR:
        // Section 2: offsets length n; values/indices at most n^2.
        return {{"values", cells, valueBytes},
                {"colInx", cells, indexBytes},
                {"offsets", n, indexBytes}};
      case FormatKind::CSC:
        return {{"values", cells, valueBytes},
                {"rowInx", cells, indexBytes},
                {"offsets", n, indexBytes}};
      case FormatKind::BCSR: {
        // Section 2: values up to n^2, block indices up to (n/b)^2,
        // offsets n/b.
        const Bytes grid = n / params.bcsrBlock;
        return {{"values", cells, valueBytes},
                {"colInx", grid * grid, indexBytes},
                {"offsets", grid, indexBytes}};
      }
      case FormatKind::COO:
        // Section 2: tuple series of at most 3n^2 words.
        return {{"tuples", 3 * cells, valueBytes}};
      case FormatKind::DOK:
        return {{"table", 3 * cells, valueBytes}};
      case FormatKind::LIL:
        // Column lists can hold the full tile plus the end-marker row.
        return {{"values", cells + n, valueBytes},
                {"rowInx", cells + n, indexBytes}};
      case FormatKind::ELL:
        // Worst case: one full row widens the slab to n.
        return {{"values", cells, valueBytes},
                {"colInx", cells, indexBytes}};
      case FormatKind::SELL:
        return {{"values", cells, valueBytes},
                {"colInx", cells, indexBytes},
                {"widths", n / params.sellSlice, indexBytes}};
      case FormatKind::SELLCS:
        return {{"values", cells, valueBytes},
                {"colInx", cells, indexBytes},
                {"widths", n / params.sellSlice, indexBytes},
                {"perm", n, indexBytes}};
      case FormatKind::DIA:
        // Section 2: at most 2n-1 diagonals of length n+1 (header
        // included).
        return {{"diags", (2 * n - 1) * (n + 1), valueBytes}};
      case FormatKind::JDS:
        return {{"values", cells, valueBytes},
                {"colInx", cells, indexBytes},
                {"perm", n, indexBytes},
                {"jdPtr", n + 1, indexBytes}};
      case FormatKind::ELLCOO: {
        const Bytes width = std::min<Bytes>(params.ellCooWidth, n);
        return {{"values", n * width, valueBytes},
                {"colInx", n * width, indexBytes},
                {"overflow", 3 * cells, valueBytes}};
      }
      case FormatKind::BITMAP:
        return {{"values", cells, valueBytes},
                {"mask", (cells + 7) / 8, 1}};
    }
    panic("bufferRequirements: unknown format kind");
}

Bytes
totalBufferBits(FormatKind kind, Index p, const FormatParams &params)
{
    Bytes bits = 0;
    for (const auto &buffer : bufferRequirements(kind, p, params))
        bits += buffer.bits();
    return bits;
}

} // namespace copernicus
