#include "fpga/power_model.hh"

#include "common/status.hh"

namespace copernicus {

namespace {

/** Table 2 dynamic power (W) at p = 8, 16, 32. */
struct PowerRow
{
    FormatKind kind;
    double dyn[3];
};

const PowerRow powerTable[] = {
    {FormatKind::Dense, {0.02, 0.08, 0.03}},
    {FormatKind::CSR, {0.04, 0.04, 0.07}},
    {FormatKind::BCSR, {0.05, 0.06, 0.06}},
    {FormatKind::CSC, {0.01, 0.05, 0.03}},
    {FormatKind::LIL, {0.05, 0.08, 0.07}},
    {FormatKind::ELL, {0.06, 0.10, 0.06}},
    {FormatKind::COO, {0.02, 0.04, 0.04}},
    {FormatKind::DIA, {0.07, 0.12, 0.05}},
};

int
partitionSlot(Index p)
{
    switch (p) {
      case 8: return 0;
      case 16: return 1;
      case 32: return 2;
      default: return -1;
    }
}

FormatKind
powerSibling(FormatKind kind)
{
    switch (kind) {
      case FormatKind::DOK: return FormatKind::COO;
      case FormatKind::SELL: return FormatKind::ELL;
      case FormatKind::JDS: return FormatKind::CSR;
      case FormatKind::ELLCOO: return FormatKind::ELL;
      case FormatKind::SELLCS: return FormatKind::ELL;
      case FormatKind::BITMAP: return FormatKind::CSR;
      default: return kind;
    }
}

/**
 * Raw (unnormalized) structural power shares. Logic toggles with LUT
 * count; BRAM power grows with banks but the per-bank access intensity
 * falls as partitions widen (more data per control access); signal
 * power follows the routed fabric (FFs plus LUT outputs) and dominates
 * the total's shape (Section 6.4).
 */
void
rawShares(const ResourceEstimate &res, Index p, double &logic,
          double &bram, double &signals)
{
    logic = 0.012 * res.lutK;
    bram = 0.0024 * res.bram18k * (8.0 / (8.0 + p) + 0.5);
    signals = 0.010 * res.ffK + 0.006 * res.lutK;
}

} // namespace

std::optional<double>
paperDynamicPower(FormatKind kind, Index p)
{
    const int slot = partitionSlot(p);
    if (slot < 0)
        return std::nullopt;
    for (const auto &row : powerTable)
        if (row.kind == kind)
            return row.dyn[slot];
    return std::nullopt;
}

double
paperStaticPower(FormatKind kind)
{
    switch (kind) {
      case FormatKind::CSC:
      case FormatKind::COO:
      case FormatKind::DOK:
      case FormatKind::DIA:
      case FormatKind::BITMAP:
        return 0.103;
      default:
        return 0.121;
    }
}

PowerEstimate
estimatePower(FormatKind kind, Index p)
{
    fatalIf(p == 0, "estimatePower: partition size must be positive");
    const ResourceEstimate res = estimateResources(kind, p);

    double logic = 0, bram = 0, signals = 0;
    rawShares(res, p, logic, bram, signals);
    const double raw_total = logic + bram + signals;

    double target = raw_total;
    if (auto dyn = paperDynamicPower(kind, p)) {
        target = *dyn;
    } else {
        // Anchor to the sibling's calibrated total, scaled by the raw
        // structural ratio.
        const FormatKind sibling = powerSibling(kind);
        Index anchor_p = 8;
        if (p >= 24)
            anchor_p = 32;
        else if (p >= 12)
            anchor_p = 16;
        if (auto dyn_sibling = paperDynamicPower(sibling, anchor_p)) {
            const ResourceEstimate sib =
                estimateResources(sibling, anchor_p);
            double sl = 0, sb = 0, ss = 0;
            rawShares(sib, anchor_p, sl, sb, ss);
            const double sib_raw = sl + sb + ss;
            if (sib_raw > 0)
                target = *dyn_sibling * raw_total / sib_raw;
        }
    }

    PowerEstimate power;
    if (raw_total > 0) {
        const double scale = target / raw_total;
        power.logicW = logic * scale;
        power.bramW = bram * scale;
        power.signalsW = signals * scale;
    }
    power.staticW = paperStaticPower(kind);
    return power;
}

} // namespace copernicus
