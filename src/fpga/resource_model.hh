/**
 * @file
 * FPGA resource model (Table 2).
 *
 * Copernicus cannot run Vivado synthesis, so the model has two layers:
 *
 *  1. A calibration table holding the paper's measured BRAM_18K/FF/LUT
 *     numbers for the eight paper formats at partition sizes 8/16/32
 *     (Table 2) — the authoritative values for those points.
 *  2. A structural estimator used for everything else (the extension
 *     formats and unmeasured partition sizes): BRAM banks follow from
 *     worst-case buffer bits and array_partition factors; FF/LUT scale
 *     with pipeline depth, unroll width and dot-engine width. Structural
 *     estimates are anchored to the nearest calibrated point so the two
 *     layers agree where they meet.
 */

#ifndef COPERNICUS_FPGA_RESOURCE_MODEL_HH
#define COPERNICUS_FPGA_RESOURCE_MODEL_HH

#include <optional>

#include "fpga/device.hh"
#include "formats/format_kind.hh"
#include "common/types.hh"

namespace copernicus {

/** Estimated or measured resource usage of one design point. */
struct ResourceEstimate
{
    /** 18Kbit BRAM blocks. */
    double bram18k = 0;

    /** Flip-flops, thousands. */
    double ffK = 0;

    /** Look-up tables, thousands. */
    double lutK = 0;

    /** True when taken verbatim from the paper's Table 2. */
    bool calibrated = false;
};

/**
 * Table 2 calibration point, if the paper measured this design.
 *
 * @param kind Paper format.
 * @param p Partition size 8, 16 or 32.
 */
std::optional<ResourceEstimate> paperCalibration(FormatKind kind, Index p);

/**
 * Resource estimate for any implemented format and partition size.
 * Returns the calibration point when one exists, the anchored
 * structural estimate otherwise.
 */
ResourceEstimate estimateResources(FormatKind kind, Index p);

/** Utilization percentages against the device capacity. */
struct ResourceUtilization
{
    double bramPct = 0;
    double ffPct = 0;
    double lutPct = 0;
};

/** Express @p est as a percentage of @p device. */
ResourceUtilization utilization(const ResourceEstimate &est,
                                const DeviceCapacity &device =
                                    DeviceCapacity());

} // namespace copernicus

#endif // COPERNICUS_FPGA_RESOURCE_MODEL_HH
