#include "fpga/resource_model.hh"

#include <algorithm>
#include <cmath>

#include "common/status.hh"

namespace copernicus {

namespace {

/** One Table 2 row: {BRAM_18K, FF(K), LUT(K)} at p = 8, 16, 32. */
struct CalibrationRow
{
    FormatKind kind;
    double bram[3];
    double ff[3];
    double lut[3];
};

/** Table 2 of the paper, verbatim. */
const CalibrationRow calibrationTable[] = {
    {FormatKind::Dense, {8, 16, 32}, {1.5, 1.9, 4.3}, {0.7, 0.7, 1.2}},
    {FormatKind::CSR, {2, 2, 8}, {0.7, 0.8, 3.8}, {0.9, 0.9, 1.1}},
    {FormatKind::BCSR, {8, 16, 32}, {1.6, 2.4, 4.4}, {1.2, 1.4, 2.2}},
    {FormatKind::CSC, {1, 1, 9}, {0.9, 1.0, 2.7}, {1.0, 1.2, 1.1}},
    {FormatKind::LIL, {4, 4, 6}, {2.9, 5.8, 9.1}, {1.6, 2.7, 4.8}},
    {FormatKind::ELL, {1, 7, 9}, {2.0, 3.2, 0.9}, {0.9, 1.0, 0.8}},
    {FormatKind::COO, {3, 3, 8}, {1.8, 1.3, 3.2}, {1.2, 2.5, 5.4}},
    {FormatKind::DIA, {3, 3, 11}, {2.2, 5.0, 9.2}, {1.5, 2.8, 4.6}},
};

int
partitionSlot(Index p)
{
    switch (p) {
      case 8: return 0;
      case 16: return 1;
      case 32: return 2;
      default: return -1;
    }
}

/** Paper format whose structure an extension format resembles most. */
FormatKind
structuralSibling(FormatKind kind)
{
    switch (kind) {
      case FormatKind::DOK: return FormatKind::COO;
      case FormatKind::SELL: return FormatKind::ELL;
      case FormatKind::JDS: return FormatKind::CSR;
      case FormatKind::ELLCOO: return FormatKind::ELL;
      case FormatKind::SELLCS: return FormatKind::ELL;
      case FormatKind::BITMAP: return FormatKind::CSR;
      default: return kind;
    }
}

constexpr double bramBits = 18432.0;

/**
 * Structural BRAM-bank count: worst-case buffer bits over 18Kbit banks,
 * times the array_partition factor for the formats whose decompressor
 * unrolls over banks (Section 5.2). Only the *scaling* with p matters;
 * absolute values are anchored to the calibration table.
 */
double
structuralBram(FormatKind kind, Index p)
{
    const double cells = static_cast<double>(p) * p * 32.0;
    switch (kind) {
      case FormatKind::Dense:
      case FormatKind::BCSR:
        // Values partitioned one bank per engine lane.
        return p;
      case FormatKind::CSR:
      case FormatKind::CSC:
      case FormatKind::JDS:
        return std::max(2.0, 2.0 * cells / bramBits);
      case FormatKind::COO:
        return std::max(3.0, 3.0 * cells / bramBits);
      case FormatKind::DOK:
        // Tuple arrays plus the on-chip hash table.
        return std::max(4.0, 5.0 * cells / bramBits);
      case FormatKind::LIL:
        return std::max(4.0, 2.0 * cells / bramBits);
      case FormatKind::ELL:
      case FormatKind::SELL:
      case FormatKind::ELLCOO:
      case FormatKind::SELLCS:
        // Width-6 slabs, one bank per unrolled lane as p grows.
        return std::max(1.0, 2.0 * p * 6.0 * 32.0 / 4096.0);
      case FormatKind::BITMAP:
        // One mask buffer plus the dense value buffer.
        return std::max(2.0, (cells + cells / 32.0) / bramBits);
      case FormatKind::DIA:
        return std::max(3.0, (2.0 * p - 1.0) * (p + 1.0) * 32.0 /
                                 bramBits);
    }
    panic("structuralBram: unknown format kind");
}

/** Structural FF count (K): dot-engine registers plus decompressor. */
double
structuralFf(FormatKind kind, Index p)
{
    const double engine = 0.064 * p; // p lanes x 64 pipeline bits
    switch (kind) {
      case FormatKind::Dense: return 0.8 + engine;
      case FormatKind::CSR:
      case FormatKind::JDS: return 0.4 + engine;
      case FormatKind::BCSR: return 0.9 + engine;
      case FormatKind::CSC: return 0.5 + engine;
      case FormatKind::LIL: return 1.2 + 0.25 * p + engine;
      case FormatKind::ELL:
      case FormatKind::SELL:
      case FormatKind::ELLCOO: return 1.4 + engine;
      case FormatKind::SELLCS: return 1.6 + engine;
      case FormatKind::COO: return 0.9 + engine;
      case FormatKind::DOK: return 1.6 + engine;
      case FormatKind::BITMAP: return 0.7 + engine;
      case FormatKind::DIA: return 1.1 + 0.26 * p + engine;
    }
    panic("structuralFf: unknown format kind");
}

/** Structural LUT count (K): comparators, muxes, address generators. */
double
structuralLut(FormatKind kind, Index p)
{
    const double engine = 0.02 * p;
    switch (kind) {
      case FormatKind::Dense: return 0.6 + engine;
      case FormatKind::CSR:
      case FormatKind::JDS: return 0.8 + engine;
      case FormatKind::BCSR: return 0.9 + 0.035 * p + engine;
      case FormatKind::CSC: return 1.0 + engine;
      case FormatKind::LIL: return 0.8 + 0.12 * p + engine;
      case FormatKind::ELL:
      case FormatKind::SELL:
      case FormatKind::SELLCS: return 0.85 + engine;
      case FormatKind::ELLCOO: return 1.0 + 0.05 * p + engine;
      case FormatKind::COO: return 0.6 + 0.15 * p + engine;
      case FormatKind::DOK: return 1.2 + 0.15 * p + engine;
      case FormatKind::BITMAP: return 0.9 + 0.08 * p + engine;
      case FormatKind::DIA: return 0.7 + 0.12 * p + engine;
    }
    panic("structuralLut: unknown format kind");
}

} // namespace

std::optional<ResourceEstimate>
paperCalibration(FormatKind kind, Index p)
{
    const int slot = partitionSlot(p);
    if (slot < 0)
        return std::nullopt;
    for (const auto &row : calibrationTable) {
        if (row.kind == kind) {
            return ResourceEstimate{row.bram[slot], row.ff[slot],
                                    row.lut[slot], true};
        }
    }
    return std::nullopt;
}

ResourceEstimate
estimateResources(FormatKind kind, Index p)
{
    fatalIf(p == 0, "estimateResources: partition size must be positive");
    if (auto cal = paperCalibration(kind, p))
        return *cal;

    // Anchor the structural estimate to the nearest calibrated point of
    // the structurally closest paper format.
    const FormatKind sibling = structuralSibling(kind);
    Index anchor_p = 8;
    if (p >= 24)
        anchor_p = 32;
    else if (p >= 12)
        anchor_p = 16;
    const auto anchor = paperCalibration(sibling, anchor_p);
    panicIf(!anchor, "no calibration anchor for paper format");

    ResourceEstimate est;
    est.calibrated = false;
    est.bram18k = anchor->bram18k * structuralBram(kind, p) /
                  structuralBram(sibling, anchor_p);
    est.ffK = anchor->ffK * structuralFf(kind, p) /
              structuralFf(sibling, anchor_p);
    est.lutK = anchor->lutK * structuralLut(kind, p) /
               structuralLut(sibling, anchor_p);
    return est;
}

ResourceUtilization
utilization(const ResourceEstimate &est, const DeviceCapacity &device)
{
    return {100.0 * est.bram18k / device.bram18k,
            100.0 * est.ffK / device.ffK, 100.0 * est.lutK / device.lutK};
}

} // namespace copernicus
