/**
 * @file
 * Machine-learning scenario (Sections 3.1/3.3 and the Section 8
 * density insight): a 3-layer MLP with magnitude-pruned weights runs
 * inference as a chain of SpMV calls executed on compressed tiles;
 * the density sweep then shows where sparse formats stop paying off
 * (the paper's density > 0.1 warning).
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/table_writer.hh"
#include "common/rng.hh"
#include "core/advisor.hh"
#include "core/study.hh"
#include "kernels/spmv.hh"
#include "matrix/stats.hh"
#include "workloads/generators.hh"

using namespace copernicus;

namespace {

std::vector<Value>
relu(std::vector<Value> v)
{
    for (auto &x : v)
        x = std::max(x, 0.0f);
    return v;
}

/** One pruned layer applied via compressed-tile SpMV. */
std::vector<Value>
layerForward(const TripletMatrix &weights, const std::vector<Value> &in,
             FormatKind kind)
{
    const auto parts = partition(weights, 16);
    auto out = spmvPartitioned(parts, kind, in);
    out.resize(weights.rows());
    return relu(std::move(out));
}

} // namespace

int
main()
{
    std::printf("Pruned-MLP inference + density crossover\n"
                "========================================\n\n");

    Rng rng(33);
    const double density = 0.08; // post-pruning weight density
    const TripletMatrix w1 = prunedLayer(256, 256, density, rng, true);
    const TripletMatrix w2 = prunedLayer(128, 256, density, rng, true);
    const TripletMatrix w3 = prunedLayer(10, 128, density, rng, true);
    std::printf("3-layer MLP, structured pruning, density %.2f "
                "(block-4x4 kept/dropped)\n",
                density);

    std::vector<Value> input(256);
    for (auto &x : input)
        x = static_cast<Value>(rng.range(0.0, 1.0));

    const auto h1 = layerForward(w1, input, FormatKind::BCSR);
    const auto h2 = layerForward(w2, h1, FormatKind::BCSR);
    const auto logits = layerForward(w3, h2, FormatKind::BCSR);
    Index best = 0;
    for (Index i = 1; i < 10; ++i)
        if (logits[i] > logits[best])
            best = i;
    std::printf("inference through BCSR tiles -> class %u (logit "
                "%.4f)\n\n",
                best, logits[best]);

    // Density sweep: where does the sparse format stop winning?
    std::printf("latency vs density for a 256x256 layer (p = 16):\n");
    TableWriter table({"density", "DENSE (us)", "CSR (us)", "BCSR (us)",
                       "CSR/DENSE"});
    for (double d : {0.01, 0.05, 0.1, 0.2, 0.4}) {
        Rng layer_rng(100 + static_cast<std::uint64_t>(d * 1000));
        StudyConfig cfg;
        cfg.partitionSizes = {16};
        cfg.formats = {FormatKind::Dense, FormatKind::CSR,
                       FormatKind::BCSR};
        Study study(cfg);
        study.addWorkload("layer", prunedLayer(256, 256, d, layer_rng));
        double dense_s = 0, csr_s = 0, bcsr_s = 0;
        for (const auto &row : study.run().rows) {
            if (row.format == FormatKind::Dense)
                dense_s = row.seconds;
            else if (row.format == FormatKind::CSR)
                csr_s = row.seconds;
            else
                bcsr_s = row.seconds;
        }
        table.addRow({TableWriter::num(d, 2),
                      TableWriter::num(dense_s * 1e6, 4),
                      TableWriter::num(csr_s * 1e6, 4),
                      TableWriter::num(bcsr_s * 1e6, 4),
                      TableWriter::num(csr_s / dense_s, 3)});
    }
    table.print(std::cout);
    std::printf("\nSection 8: above density ~0.1, aggressive "
                "compression stops paying; prefer small partitions "
                "and block formats.\n");

    const auto stats = computeStats(w1);
    const auto rec = advise(stats, AdvisorGoal::Latency);
    std::printf("advisor for the pruned layer: %s at %ux%u\n  %s\n",
                std::string(formatName(rec.format)).c_str(),
                rec.partitionSize, rec.partitionSize,
                rec.rationale.c_str());
    return 0;
}
