/**
 * @file
 * copernicus_serve — the characterization service daemon.
 *
 *   copernicus_serve                       # serve on the default
 *                                          # Unix socket
 *   copernicus_serve --socket /tmp/c.sock  # choose the socket path
 *   copernicus_serve --tcp 7070            # loopback TCP instead
 *                                          # (0 = ephemeral port,
 *                                          # printed at startup)
 *
 * Operational flags:
 *
 *   --queue N          max in-flight requests before queue_full
 *                      rejections (default 64)
 *   --jobs N           handler pool lanes (default: hardware)
 *   --timeout-ms MS    default per-request deadline for requests that
 *                      do not carry timeout_ms (default: none)
 *   --max-dim N        per-request matrix dimension cap (default 4096)
 *   --memo-bytes N     byte budget of the advise/plan_formats result
 *                      memo (default 8 MiB; 0 disables memoization)
 *   --max-frame-bytes N  per-frame payload cap on binary-framing
 *                      connections (default 16 MiB)
 *   --stats-json PATH  write the serve/thread_pool/encode_cache stat
 *                      groups as JSON at drain
 *   --trace PATH       write the request-lane Chrome trace at drain
 *   --no-lint          skip the startup registry contract check
 *   --lint-full        extend the startup check with the grammar and
 *                      model-vs-walker oracle passes (slower)
 *
 * Observability flags:
 *
 *   --flightrec PATH      where the flight recorder dumps (default
 *                         copernicus_flightrec.json; "" disables the
 *                         drain-time dump but the recorder stays on)
 *   --flight-capacity N   wide events retained in the ring
 *                         (default 512)
 *   --no-observe          turn the whole observability plane off
 *                         (spans, wide events, trace ids)
 *
 * The flight recorder dumps on three triggers besides drain: SIGQUIT
 * (kill -QUIT, without stopping the daemon), an uncaught exception
 * (std::terminate), and the `dump_flightrec` endpoint.
 *
 * The daemon refuses to start (nonzero exit, diagnostic on stderr)
 * when the format registry fails the static schedule contract check —
 * a server built on a broken schedule model would serve wrong numbers
 * for its whole lifetime. SIGINT/SIGTERM trigger a graceful drain:
 * accepting stops, in-flight requests finish and are answered, stats
 * and traces are flushed, and the process exits 0.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "common/status.hh"
#include "serve/server.hh"
#include "trace/flight_recorder.hh"

using namespace copernicus;

namespace {

void
onSignal(int)
{
    Server::requestShutdownFromSignal();
}

/** Where SIGQUIT / terminate dumps land; set before handlers go in. */
std::string flightrec_path;

/**
 * Best-effort black-box dump. Allocating in a signal handler is
 * technically unsafe; this is the documented flight-recorder trade —
 * when the process is wedged or dying, a probably-valid artifact
 * beats a certainly-absent one.
 */
void
dumpFlightRecorder() noexcept
{
    try {
        if (!flightrec_path.empty())
            FlightRecorder::global().dumpToFile(flightrec_path);
    } catch (...) {
        // Nothing sane to do this deep; the dump is best-effort.
    }
}

void
onQuit(int)
{
    // kill -QUIT takes a black-box snapshot without stopping service.
    dumpFlightRecorder();
}

void
onTerminate()
{
    dumpFlightRecorder();
    std::abort();
}

long
numberArg(int argc, char **argv, int &i, const std::string &flag)
{
    fatalIf(i + 1 >= argc, flag + " needs a value");
    char *end = nullptr;
    const long value = std::strtol(argv[++i], &end, 10);
    fatalIf(end == argv[i] || *end != '\0',
            flag + ": '" + argv[i] + "' is not a number");
    return value;
}

ServeOptions
parseArgs(int argc, char **argv)
{
    ServeOptions opts;
    // Binary-level default: a daemon always leaves a black box behind.
    // (The ServeOptions default stays "" so embedding a Server in
    // tests writes no stray files.)
    opts.flightRecPath = "copernicus_flightrec.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket") {
            fatalIf(i + 1 >= argc, "--socket needs a path");
            opts.socketPath = argv[++i];
        } else if (arg == "--tcp") {
            const long port = numberArg(argc, argv, i, "--tcp");
            fatalIf(port < 0 || port > 65535,
                    "--tcp wants a port in [0, 65535]");
            opts.tcpPort = static_cast<int>(port);
        } else if (arg == "--queue") {
            const long n = numberArg(argc, argv, i, "--queue");
            fatalIf(n < 1, "--queue wants a positive capacity");
            opts.queueCapacity = static_cast<std::size_t>(n);
        } else if (arg == "--jobs") {
            const long n = numberArg(argc, argv, i, "--jobs");
            fatalIf(n < 1, "--jobs wants a positive integer");
            opts.workers = static_cast<unsigned>(n);
        } else if (arg == "--timeout-ms") {
            const long ms = numberArg(argc, argv, i, "--timeout-ms");
            fatalIf(ms < 0, "--timeout-ms wants a non-negative value");
            opts.defaultTimeoutMs = static_cast<double>(ms);
        } else if (arg == "--max-dim") {
            const long n = numberArg(argc, argv, i, "--max-dim");
            fatalIf(n < 1, "--max-dim wants a positive dimension");
            opts.maxMatrixDim = static_cast<Index>(n);
        } else if (arg == "--memo-bytes") {
            const long n = numberArg(argc, argv, i, "--memo-bytes");
            fatalIf(n < 0, "--memo-bytes wants a non-negative budget");
            opts.memoBytes = static_cast<std::uint64_t>(n);
        } else if (arg == "--max-frame-bytes") {
            const long n =
                numberArg(argc, argv, i, "--max-frame-bytes");
            fatalIf(n < 1,
                    "--max-frame-bytes wants a positive payload cap");
            opts.maxFrameBytes = static_cast<std::uint64_t>(n);
        } else if (arg == "--stats-json") {
            fatalIf(i + 1 >= argc, "--stats-json needs a path");
            opts.statsJsonPath = argv[++i];
        } else if (arg == "--trace") {
            fatalIf(i + 1 >= argc, "--trace needs a path");
            opts.tracePath = argv[++i];
        } else if (arg == "--no-lint") {
            opts.checkRegistry = false;
        } else if (arg == "--lint-full") {
            opts.fullLint = true;
        } else if (arg == "--flightrec") {
            fatalIf(i + 1 >= argc, "--flightrec needs a path");
            opts.flightRecPath = argv[++i];
        } else if (arg == "--flight-capacity") {
            const long n =
                numberArg(argc, argv, i, "--flight-capacity");
            fatalIf(n < 1, "--flight-capacity wants a positive count");
            opts.flightRecorderCapacity =
                static_cast<std::size_t>(n);
        } else if (arg == "--no-observe") {
            opts.observability = false;
        } else {
            fatal("copernicus_serve: unknown argument '" + arg + "'");
        }
    }
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Server server(parseArgs(argc, argv));
        server.start();
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        if (server.options().observability) {
            flightrec_path = server.options().flightRecPath;
            std::signal(SIGQUIT, onQuit);
            std::set_terminate(onTerminate);
        }
        if (server.options().tcpPort >= 0)
            std::printf("copernicus_serve: port %d\n", server.tcpPort());
        std::fflush(stdout);
        server.waitDrained();
        return 0;
    } catch (const Error &e) {
        std::fprintf(stderr, "copernicus_serve: %s\n", e.what());
        return 1;
    }
}
