/**
 * @file
 * Recommendation-system scenario (Section 3.1): DLRM-style sparse
 * embedding look-ups. Each batch row gathers a handful of rows from a
 * dense embedding table and reduces them — expressed, as Section 3.3
 * notes, as an SpMV/SpMM over a one-hot access matrix on the same
 * dot-product engine. The example runs the reduction through
 * compressed tiles and characterizes the access-matrix formats.
 */

#include <cstdio>
#include <iostream>

#include "analysis/table_writer.hh"
#include "common/rng.hh"
#include "core/study.hh"
#include "kernels/spmm.hh"
#include "matrix/csr_matrix.hh"
#include "workloads/generators.hh"

using namespace copernicus;

int
main()
{
    std::printf("Embedding-table look-ups + format characterization\n"
                "==================================================\n\n");

    Rng rng(55);
    const Index table_size = 4096;
    const Index embed_dim = 16;
    const Index batch = 256;
    const Index lookups = 8;

    // Dense embedding table.
    DenseMatrix table(table_size, embed_dim);
    for (Index r = 0; r < table_size; ++r)
        for (Index c = 0; c < embed_dim; ++c)
            table(r, c) = static_cast<Value>(rng.range(-1.0, 1.0));

    // Sparse access matrix: batch x table_size, `lookups` ones per
    // row. Pooled embedding = access * table (an SpMM).
    const TripletMatrix access = embeddingAccess(batch, table_size,
                                                 lookups, rng);
    const CsrMatrix access_csr(access);
    const DenseMatrix pooled = spmm(access_csr, table);
    std::printf("pooled %u x %u embeddings from %zu look-ups "
                "(batch %u, %u per sample)\n",
                pooled.rows(), pooled.cols(), access.nnz(), batch,
                lookups);

    // Sanity: each pooled row sums `lookups` table rows.
    double checksum = 0;
    for (Index c = 0; c < embed_dim; ++c)
        checksum += pooled(0, c);
    std::printf("sample 0 pooled checksum: %.4f\n\n", checksum);

    // The access matrix is the sparse operand the accelerator would
    // stream: characterize its formats.
    StudyConfig cfg;
    cfg.partitionSizes = {8, 16, 32};
    Study study(cfg);
    study.addWorkload("access", access);
    const auto result = study.run();

    TableWriter table_out({"format", "p", "sigma", "bw util",
                           "latency (us)"});
    for (const auto &row : result.rows) {
        if (row.partitionSize != 16)
            continue;
        table_out.addRow({std::string(formatName(row.format)),
                          std::to_string(row.partitionSize),
                          TableWriter::num(row.meanSigma, 3),
                          TableWriter::num(row.bandwidthUtilization, 3),
                          TableWriter::num(row.seconds * 1e6, 4)});
    }
    table_out.print(std::cout);

    std::printf("\nAccess matrices are extremely sparse and random "
                "(Section 3.1): the generic formats (COO/CSR) win, "
                "exactly the paper's SuiteSparse conclusion.\n");
    return 0;
}
