/**
 * @file
 * mtx2cbm: convert a matrix into a .cbm binary container.
 *
 * The container is the out-of-core input format of the store layer: a
 * sweep over a SuiteSparse-scale matrix converts once and then reopens
 * the .cbm by mmap on every run instead of re-parsing MatrixMarket
 * text. Usage:
 *
 *   ./mtx2cbm input.mtx output.cbm [--epoch N] [--chunk-nnz N]
 *   ./mtx2cbm --surrogate RO output.cbm [--seed N] [...]
 *
 * --surrogate generates the named Table-1 catalog surrogate instead of
 * reading a file, which gives CI and the quickstart a real container
 * without shipping matrix data. The tool prints the container identity
 * (content hash, epoch, chunk count) and verifies the written file
 * with a deep inspection pass before declaring success.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/status.hh"
#include "matrix/mm_io.hh"
#include "store/container.hh"
#include "workloads/suite_catalog.hh"

using namespace copernicus;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <input.mtx> <output.cbm> "
                 "[--epoch N] [--chunk-nnz N]\n"
                 "       %s --surrogate <id> <output.cbm> "
                 "[--seed N] [--epoch N] [--chunk-nnz N]\n"
                 "surrogate ids: ",
                 argv0, argv0);
    for (const auto &info : suiteCatalog())
        std::fprintf(stderr, "%s ", info.id.c_str());
    std::fprintf(stderr, "\n");
    return 2;
}

std::uint64_t
parseCount(const std::string &flag, const std::string &text)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t value = std::stoull(text, &pos);
        fatalIf(pos != text.size(), flag + " expects a number, got '" +
                                        text + "'");
        return value;
    } catch (const std::exception &) {
        fatal(flag + " expects a number, got '" + text + "'");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> positional;
    std::string surrogateId;
    std::uint64_t seed = 42;
    std::uint64_t epoch = 1;
    std::uint64_t chunkNnz = cbmDefaultChunkNnz;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto next = [&]() -> std::string {
                fatalIf(i + 1 >= argc, arg + " needs a value");
                return argv[++i];
            };
            if (arg == "--surrogate")
                surrogateId = next();
            else if (arg == "--seed")
                seed = parseCount(arg, next());
            else if (arg == "--epoch")
                epoch = parseCount(arg, next());
            else if (arg == "--chunk-nnz")
                chunkNnz = parseCount(arg, next());
            else if (arg == "--help" || arg == "-h")
                return usage(argv[0]);
            else
                positional.push_back(arg);
        }

        fatalIf(chunkNnz < 1 || chunkNnz > (1ULL << 31),
                "--chunk-nnz must be in [1, 2^31]");

        std::string inputLabel;
        TripletMatrix matrix(1, 1);
        std::string outputPath;
        if (!surrogateId.empty()) {
            if (positional.size() != 1)
                return usage(argv[0]);
            const SuiteMatrixInfo *info =
                findSuiteMatrix(surrogateId);
            fatalIf(info == nullptr, "unknown surrogate id '" +
                                         surrogateId +
                                         "' (try --help)");
            inputLabel = "surrogate " + info->id + " (" + info->name +
                         ", seed " + std::to_string(seed) + ")";
            matrix = info->generate(seed);
            outputPath = positional[0];
        } else {
            if (positional.size() != 2)
                return usage(argv[0]);
            inputLabel = positional[0];
            matrix = readMatrixMarketFile(positional[0]);
            outputPath = positional[1];
        }
        matrix.finalize();

        std::printf("%s: %u x %u, %zu nnz\n", inputLabel.c_str(),
                    matrix.rows(), matrix.cols(), matrix.nnz());
        const std::uint64_t hash =
            writeCbmFile(outputPath, matrix, epoch,
                         static_cast<std::uint32_t>(chunkNnz));

        const std::vector<CbmIssue> issues =
            inspectCbmFile(outputPath, /*deep=*/true);
        for (const CbmIssue &issue : issues)
            std::fprintf(stderr, "mtx2cbm: [%s] %s\n",
                         std::string(cbmIssueKindName(issue.kind))
                             .c_str(),
                         issue.message.c_str());
        fatalIf(!issues.empty(),
                "written container failed deep verification");

        const CbmReader reader(outputPath);
        std::printf("%s: epoch %llu, content hash %llu, %u chunks of "
                    "%u nnz\n",
                    outputPath.c_str(),
                    static_cast<unsigned long long>(reader.epoch()),
                    static_cast<unsigned long long>(hash),
                    reader.chunkCount(), reader.chunkTargetNnz());
        return 0;
    } catch (const FatalError &err) {
        std::fprintf(stderr, "mtx2cbm: %s\n", err.what());
        return 1;
    }
}
