/**
 * @file
 * Quickstart: the 60-second tour of the Copernicus public API.
 *
 *  1. Build a sparse matrix (or read one from MatrixMarket).
 *  2. Partition it and compress a tile in every format.
 *  3. Run SpMV directly on the compressed tiles.
 *  4. Characterize the formats on the modelled FPGA platform.
 */

#include <cstdio>
#include <iostream>

#include "analysis/table_writer.hh"
#include "common/rng.hh"
#include "core/study.hh"
#include "kernels/spmv.hh"
#include "workloads/generators.hh"

using namespace copernicus;

int
main()
{
    std::printf("Copernicus quickstart\n=====================\n\n");

    // 1. A small random sparse matrix (could be readMatrixMarketFile).
    Rng rng(2021);
    const TripletMatrix matrix = randomMatrix(256, 0.02, rng);
    std::printf("matrix: %u x %u, %zu non-zeros (density %.4f)\n\n",
                matrix.rows(), matrix.cols(), matrix.nnz(),
                matrix.density());

    // 2. Partition into 16x16 tiles; all-zero tiles are elided.
    const Partitioning parts = partition(matrix, 16);
    std::printf("partitioned into %zu non-zero tiles (%zu all-zero "
                "tiles skipped)\n\n",
                parts.tiles.size(), parts.zeroTiles);

    // 3. Compress the first tile in every format and compare bytes.
    const Tile &tile = parts.tiles.front();
    TableWriter bytes({"format", "total bytes", "useful bytes",
                       "bandwidth util"});
    for (FormatKind kind : paperFormats()) {
        const auto encoded = defaultCodec(kind).encode(tile);
        bytes.addRow({std::string(formatName(kind)),
                      std::to_string(encoded->totalBytes()),
                      std::to_string(encoded->usefulBytes()),
                      TableWriter::num(encoded->bandwidthUtilization(),
                                       3)});
    }
    bytes.print(std::cout);

    // 4. SpMV straight off the compressed data.
    std::vector<Value> x(matrix.cols(), 1.0f);
    const auto y = spmvPartitioned(parts, FormatKind::CSR, x);
    double checksum = 0;
    for (Index r = 0; r < matrix.rows(); ++r)
        checksum += y[r];
    std::printf("\nSpMV checksum over CSR tiles: %.4f\n\n", checksum);

    // 5. Full characterization on the modelled platform.
    StudyConfig cfg;
    cfg.partitionSizes = {16};
    Study study(cfg);
    study.addWorkload("demo", matrix);
    TableWriter metrics({"format", "sigma", "balance", "throughput MB/s",
                         "bw util", "dyn power W"});
    for (const auto &row : study.run().rows) {
        metrics.addRow({std::string(formatName(row.format)),
                        TableWriter::num(row.meanSigma, 3),
                        TableWriter::num(row.balanceRatio, 3),
                        TableWriter::num(row.throughput / 1e6, 4),
                        TableWriter::num(row.bandwidthUtilization, 3),
                        TableWriter::num(row.power.dynamicW(), 2)});
    }
    metrics.print(std::cout);
    return 0;
}
