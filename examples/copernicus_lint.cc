/**
 * @file
 * copernicus_lint — static contract checker for the cycle model.
 *
 *   copernicus_lint                 # full lint at p = 8,16,32
 *   copernicus_lint 8,16            # choose partition sizes
 *   copernicus_lint --no-oracle     # skip the model-vs-walker oracle
 *   copernicus_lint --no-grammar    # skip encoded-tile validation
 *   copernicus_lint --no-streams    # skip typed-stream coverage
 *
 * Runs every static pass over the full format registry: schedule-spec
 * structure, hlsc decoder-body cross-checks (pipeline depth, II,
 * comparator-tree balance, BRAM port budgets), hyperparameter
 * contracts, encoded-tile grammar over synthetic workloads, the
 * closed-form-vs-walker cycle oracle, and the typed-stream coverage
 * contract (typed payloads must sum to the legacy streams() bytes). Exits 1 if any error-severity
 * diagnostic is produced, so CI can gate on it.
 */

#include <cstdio>
#include <sstream>
#include <string>

#include "analysis/schedule_check.hh"
#include "common/status.hh"

using namespace copernicus;

namespace {

std::vector<Index>
parsePartitionSizes(const std::string &arg)
{
    std::vector<Index> sizes;
    std::istringstream in(arg);
    std::string token;
    while (std::getline(in, token, ','))
        sizes.push_back(static_cast<Index>(std::stoul(token)));
    fatalIf(sizes.empty(),
            "no partition sizes parsed from '" + arg + "'");
    return sizes;
}

} // namespace

int
main(int argc, char **argv)
{
    LintOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--no-oracle")
            options.runOracle = false;
        else if (arg == "--no-grammar")
            options.runGrammar = false;
        else if (arg == "--no-streams")
            options.runStreams = false;
        else
            options.partitionSizes = parsePartitionSizes(arg);
    }

    std::printf("copernicus_lint — schedule IR + encoded-tile grammar "
                "checks\n");
    const LintReport report = runLint(options);
    if (!report.diagnostics.empty())
        std::fputs(report.toString().c_str(), stdout);
    std::printf("%zu error(s), %zu warning(s)\n", report.errorCount(),
                report.warningCount());
    return report.ok() ? 0 : 1;
}
