/**
 * @file
 * copernicus_lint — multi-pass static analyzer for the cycle model.
 *
 *   copernicus_lint                  # default passes at p = 8,16,32
 *   copernicus_lint 8,16             # choose partition sizes
 *   copernicus_lint --list-passes    # show the pass table and exit
 *   copernicus_lint --passes=a,b     # run only the named passes
 *   copernicus_lint --json           # machine-readable report
 *   copernicus_lint --sarif=PATH     # also write SARIF 2.1.0
 *   copernicus_lint --baseline=PATH  # suppress accepted findings
 *   copernicus_lint --werror         # warnings fail the build
 *   copernicus_lint --no-oracle      # skip the model-vs-walker oracle
 *   copernicus_lint --no-grammar     # skip encoded-tile validation
 *   copernicus_lint --no-streams     # skip typed-stream coverage
 *   copernicus_lint --no-store      # skip .cbm container integrity
 *   copernicus_lint --cbm=PATH      # also lint a real .cbm artifact
 *
 * Runs every analyzer pass over the full format registry: schedule-spec
 * structure, hlsc decoder-body cross-checks, hyperparameter contracts,
 * encoded-tile grammar, the closed-form-vs-walker cycle oracle, typed-
 * stream coverage, symbolic overflow analysis of the cycle/byte
 * accounting, BRAM capacity dataflow, thread-safety contracts, serve
 * protocol conformance, and the compression size invariant. Exit code:
 * 0 clean, 1 errors (or warnings with --werror), 2 warnings.
 */

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/lint_driver.hh"
#include "common/status.hh"
#include "serve/protocol_doc.hh"

using namespace copernicus;

namespace {

std::vector<Index>
parsePartitionSizes(const std::string &arg)
{
    std::vector<Index> sizes;
    std::istringstream in(arg);
    std::string token;
    while (std::getline(in, token, ','))
        sizes.push_back(static_cast<Index>(std::stoul(token)));
    fatalIf(sizes.empty(),
            "no partition sizes parsed from '" + arg + "'");
    return sizes;
}

std::vector<std::string>
splitNames(const std::string &arg)
{
    std::vector<std::string> names;
    std::istringstream in(arg);
    std::string token;
    while (std::getline(in, token, ','))
        if (!token.empty())
            names.push_back(token);
    return names;
}

} // namespace

int
main(int argc, char **argv)
{
    LintDriverOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--no-oracle")
            options.lint.runOracle = false;
        else if (arg == "--no-grammar")
            options.lint.runGrammar = false;
        else if (arg == "--no-streams")
            options.lint.runStreams = false;
        else if (arg == "--no-store")
            options.lint.runStore = false;
        else if (arg.rfind("--cbm=", 0) == 0)
            options.lint.storeContainers.push_back(arg.substr(6));
        else if (arg == "--list-passes")
            options.listPasses = true;
        else if (arg == "--json")
            options.json = true;
        else if (arg == "--werror")
            options.werror = true;
        else if (arg.rfind("--passes=", 0) == 0)
            options.passes = splitNames(arg.substr(9));
        else if (arg.rfind("--sarif=", 0) == 0)
            options.sarifPath = arg.substr(8);
        else if (arg.rfind("--baseline=", 0) == 0)
            options.baselinePath = arg.substr(11);
        else
            options.lint.partitionSizes = parsePartitionSizes(arg);
    }

    // The protocol-conformance pass diffs the serve layer's documented
    // surface against what the implementation exposes; the surface
    // must outlive the run.
    const ProtocolSurface surface = collectServeProtocolSurface();
    options.lint.protocol = &surface;

    if (!options.json && !options.listPasses)
        std::printf("copernicus_lint — multi-pass schedule/format "
                    "analyzer\n");
    return runLintDriver(options, std::cout);
}
