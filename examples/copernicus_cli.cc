/**
 * @file
 * Command-line characterizer: the whole library behind one binary.
 *
 *   copernicus_cli                        # demo matrix
 *   copernicus_cli matrix.mtx            # characterize a file
 *   copernicus_cli matrix.mtx 8,16,32    # choose partition sizes
 *   copernicus_cli matrix.mtx 16 out.csv # also write CSV rows
 *
 * Prints the full format x partition metric table, the Figure-3
 * partition statistics, the adaptive per-tile plan, and the advisor's
 * per-goal recommendations.
 */

#include <cstdio>
#include <iostream>
#include <sstream>

#include "analysis/table_writer.hh"
#include "common/rng.hh"
#include "core/advisor.hh"
#include "core/scheduler.hh"
#include "core/study.hh"
#include "matrix/mm_io.hh"
#include "matrix/stats.hh"
#include "workloads/generators.hh"

using namespace copernicus;

namespace {

std::vector<Index>
parsePartitionSizes(const std::string &arg)
{
    std::vector<Index> sizes;
    std::istringstream in(arg);
    std::string token;
    while (std::getline(in, token, ','))
        sizes.push_back(static_cast<Index>(std::stoul(token)));
    fatalIf(sizes.empty(), "no partition sizes parsed from '" + arg +
                               "'");
    return sizes;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("copernicus_cli — sparse-format characterizer\n\n");

    TripletMatrix matrix = [&] {
        if (argc > 1)
            return readMatrixMarketFile(argv[1]);
        std::printf("(no file given; using a demo 512x512 random "
                    "matrix at density 0.03)\n\n");
        Rng rng(123);
        return randomMatrix(512, 0.03, rng);
    }();

    const std::vector<Index> sizes =
        argc > 2 ? parsePartitionSizes(argv[2])
                 : std::vector<Index>{8, 16, 32};

    const auto stats = computeStats(matrix);
    std::printf("matrix: %u x %u, %zu nnz, density %.5g, bandwidth %u, "
                "%u diagonals\n\n",
                stats.rows, stats.cols, stats.nnz, stats.density,
                stats.bandwidth, stats.nonZeroDiagonals);

    // Figure-3 style partition statistics.
    TableWriter fig3({"p", "non-zero tiles", "zero tiles",
                      "partition density %", "row density %",
                      "nnz rows %"});
    for (Index p : sizes) {
        const auto pstats = computePartitionStats(matrix, p);
        fig3.addRow({std::to_string(p),
                     std::to_string(pstats.nonZeroTiles),
                     std::to_string(pstats.zeroTiles),
                     TableWriter::num(100 * pstats.avgPartitionDensity,
                                      3),
                     TableWriter::num(100 * pstats.avgRowDensity, 3),
                     TableWriter::num(
                         100 * pstats.avgNonZeroRowFraction, 3)});
    }
    fig3.print(std::cout);
    std::printf("\n");

    // Full characterization.
    StudyConfig cfg;
    cfg.partitionSizes = sizes;
    Study study(cfg);
    study.addWorkload("input", matrix);
    const auto result = study.run();

    TableWriter metrics({"format", "p", "sigma", "balance",
                         "throughput MB/s", "bw util", "latency (us)",
                         "dyn W"});
    for (const auto &row : result.rows) {
        metrics.addRow({std::string(formatName(row.format)),
                        std::to_string(row.partitionSize),
                        TableWriter::num(row.meanSigma, 3),
                        TableWriter::num(row.balanceRatio, 3),
                        TableWriter::num(row.throughput / 1e6, 4),
                        TableWriter::num(row.bandwidthUtilization, 3),
                        TableWriter::num(row.seconds * 1e6, 4),
                        TableWriter::num(row.power.dynamicW(), 2)});
    }
    metrics.print(std::cout);
    if (argc > 3) {
        metrics.writeCsvFile(argv[3]);
        std::printf("\nwrote CSV to %s\n", argv[3]);
    }

    // Adaptive plan at the first partition size.
    const auto parts = partition(matrix, sizes.front());
    const auto plan = planFormats(parts, paperFormats());
    const auto adaptive = runPipelineMixed(parts, plan.perTile);
    std::printf("\nadaptive per-tile plan at p=%u:", sizes.front());
    for (const auto &[kind, count] : plan.histogram)
        std::printf(" %s:%zu", std::string(formatName(kind)).c_str(),
                    count);
    std::printf("\nadaptive total latency: %.4f us\n",
                adaptive.seconds * 1e6);

    // Advisor.
    std::printf("\nadvisor recommendations:\n");
    for (AdvisorGoal goal :
         {AdvisorGoal::Latency, AdvisorGoal::Throughput,
          AdvisorGoal::Power, AdvisorGoal::Bandwidth}) {
        const auto rec = advise(stats, goal);
        std::printf("  %-22s %s at %ux%u\n",
                    std::string(goalName(goal)).c_str(),
                    std::string(formatName(rec.format)).c_str(),
                    rec.partitionSize, rec.partitionSize);
    }
    return 0;
}
