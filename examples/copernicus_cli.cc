/**
 * @file
 * Command-line characterizer: the whole library behind one binary.
 *
 *   copernicus_cli                        # demo matrix
 *   copernicus_cli matrix.mtx            # characterize a file
 *   copernicus_cli matrix.mtx 8,16,32    # choose partition sizes
 *   copernicus_cli matrix.mtx 16 out.csv # also write CSV rows
 *
 * Observability flags (combinable with the positionals above):
 *
 *   --trace out.json       Chrome trace_event timeline of the
 *                          event-driven pipeline simulation, one trace
 *                          process per format (open in Perfetto or
 *                          chrome://tracing)
 *   --stats-json out.json  the per-format pipeline StatGroups (and the
 *                          profile group with --profile) as JSON, on
 *                          top of the text dump
 *   --profile              time the host-side hot paths (encoders,
 *                          Study::run, scheduler) and dump the profile
 *                          StatGroup
 *   --jobs N               worker lanes for the parallel sweep paths
 *                          (Study::run, planFormats); equivalent to
 *                          COPERNICUS_JOBS=N, default = hardware
 *                          concurrency. Results are bit-identical at
 *                          any setting.
 *   --lint                 run the multi-pass static analyzer (same
 *                          driver as copernicus_lint) at the selected
 *                          partition sizes and exit with its status
 *                          instead of characterizing anything.
 *                          Forwards the analyzer flags: --list-passes,
 *                          --passes=a,b, --json, --sarif=PATH,
 *                          --baseline=PATH, --werror, --no-oracle,
 *                          --no-grammar, --no-streams
 *
 * Client mode (talks to a running copernicus_serve daemon instead of
 * characterizing in-process):
 *
 *   --connect PATH         connect to the daemon's Unix socket
 *   --connect-tcp PORT     connect to the daemon's loopback TCP port
 *   --binary               negotiate the CPB1 binary framing for the
 *                          connection (default: NDJSON lines)
 *   --op NAME              endpoint to call (default ping)
 *   --params JSON          raw params object for the request
 *   --timeout-ms MS        server-side deadline for the request
 *
 * In client mode the raw response line is printed to stdout and the
 * exit status reflects the response's "ok" field.
 *
 * Observability client modes (need --connect/--connect-tcp except
 * --check-exposition, which is offline):
 *
 *   --metrics              scrape the daemon's Prometheus exposition
 *                          and print the raw text body
 *   --check-exposition F   validate file F against the Prometheus
 *                          text-format rules (TYPE before samples, no
 *                          family interleaving, monotonic cumulative
 *                          histogram buckets, +Inf == _count); exit
 *                          nonzero with a diagnostic on violation
 *   --top                  poll the stats endpoint and render a live
 *                          per-endpoint board: request counts,
 *                          p50/p95/p99 latency, cache hit rate, queue
 *                          depth, and in-flight request ages
 *   --interval-ms MS       --top refresh period (default 1000)
 *   --iters N              stop --top after N refreshes (default:
 *                          until the connection drops or Ctrl-C)
 *
 * Prints the full format x partition metric table, the Figure-3
 * partition statistics, the adaptive per-tile plan, and the advisor's
 * per-goal recommendations.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "analysis/lint_driver.hh"
#include "analysis/schedule_check.hh"
#include "analysis/stats_report.hh"
#include "analysis/table_writer.hh"
#include "common/prometheus.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "formats/encode_cache.hh"
#include "core/advisor.hh"
#include "core/scheduler.hh"
#include "core/study.hh"
#include "matrix/mm_io.hh"
#include "matrix/stats.hh"
#include "pipeline/event_sim.hh"
#include "serve/client.hh"
#include "serve/protocol_doc.hh"
#include "trace/profile.hh"
#include "trace/trace_writer.hh"
#include "workloads/generators.hh"

using namespace copernicus;

namespace {

std::vector<Index>
parsePartitionSizes(const std::string &arg)
{
    std::vector<Index> sizes;
    std::istringstream in(arg);
    std::string token;
    while (std::getline(in, token, ','))
        sizes.push_back(static_cast<Index>(std::stoul(token)));
    fatalIf(sizes.empty(), "no partition sizes parsed from '" + arg +
                               "'");
    return sizes;
}

/** Flags plus the surviving positional arguments, in order. */
struct CliOptions
{
    std::string tracePath;
    std::string statsJsonPath;
    bool profile = false;
    bool lint = false;
    LintDriverOptions lintDriver;
    unsigned jobs = 0;
    std::vector<std::string> positional;

    /** Client mode: non-empty path or non-negative port selects it. */
    std::string connectPath;
    int connectTcpPort = -1;
    bool binaryFraming = false;
    std::string op = "ping";
    std::string paramsJson;
    double timeoutMs = 0;

    /** Observability client modes. */
    bool metrics = false;
    bool top = false;
    std::string checkExpositionPath;
    double intervalMs = 1000;
    long topIters = 0; ///< 0 = poll until the connection drops
};

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--profile") {
            opts.profile = true;
        } else if (arg == "--lint") {
            opts.lint = true;
        } else if (arg == "--list-passes") {
            opts.lint = true;
            opts.lintDriver.listPasses = true;
        } else if (arg == "--lint-json" || arg == "--json") {
            opts.lintDriver.json = true;
        } else if (arg == "--werror") {
            opts.lintDriver.werror = true;
        } else if (arg == "--no-oracle") {
            opts.lintDriver.lint.runOracle = false;
        } else if (arg == "--no-grammar") {
            opts.lintDriver.lint.runGrammar = false;
        } else if (arg == "--no-streams") {
            opts.lintDriver.lint.runStreams = false;
        } else if (arg.rfind("--passes=", 0) == 0) {
            std::istringstream names(arg.substr(9));
            std::string token;
            while (std::getline(names, token, ','))
                if (!token.empty())
                    opts.lintDriver.passes.push_back(token);
        } else if (arg.rfind("--sarif=", 0) == 0) {
            opts.lintDriver.sarifPath = arg.substr(8);
        } else if (arg.rfind("--baseline=", 0) == 0) {
            opts.lintDriver.baselinePath = arg.substr(11);
        } else if (arg == "--trace" || arg == "--stats-json") {
            fatalIf(i + 1 >= argc, arg + " needs a file argument");
            (arg == "--trace" ? opts.tracePath
                              : opts.statsJsonPath) = argv[++i];
        } else if (arg == "--jobs") {
            fatalIf(i + 1 >= argc, "--jobs needs a count argument");
            const long n = std::strtol(argv[++i], nullptr, 10);
            fatalIf(n < 1, "--jobs wants a positive integer");
            opts.jobs = static_cast<unsigned>(n);
        } else if (arg == "--connect") {
            fatalIf(i + 1 >= argc, "--connect needs a socket path");
            opts.connectPath = argv[++i];
        } else if (arg == "--connect-tcp") {
            fatalIf(i + 1 >= argc, "--connect-tcp needs a port");
            const long port = std::strtol(argv[++i], nullptr, 10);
            fatalIf(port < 1 || port > 65535,
                    "--connect-tcp wants a port in [1, 65535]");
            opts.connectTcpPort = static_cast<int>(port);
        } else if (arg == "--binary") {
            opts.binaryFraming = true;
        } else if (arg == "--op") {
            fatalIf(i + 1 >= argc, "--op needs an endpoint name");
            opts.op = argv[++i];
        } else if (arg == "--params") {
            fatalIf(i + 1 >= argc, "--params needs a JSON object");
            opts.paramsJson = argv[++i];
        } else if (arg == "--timeout-ms") {
            fatalIf(i + 1 >= argc, "--timeout-ms needs a value");
            opts.timeoutMs = std::strtod(argv[++i], nullptr);
            fatalIf(opts.timeoutMs < 0,
                    "--timeout-ms wants a non-negative value");
        } else if (arg == "--metrics") {
            opts.metrics = true;
        } else if (arg == "--top") {
            opts.top = true;
        } else if (arg == "--check-exposition") {
            fatalIf(i + 1 >= argc,
                    "--check-exposition needs a file argument");
            opts.checkExpositionPath = argv[++i];
        } else if (arg == "--interval-ms") {
            fatalIf(i + 1 >= argc, "--interval-ms needs a value");
            opts.intervalMs = std::strtod(argv[++i], nullptr);
            fatalIf(opts.intervalMs < 0,
                    "--interval-ms wants a non-negative value");
        } else if (arg == "--iters") {
            fatalIf(i + 1 >= argc, "--iters needs a count");
            opts.topIters = std::strtol(argv[++i], nullptr, 10);
            fatalIf(opts.topIters < 1,
                    "--iters wants a positive count");
        } else {
            opts.positional.push_back(arg);
        }
    }
    return opts;
}

/**
 * --check-exposition: validate a Prometheus text file offline. This is
 * the checker the CI serve job runs against a live scrape, so its exit
 * status is the contract: 0 = valid, 1 = violation (with the reason on
 * stderr).
 */
int
checkExposition(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (!validatePrometheusText(buf.str(), error)) {
        std::fprintf(stderr, "check-exposition: %s: %s\n",
                     path.c_str(), error.c_str());
        return 1;
    }
    std::printf("check-exposition: %s: ok\n", path.c_str());
    return 0;
}

/** --metrics: scrape the daemon and print the raw exposition body. */
int
scrapeMetrics(ServeClient &client, double timeoutMs)
{
    const JsonValue response = client.call("metrics", "", timeoutMs);
    if (!response.boolOr("ok", false)) {
        std::fprintf(stderr, "metrics: daemon answered: %s\n",
                     response.stringOr("error", "unknown").c_str());
        return 1;
    }
    const JsonValue *result = response.find("result");
    fatalIf(result == nullptr || !result->isObject(),
            "metrics: response carries no result object");
    std::fputs(result->stringOr("body", "").c_str(), stdout);
    return 0;
}

/** Per-endpoint aggregate assembled from one stats-endpoint poll. */
struct TopRow
{
    double accepted = 0;
    double completed = 0;
    double errors = 0;
    double cacheHits = 0;
    double cacheMisses = 0;
    double p50 = 0, p95 = 0, p99 = 0;
    bool hasLatency = false;
};

/** Render one --top frame from the stats endpoint's result object. */
void
renderTopFrame(const JsonValue &result, long iter)
{
    // Fold the serve group's flat stat list ("<endpoint>.accepted",
    // "<endpoint>.latency_us", ...) into per-endpoint rows. Endpoint
    // wire names never contain '.', so the first dot splits prefix
    // from counter; non-endpoint prefixes (bad_lines) simply never
    // accumulate an "accepted" and are filtered below.
    std::map<std::string, TopRow> rows;
    const JsonValue *groups = result.find("groups");
    if (groups != nullptr && groups->isArray()) {
        for (const JsonValue &group : groups->elements) {
            if (group.stringOr("group", "") != "serve")
                continue;
            const JsonValue *stats = group.find("stats");
            if (stats == nullptr || !stats->isArray())
                continue;
            for (const JsonValue &stat : stats->elements) {
                const std::string name = stat.stringOr("name", "");
                const std::size_t dot = name.find('.');
                if (dot == std::string::npos)
                    continue;
                TopRow &row = rows[name.substr(0, dot)];
                const std::string what = name.substr(dot + 1);
                if (what == "accepted")
                    row.accepted = stat.numberOr("value", 0);
                else if (what == "completed")
                    row.completed = stat.numberOr("value", 0);
                else if (what == "errors")
                    row.errors = stat.numberOr("value", 0);
                else if (what == "cache_hits")
                    row.cacheHits = stat.numberOr("value", 0);
                else if (what == "cache_misses")
                    row.cacheMisses = stat.numberOr("value", 0);
                else if (what == "latency_us" &&
                         stat.numberOr("samples", 0) > 0) {
                    row.hasLatency = true;
                    row.p50 = stat.numberOr("p50", 0);
                    row.p95 = stat.numberOr("p95", 0);
                    row.p99 = stat.numberOr("p99", 0);
                }
            }
        }
    }

    std::printf("copernicus --top  (refresh %ld)  queue_depth %g\n\n",
                iter, result.numberOr("queue_depth", 0));
    TableWriter board({"endpoint", "accepted", "ok", "err", "p50 us",
                       "p95 us", "p99 us", "cache hit %"});
    for (const auto &[endpoint, row] : rows) {
        if (row.accepted == 0)
            continue;
        const double lookups = row.cacheHits + row.cacheMisses;
        const auto count = [](double v) {
            return std::to_string(static_cast<long long>(v));
        };
        board.addRow(
            {endpoint, count(row.accepted), count(row.completed),
             count(row.errors),
             row.hasLatency ? TableWriter::num(row.p50, 6) : "-",
             row.hasLatency ? TableWriter::num(row.p95, 6) : "-",
             row.hasLatency ? TableWriter::num(row.p99, 6) : "-",
             lookups > 0
                 ? TableWriter::num(100 * row.cacheHits / lookups, 3)
                 : "-"});
    }
    board.print(std::cout);

    const JsonValue *inflight = result.find("inflight");
    if (inflight != nullptr && inflight->isArray() &&
        !inflight->elements.empty()) {
        std::printf("\nin flight:");
        for (const JsonValue &req : inflight->elements)
            std::printf(" %s#%g(%.0fus)",
                        req.stringOr("endpoint", "?").c_str(),
                        req.numberOr("id", 0),
                        req.numberOr("age_us", 0));
        std::printf("\n");
    }
    std::fflush(stdout);
}

/** --top: poll the stats endpoint and render the live board. */
int
runTop(ServeClient &client, const CliOptions &opts)
{
    const bool tty = ::isatty(STDOUT_FILENO) != 0;
    for (long iter = 1;; ++iter) {
        const JsonValue response =
            client.call("stats", "", opts.timeoutMs);
        if (!response.boolOr("ok", false)) {
            std::fprintf(stderr, "top: daemon answered: %s\n",
                         response.stringOr("error", "unknown")
                             .c_str());
            return 1;
        }
        const JsonValue *result = response.find("result");
        fatalIf(result == nullptr || !result->isObject(),
                "top: stats response carries no result object");
        if (tty)
            std::printf("\033[H\033[2J"); // home + clear, like top(1)
        else if (iter > 1)
            std::printf("\n");
        renderTopFrame(*result, iter);
        if (opts.topIters > 0 && iter >= opts.topIters)
            return 0;
        std::this_thread::sleep_for(std::chrono::duration<double,
                                                          std::milli>(
            opts.intervalMs));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opts = parseArgs(argc, argv);
    if (!opts.checkExpositionPath.empty())
        return checkExposition(opts.checkExpositionPath);
    fatalIf((opts.metrics || opts.top) && opts.connectPath.empty() &&
                opts.connectTcpPort < 0,
            "--metrics/--top need --connect or --connect-tcp");
    if (!opts.connectPath.empty() || opts.connectTcpPort >= 0) {
        // Client mode: one request against a running daemon. The raw
        // response line goes to stdout so shell pipelines can parse it.
        ServeClient client =
            opts.connectTcpPort >= 0
                ? ServeClient::connectTcp(opts.connectTcpPort)
                : ServeClient::connectUnix(opts.connectPath);
        if (opts.binaryFraming)
            client.enableBinaryFraming();
        if (opts.metrics)
            return scrapeMetrics(client, opts.timeoutMs);
        if (opts.top)
            return runTop(client, opts);
        std::ostringstream request;
        request << "{\"op\": ";
        writeJsonString(request, opts.op);
        request << ", \"id\": 1";
        if (opts.timeoutMs > 0) {
            request << ", \"timeout_ms\": ";
            writeJsonNumber(request, opts.timeoutMs);
        }
        if (!opts.paramsJson.empty())
            request << ", \"params\": " << opts.paramsJson;
        request << '}';
        const std::string response = client.requestLine(request.str());
        std::printf("%s\n", response.c_str());
        JsonValue parsed;
        return parseJson(response, parsed) &&
                       parsed.boolOr("ok", false)
                   ? 0
                   : 1;
    }
    if (opts.lint) {
        LintDriverOptions driver = opts.lintDriver;
        if (opts.positional.size() > 1)
            driver.lint.partitionSizes =
                parsePartitionSizes(opts.positional[1]);
        const ProtocolSurface surface = collectServeProtocolSurface();
        driver.lint.protocol = &surface;
        if (!driver.json && !driver.listPasses)
            std::printf("copernicus_cli --lint — multi-pass "
                        "schedule/format analyzer\n");
        return runLintDriver(driver, std::cout);
    }
    std::printf("copernicus_cli — sparse-format characterizer\n\n");
    if (opts.profile || !opts.statsJsonPath.empty())
        ProfileRegistry::global().setEnabled(true);
    if (opts.jobs != 0)
        setJobsOverride(opts.jobs);
    if (!opts.tracePath.empty())
        ThreadPool::setLaneRecording(true);

    TripletMatrix matrix = [&] {
        if (!opts.positional.empty())
            return readMatrixMarketFile(opts.positional[0]);
        std::printf("(no file given; using a demo 512x512 random "
                    "matrix at density 0.03)\n\n");
        Rng rng(123);
        return randomMatrix(512, 0.03, rng);
    }();

    const std::vector<Index> sizes =
        opts.positional.size() > 1
            ? parsePartitionSizes(opts.positional[1])
            : std::vector<Index>{8, 16, 32};

    const auto stats = computeStats(matrix);
    std::printf("matrix: %u x %u, %zu nnz, density %.5g, bandwidth %u, "
                "%u diagonals\n\n",
                stats.rows, stats.cols, stats.nnz, stats.density,
                stats.bandwidth, stats.nonZeroDiagonals);

    // Figure-3 style partition statistics.
    TableWriter fig3({"p", "non-zero tiles", "zero tiles",
                      "partition density %", "row density %",
                      "nnz rows %"});
    for (Index p : sizes) {
        const auto pstats = computePartitionStats(matrix, p);
        fig3.addRow({std::to_string(p),
                     std::to_string(pstats.nonZeroTiles),
                     std::to_string(pstats.zeroTiles),
                     TableWriter::num(100 * pstats.avgPartitionDensity,
                                      3),
                     TableWriter::num(100 * pstats.avgRowDensity, 3),
                     TableWriter::num(
                         100 * pstats.avgNonZeroRowFraction, 3)});
    }
    fig3.print(std::cout);
    std::printf("\n");

    // Full characterization.
    StudyConfig cfg;
    cfg.partitionSizes = sizes;
    cfg.jobs = opts.jobs;
    Study study(cfg);
    study.addWorkload("input", matrix);
    const auto result = study.run();

    TableWriter metrics({"format", "p", "sigma", "balance",
                         "throughput MB/s", "bw util", "latency (us)",
                         "dyn W"});
    for (const auto &row : result.rows) {
        metrics.addRow({std::string(formatName(row.format)),
                        std::to_string(row.partitionSize),
                        TableWriter::num(row.meanSigma, 3),
                        TableWriter::num(row.balanceRatio, 3),
                        TableWriter::num(row.throughput / 1e6, 4),
                        TableWriter::num(row.bandwidthUtilization, 3),
                        TableWriter::num(row.seconds * 1e6, 4),
                        TableWriter::num(row.power.dynamicW(), 2)});
    }
    metrics.print(std::cout);
    if (opts.positional.size() > 2) {
        metrics.writeCsvFile(opts.positional[2]);
        std::printf("\nwrote CSV to %s\n",
                    opts.positional[2].c_str());
    }

    // Adaptive plan at the first partition size.
    const auto parts = partition(matrix, sizes.front());
    const auto plan = planFormats(parts, paperFormats());
    const auto adaptive = runPipelineMixed(parts, plan.perTile);
    std::printf("\nadaptive per-tile plan at p=%u:", sizes.front());
    for (const auto &[kind, count] : plan.histogram)
        std::printf(" %s:%zu", std::string(formatName(kind)).c_str(),
                    count);
    std::printf("\nadaptive total latency: %.4f us\n",
                adaptive.seconds * 1e6);

    // Advisor.
    std::printf("\nadvisor recommendations:\n");
    for (AdvisorGoal goal :
         {AdvisorGoal::Latency, AdvisorGoal::Throughput,
          AdvisorGoal::Power, AdvisorGoal::Bandwidth}) {
        const auto rec = advise(stats, goal);
        std::printf("  %-22s %s at %ux%u\n",
                    std::string(goalName(goal)).c_str(),
                    std::string(formatName(rec.format)).c_str(),
                    rec.partitionSize, rec.partitionSize);
    }

    // Chrome trace of the exact (event-driven) pipeline timeline at
    // the first partition size, one trace process per format.
    if (!opts.tracePath.empty()) {
        TraceWriter writer;
        for (FormatKind kind : cfg.formats)
            runEventSim(parts, kind, cfg.hls, defaultRegistry(), 2,
                        &writer);
        // Pool workers never write into a TraceWriter directly; their
        // activity was recorded as lane spans and is serialised here.
        emitWorkerLanes(writer, ThreadPool::drainLaneSpans());
        writer.writeFile(opts.tracePath);
        std::printf("\nwrote Chrome trace (%zu events) to %s — open "
                    "in Perfetto or chrome://tracing\n",
                    writer.eventCount(), opts.tracePath.c_str());
    }

    // Machine-readable stats: the per-format pipeline groups at the
    // first partition size (text dump + JSON), plus the profile group.
    if (!opts.statsJsonPath.empty()) {
        std::vector<std::unique_ptr<PipelineStats>> all;
        std::vector<const StatGroup *> groups;
        for (FormatKind kind : cfg.formats) {
            all.push_back(std::make_unique<PipelineStats>(
                runPipeline(parts, kind, cfg.hls)));
            groups.push_back(&all.back()->group());
        }
        std::printf("\n");
        for (const auto &stats_group : all)
            stats_group->dump(std::cout);

        // Built last so it sees every timed scope of this run.
        std::unique_ptr<ProfileStats> prof;
        if (opts.profile) {
            prof = std::make_unique<ProfileStats>();
            prof->dump(std::cout);
            groups.push_back(&prof->group());
        }
        const ThreadPoolStats poolStats;
        const EncodeCacheStats cacheStats;
        groups.push_back(&poolStats.group());
        groups.push_back(&cacheStats.group());
        std::ofstream out(opts.statsJsonPath);
        fatalIf(!out, "cannot open '" + opts.statsJsonPath + "'");
        dumpGroupsJson(out, groups);
        std::printf("\nwrote stats JSON (%zu groups) to %s\n",
                    groups.size(), opts.statsJsonPath.c_str());
    } else if (opts.profile) {
        std::printf("\n");
        ProfileStats().dump(std::cout);
    }
    return 0;
}
