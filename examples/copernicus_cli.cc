/**
 * @file
 * Command-line characterizer: the whole library behind one binary.
 *
 *   copernicus_cli                        # demo matrix
 *   copernicus_cli matrix.mtx            # characterize a file
 *   copernicus_cli matrix.mtx 8,16,32    # choose partition sizes
 *   copernicus_cli matrix.mtx 16 out.csv # also write CSV rows
 *
 * Observability flags (combinable with the positionals above):
 *
 *   --trace out.json       Chrome trace_event timeline of the
 *                          event-driven pipeline simulation, one trace
 *                          process per format (open in Perfetto or
 *                          chrome://tracing)
 *   --stats-json out.json  the per-format pipeline StatGroups (and the
 *                          profile group with --profile) as JSON, on
 *                          top of the text dump
 *   --profile              time the host-side hot paths (encoders,
 *                          Study::run, scheduler) and dump the profile
 *                          StatGroup
 *   --jobs N               worker lanes for the parallel sweep paths
 *                          (Study::run, planFormats); equivalent to
 *                          COPERNICUS_JOBS=N, default = hardware
 *                          concurrency. Results are bit-identical at
 *                          any setting.
 *   --lint                 run the static schedule/grammar lint passes
 *                          (same as copernicus_lint) at the selected
 *                          partition sizes and exit with its status
 *                          instead of characterizing anything
 *
 * Client mode (talks to a running copernicus_serve daemon instead of
 * characterizing in-process):
 *
 *   --connect PATH         connect to the daemon's Unix socket
 *   --connect-tcp PORT     connect to the daemon's loopback TCP port
 *   --op NAME              endpoint to call (default ping)
 *   --params JSON          raw params object for the request
 *   --timeout-ms MS        server-side deadline for the request
 *
 * In client mode the raw response line is printed to stdout and the
 * exit status reflects the response's "ok" field.
 *
 * Prints the full format x partition metric table, the Figure-3
 * partition statistics, the adaptive per-tile plan, and the advisor's
 * per-goal recommendations.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "analysis/schedule_check.hh"
#include "analysis/stats_report.hh"
#include "analysis/table_writer.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "formats/encode_cache.hh"
#include "core/advisor.hh"
#include "core/scheduler.hh"
#include "core/study.hh"
#include "matrix/mm_io.hh"
#include "matrix/stats.hh"
#include "pipeline/event_sim.hh"
#include "serve/client.hh"
#include "trace/profile.hh"
#include "trace/trace_writer.hh"
#include "workloads/generators.hh"

using namespace copernicus;

namespace {

std::vector<Index>
parsePartitionSizes(const std::string &arg)
{
    std::vector<Index> sizes;
    std::istringstream in(arg);
    std::string token;
    while (std::getline(in, token, ','))
        sizes.push_back(static_cast<Index>(std::stoul(token)));
    fatalIf(sizes.empty(), "no partition sizes parsed from '" + arg +
                               "'");
    return sizes;
}

/** Flags plus the surviving positional arguments, in order. */
struct CliOptions
{
    std::string tracePath;
    std::string statsJsonPath;
    bool profile = false;
    bool lint = false;
    unsigned jobs = 0;
    std::vector<std::string> positional;

    /** Client mode: non-empty path or non-negative port selects it. */
    std::string connectPath;
    int connectTcpPort = -1;
    std::string op = "ping";
    std::string paramsJson;
    double timeoutMs = 0;
};

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--profile") {
            opts.profile = true;
        } else if (arg == "--lint") {
            opts.lint = true;
        } else if (arg == "--trace" || arg == "--stats-json") {
            fatalIf(i + 1 >= argc, arg + " needs a file argument");
            (arg == "--trace" ? opts.tracePath
                              : opts.statsJsonPath) = argv[++i];
        } else if (arg == "--jobs") {
            fatalIf(i + 1 >= argc, "--jobs needs a count argument");
            const long n = std::strtol(argv[++i], nullptr, 10);
            fatalIf(n < 1, "--jobs wants a positive integer");
            opts.jobs = static_cast<unsigned>(n);
        } else if (arg == "--connect") {
            fatalIf(i + 1 >= argc, "--connect needs a socket path");
            opts.connectPath = argv[++i];
        } else if (arg == "--connect-tcp") {
            fatalIf(i + 1 >= argc, "--connect-tcp needs a port");
            const long port = std::strtol(argv[++i], nullptr, 10);
            fatalIf(port < 1 || port > 65535,
                    "--connect-tcp wants a port in [1, 65535]");
            opts.connectTcpPort = static_cast<int>(port);
        } else if (arg == "--op") {
            fatalIf(i + 1 >= argc, "--op needs an endpoint name");
            opts.op = argv[++i];
        } else if (arg == "--params") {
            fatalIf(i + 1 >= argc, "--params needs a JSON object");
            opts.paramsJson = argv[++i];
        } else if (arg == "--timeout-ms") {
            fatalIf(i + 1 >= argc, "--timeout-ms needs a value");
            opts.timeoutMs = std::strtod(argv[++i], nullptr);
            fatalIf(opts.timeoutMs < 0,
                    "--timeout-ms wants a non-negative value");
        } else {
            opts.positional.push_back(arg);
        }
    }
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opts = parseArgs(argc, argv);
    if (!opts.connectPath.empty() || opts.connectTcpPort >= 0) {
        // Client mode: one request against a running daemon. The raw
        // response line goes to stdout so shell pipelines can parse it.
        ServeClient client =
            opts.connectTcpPort >= 0
                ? ServeClient::connectTcp(opts.connectTcpPort)
                : ServeClient::connectUnix(opts.connectPath);
        std::ostringstream request;
        request << "{\"op\": ";
        writeJsonString(request, opts.op);
        request << ", \"id\": 1";
        if (opts.timeoutMs > 0) {
            request << ", \"timeout_ms\": ";
            writeJsonNumber(request, opts.timeoutMs);
        }
        if (!opts.paramsJson.empty())
            request << ", \"params\": " << opts.paramsJson;
        request << '}';
        const std::string response = client.requestLine(request.str());
        std::printf("%s\n", response.c_str());
        JsonValue parsed;
        return parseJson(response, parsed) &&
                       parsed.boolOr("ok", false)
                   ? 0
                   : 1;
    }
    std::printf("copernicus_cli — sparse-format characterizer\n\n");
    if (opts.lint) {
        LintOptions lint_options;
        if (opts.positional.size() > 1)
            lint_options.partitionSizes =
                parsePartitionSizes(opts.positional[1]);
        const LintReport report = runLint(lint_options);
        if (!report.diagnostics.empty())
            std::fputs(report.toString().c_str(), stdout);
        std::printf("lint: %zu error(s), %zu warning(s)\n",
                    report.errorCount(), report.warningCount());
        return report.ok() ? 0 : 1;
    }
    if (opts.profile || !opts.statsJsonPath.empty())
        ProfileRegistry::global().setEnabled(true);
    if (opts.jobs != 0)
        setJobsOverride(opts.jobs);
    if (!opts.tracePath.empty())
        ThreadPool::setLaneRecording(true);

    TripletMatrix matrix = [&] {
        if (!opts.positional.empty())
            return readMatrixMarketFile(opts.positional[0]);
        std::printf("(no file given; using a demo 512x512 random "
                    "matrix at density 0.03)\n\n");
        Rng rng(123);
        return randomMatrix(512, 0.03, rng);
    }();

    const std::vector<Index> sizes =
        opts.positional.size() > 1
            ? parsePartitionSizes(opts.positional[1])
            : std::vector<Index>{8, 16, 32};

    const auto stats = computeStats(matrix);
    std::printf("matrix: %u x %u, %zu nnz, density %.5g, bandwidth %u, "
                "%u diagonals\n\n",
                stats.rows, stats.cols, stats.nnz, stats.density,
                stats.bandwidth, stats.nonZeroDiagonals);

    // Figure-3 style partition statistics.
    TableWriter fig3({"p", "non-zero tiles", "zero tiles",
                      "partition density %", "row density %",
                      "nnz rows %"});
    for (Index p : sizes) {
        const auto pstats = computePartitionStats(matrix, p);
        fig3.addRow({std::to_string(p),
                     std::to_string(pstats.nonZeroTiles),
                     std::to_string(pstats.zeroTiles),
                     TableWriter::num(100 * pstats.avgPartitionDensity,
                                      3),
                     TableWriter::num(100 * pstats.avgRowDensity, 3),
                     TableWriter::num(
                         100 * pstats.avgNonZeroRowFraction, 3)});
    }
    fig3.print(std::cout);
    std::printf("\n");

    // Full characterization.
    StudyConfig cfg;
    cfg.partitionSizes = sizes;
    cfg.jobs = opts.jobs;
    Study study(cfg);
    study.addWorkload("input", matrix);
    const auto result = study.run();

    TableWriter metrics({"format", "p", "sigma", "balance",
                         "throughput MB/s", "bw util", "latency (us)",
                         "dyn W"});
    for (const auto &row : result.rows) {
        metrics.addRow({std::string(formatName(row.format)),
                        std::to_string(row.partitionSize),
                        TableWriter::num(row.meanSigma, 3),
                        TableWriter::num(row.balanceRatio, 3),
                        TableWriter::num(row.throughput / 1e6, 4),
                        TableWriter::num(row.bandwidthUtilization, 3),
                        TableWriter::num(row.seconds * 1e6, 4),
                        TableWriter::num(row.power.dynamicW(), 2)});
    }
    metrics.print(std::cout);
    if (opts.positional.size() > 2) {
        metrics.writeCsvFile(opts.positional[2]);
        std::printf("\nwrote CSV to %s\n",
                    opts.positional[2].c_str());
    }

    // Adaptive plan at the first partition size.
    const auto parts = partition(matrix, sizes.front());
    const auto plan = planFormats(parts, paperFormats());
    const auto adaptive = runPipelineMixed(parts, plan.perTile);
    std::printf("\nadaptive per-tile plan at p=%u:", sizes.front());
    for (const auto &[kind, count] : plan.histogram)
        std::printf(" %s:%zu", std::string(formatName(kind)).c_str(),
                    count);
    std::printf("\nadaptive total latency: %.4f us\n",
                adaptive.seconds * 1e6);

    // Advisor.
    std::printf("\nadvisor recommendations:\n");
    for (AdvisorGoal goal :
         {AdvisorGoal::Latency, AdvisorGoal::Throughput,
          AdvisorGoal::Power, AdvisorGoal::Bandwidth}) {
        const auto rec = advise(stats, goal);
        std::printf("  %-22s %s at %ux%u\n",
                    std::string(goalName(goal)).c_str(),
                    std::string(formatName(rec.format)).c_str(),
                    rec.partitionSize, rec.partitionSize);
    }

    // Chrome trace of the exact (event-driven) pipeline timeline at
    // the first partition size, one trace process per format.
    if (!opts.tracePath.empty()) {
        TraceWriter writer;
        for (FormatKind kind : cfg.formats)
            runEventSim(parts, kind, cfg.hls, defaultRegistry(), 2,
                        &writer);
        // Pool workers never write into a TraceWriter directly; their
        // activity was recorded as lane spans and is serialised here.
        emitWorkerLanes(writer, ThreadPool::drainLaneSpans());
        writer.writeFile(opts.tracePath);
        std::printf("\nwrote Chrome trace (%zu events) to %s — open "
                    "in Perfetto or chrome://tracing\n",
                    writer.eventCount(), opts.tracePath.c_str());
    }

    // Machine-readable stats: the per-format pipeline groups at the
    // first partition size (text dump + JSON), plus the profile group.
    if (!opts.statsJsonPath.empty()) {
        std::vector<std::unique_ptr<PipelineStats>> all;
        std::vector<const StatGroup *> groups;
        for (FormatKind kind : cfg.formats) {
            all.push_back(std::make_unique<PipelineStats>(
                runPipeline(parts, kind, cfg.hls)));
            groups.push_back(&all.back()->group());
        }
        std::printf("\n");
        for (const auto &stats_group : all)
            stats_group->dump(std::cout);

        // Built last so it sees every timed scope of this run.
        std::unique_ptr<ProfileStats> prof;
        if (opts.profile) {
            prof = std::make_unique<ProfileStats>();
            prof->dump(std::cout);
            groups.push_back(&prof->group());
        }
        const ThreadPoolStats poolStats;
        const EncodeCacheStats cacheStats;
        groups.push_back(&poolStats.group());
        groups.push_back(&cacheStats.group());
        std::ofstream out(opts.statsJsonPath);
        fatalIf(!out, "cannot open '" + opts.statsJsonPath + "'");
        dumpGroupsJson(out, groups);
        std::printf("\nwrote stats JSON (%zu groups) to %s\n",
                    groups.size(), opts.statsJsonPath.c_str());
    } else if (opts.profile) {
        std::printf("\n");
        ProfileStats().dump(std::cout);
    }
    return 0;
}
