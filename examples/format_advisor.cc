/**
 * @file
 * Format advisor walk-through: Section 8's insights applied to one
 * representative matrix per application domain, for every optimization
 * goal. Run with a MatrixMarket path to advise on your own matrix:
 *
 *   ./format_advisor my_matrix.mtx
 */

#include <cstdio>
#include <iostream>

#include "analysis/table_writer.hh"
#include "common/rng.hh"
#include "core/advisor.hh"
#include "matrix/mm_io.hh"
#include "matrix/stats.hh"
#include "workloads/generators.hh"
#include "workloads/suite_catalog.hh"

using namespace copernicus;

namespace {

void
adviseAll(const std::string &label, const MatrixStats &stats)
{
    std::printf("\n%s: %u x %u, %zu nnz, density %.4g, bandwidth %u\n",
                label.c_str(), stats.rows, stats.cols, stats.nnz,
                stats.density, stats.bandwidth);
    TableWriter table({"goal", "format", "p", "needs tailored engine",
                       "alternatives"});
    for (AdvisorGoal goal :
         {AdvisorGoal::Latency, AdvisorGoal::Throughput,
          AdvisorGoal::Power, AdvisorGoal::Bandwidth,
          AdvisorGoal::Balanced}) {
        const auto rec = advise(stats, goal, /*tailoredEngine=*/true);
        std::string alts;
        for (FormatKind alt : rec.alternatives) {
            if (!alts.empty())
                alts += ", ";
            alts += formatName(alt);
        }
        table.addRow({std::string(goalName(goal)),
                      std::string(formatName(rec.format)),
                      std::to_string(rec.partitionSize),
                      rec.requiresTailoredEngine ? "yes" : "no", alts});
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Copernicus format advisor\n"
                "=========================\n");

    if (argc > 1) {
        const auto matrix = readMatrixMarketFile(argv[1]);
        adviseAll(argv[1], computeStats(matrix));
        return 0;
    }

    Rng rng(11);
    adviseAll("scientific (Poisson stencil)",
              computeStats(stencil2d(64, 64)));
    adviseAll("graph (R-MAT web-like)",
              computeStats(rmatGraph(2048, 12288, rng)));
    adviseAll("band width 8", computeStats(bandMatrix(2048, 8, rng)));
    adviseAll("pruned NN layer (density 0.3)",
              computeStats(prunedLayer(512, 512, 0.3, rng)));
    adviseAll("SuiteSparse surrogate roadNet-TX",
              computeStats(suiteMatrix("RO").generate(42)));

    std::printf("\nTip: pass a MatrixMarket file path to advise on "
                "your own matrix.\n");
    return 0;
}
