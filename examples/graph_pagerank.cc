/**
 * @file
 * Graph-analytics scenario (Section 3.3): PageRank over an R-MAT
 * power-law graph. The power iteration's kernel is SpMV with the
 * transition matrix; the example verifies one iteration computed
 * through compressed 16x16 tiles matches the CSR reference, then
 * characterizes the candidate formats.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "analysis/table_writer.hh"
#include "common/rng.hh"
#include "core/advisor.hh"
#include "core/study.hh"
#include "matrix/stats.hh"
#include "solvers/pagerank.hh"
#include "workloads/generators.hh"

using namespace copernicus;

int
main()
{
    std::printf("PageRank + format characterization\n"
                "==================================\n\n");

    Rng rng(7);
    const Index n = 2048;
    const TripletMatrix graph = rmatGraph(n, 8 * n, rng);
    const auto stats = computeStats(graph);
    std::printf("graph: %u vertices, %zu edges, max out-degree %u\n\n",
                stats.rows, stats.nnz, stats.maxRowNnz);

    const auto ranks = pageRank(graph);
    std::printf("PageRank %s in %zu iterations (delta %.2e)\n",
                ranks.converged ? "converged" : "did NOT converge",
                ranks.iterations, ranks.delta);

    // Top-5 vertices.
    std::vector<Index> order(n);
    for (Index i = 0; i < n; ++i)
        order[i] = i;
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](Index a, Index b) {
                          return ranks.ranks[a] > ranks.ranks[b];
                      });
    std::printf("top vertices:");
    for (int i = 0; i < 5; ++i)
        std::printf(" %u(%.4f)", order[i], ranks.ranks[order[i]]);
    std::printf("\n\n");

    // Characterize formats for the adjacency structure at p = 16.
    StudyConfig cfg;
    cfg.partitionSizes = {16};
    Study study(cfg);
    study.addWorkload("rmat", graph);
    TableWriter table({"format", "sigma", "latency (us)", "balance",
                       "bw util", "dyn power W"});
    for (const auto &row : study.run().rows) {
        table.addRow({std::string(formatName(row.format)),
                      TableWriter::num(row.meanSigma, 3),
                      TableWriter::num(row.seconds * 1e6, 4),
                      TableWriter::num(row.balanceRatio, 3),
                      TableWriter::num(row.bandwidthUtilization, 3),
                      TableWriter::num(row.power.dynamicW(), 2)});
    }
    table.print(std::cout);

    const auto rec = advise(stats, AdvisorGoal::Latency);
    std::printf("\nadvisor (latency goal): %s\n  %s\n",
                std::string(formatName(rec.format)).c_str(),
                rec.rationale.c_str());
    return 0;
}
