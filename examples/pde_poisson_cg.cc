/**
 * @file
 * Scientific-computation scenario (Section 3.3): discretize a 2D
 * Poisson problem into its 5-point-stencil coefficient matrix, solve
 * A x = b with conjugate gradient (whose inner kernel is SpMV), then
 * characterize which compression format the streaming accelerator
 * should use for this band-structured matrix.
 */

#include <cstdio>
#include <iostream>

#include "analysis/table_writer.hh"
#include "core/advisor.hh"
#include "core/study.hh"
#include "matrix/stats.hh"
#include "solvers/accelerated.hh"
#include "solvers/cg.hh"
#include "workloads/generators.hh"

using namespace copernicus;

int
main()
{
    std::printf("PDE solve + format characterization\n"
                "===================================\n\n");

    // Discretized Poisson equation on a 48x48 grid.
    const Index grid = 48;
    const TripletMatrix a_triplets = stencil2d(grid, grid);
    const auto stats = computeStats(a_triplets);
    std::printf("coefficient matrix: %u x %u, %zu nnz, bandwidth %u, "
                "%u non-zero diagonals\n\n",
                stats.rows, stats.cols, stats.nnz, stats.bandwidth,
                stats.nonZeroDiagonals);

    // Solve with CG: the dominant kernel is one SpMV per iteration.
    const CsrMatrix a(a_triplets);
    std::vector<Value> b(a.rows(), 1.0f);
    const auto solution = conjugateGradient(a, b, 1e-4, 5000);
    std::printf("CG %s in %zu iterations (residual %.2e); every "
                "iteration is one SpMV\n\n",
                solution.converged ? "converged" : "did NOT converge",
                solution.iterations, solution.residual);

    // Characterize the formats on the streaming platform.
    Study study{StudyConfig{}};
    study.addWorkload("poisson", a_triplets);
    const auto result = study.run();

    TableWriter table({"format", "p", "sigma", "latency (us)",
                       "bw util"});
    for (const auto &row : result.rows) {
        if (row.partitionSize != 16)
            continue;
        table.addRow({std::string(formatName(row.format)),
                      std::to_string(row.partitionSize),
                      TableWriter::num(row.meanSigma, 3),
                      TableWriter::num(row.seconds * 1e6, 4),
                      TableWriter::num(row.bandwidthUtilization, 3)});
    }
    table.print(std::cout);

    // Time-to-solution on the modelled accelerator per format.
    std::printf("\nestimated on-platform CG solve time (%zu "
                "iterations, p=16):\n",
                solution.iterations);
    for (FormatKind kind :
         {FormatKind::Dense, FormatKind::CSR, FormatKind::COO,
          FormatKind::DIA, FormatKind::CSC}) {
        const auto est = estimateIterativeSolve(a_triplets, kind, 16,
                                                solution.iterations);
        std::printf("  %-6s %10.3f us\n",
                    std::string(formatName(kind)).c_str(),
                    est.seconds * 1e6);
    }

    // Ask the advisor, with and without a format-tailored engine.
    for (bool tailored : {false, true}) {
        const auto rec = advise(stats, AdvisorGoal::Bandwidth, tailored);
        std::printf("\nadvisor (bandwidth goal, %s engine): %s at "
                    "%ux%u\n  %s\n",
                    tailored ? "tailored" : "generic",
                    std::string(formatName(rec.format)).c_str(),
                    rec.partitionSize, rec.partitionSize,
                    rec.rationale.c_str());
    }
    return 0;
}
